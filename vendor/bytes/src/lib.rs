//! Offline stand-in for `bytes` (see `vendor/README.md`): the little-endian
//! cursor subset of `Buf`/`BufMut` the node codec uses.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst);
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Append-only write sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writable capacity left (like `bytes`' `remaining_mut`: effectively
    /// unbounded for growable sinks, so callers use *deltas*, not the
    /// absolute value).
    fn remaining_mut(&self) -> usize;

    /// Appends `cnt` copies of `val` (single bulk write, like `bytes`').
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn remaining_mut(&self) -> usize {
        // A Vec can grow to isize::MAX bytes; only deltas are meaningful.
        isize::MAX as usize - self.len()
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }

    fn remaining_mut(&self) -> usize {
        (**self).remaining_mut()
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        (**self).put_bytes(val, cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(513);
        out.put_u32_le(70_000);
        out.put_f32_le(1.5);
        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 513);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert!((cursor.get_f32_le() - 1.5).abs() < 1e-9);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn put_bytes_and_remaining_mut_track_bulk_writes() {
        let mut out = Vec::new();
        let before = out.remaining_mut();
        out.put_bytes(0xAB, 5);
        assert_eq!(out, vec![0xAB; 5]);
        assert_eq!(before - out.remaining_mut(), 5);
        (&mut out).put_bytes(0, 2);
        assert_eq!(out.len(), 7);
        assert_eq!(before - out.remaining_mut(), 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32_le();
    }
}
