//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of the external crates it uses
//! (see `vendor/README.md`). This crate implements the slice of the `rand`
//! 0.8 API the workspace exercises: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and the `StdRng`/`SmallRng` generator types,
//! all backed by a deterministic xoshiro256++ generator.
//!
//! Streams differ from upstream `rand`, but every consumer in this workspace
//! only requires *deterministic, well-mixed* streams, never upstream's exact
//! values.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Maps one uniform `u64` to a value of this type.
    fn from_uniform_u64(v: u64) -> Self;
}

impl Standard for u64 {
    fn from_uniform_u64(v: u64) -> Self {
        v
    }
}

impl Standard for u32 {
    fn from_uniform_u64(v: u64) -> Self {
        (v >> 32) as u32
    }
}

impl Standard for bool {
    fn from_uniform_u64(v: u64) -> Self {
        v >> 63 == 1
    }
}

impl Standard for f32 {
    fn from_uniform_u64(v: u64) -> Self {
        // 24 high bits -> [0, 1).
        (v >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_uniform_u64(v: u64) -> Self {
        // 53 high bits -> [0, 1).
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (u128::from(rng.next_u64()) % span) as $t;
                start.wrapping_add(v)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::from_uniform_u64(rng.next_u64());
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::from_uniform_u64(rng.next_u64());
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level generator interface (the subset of `rand::Rng` used here).
pub trait Rng: RngCore {
    /// Uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_uniform_u64(self.next_u64())
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_uniform_u64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ state, seeded via splitmix64 (deterministic, well mixed).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 expansion, as the xoshiro authors recommend.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (deterministic xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_mixed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(4u64..=32);
            assert!((4..=32).contains(&i));
            let unit = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
