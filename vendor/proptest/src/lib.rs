//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Keeps the `proptest!` surface this workspace's property tests use —
//! strategies over ranges/collections/tuples, `prop_flat_map`, `sample::select`,
//! `bool::ANY`, `Just`, `prop_assert*!` — but runs cases from a deterministic
//! per-test RNG instead of doing randomized search with shrinking. Failures
//! therefore reproduce exactly across runs; there is no failure persistence.

/// Deterministic case RNG plus seeding (stands in for `proptest::test_runner`).
pub mod test_runner {
    use rand::{Rng, RngCore, SeedableRng};

    /// Per-test deterministic RNG.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Seeds from the test name, so each test gets a stable, distinct
        /// stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }

        /// Samples from a range (delegates to the vendored `rand`).
        pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }

        /// Uniform boolean.
        pub fn gen_bool(&mut self) -> bool {
            self.0.gen()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration (`cases` is the only knob this stub honors).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates values of `Self::Value` (no shrinking in this stub).
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a strategy from each generated value (used for
        /// length-linked composite inputs).
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { source: self, f }
        }

        /// Maps generated values.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2,
        S2: Strategy,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let mid = self.source.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+),)*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
    );
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly picks one of the given options.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy choosing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by any
/// number of `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure, which this
/// stub's runner reports like any test panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism_per_name() {
        let strat = crate::collection::vec(0u32..100, 3..8);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn vec_exact_len() {
        let strat = crate::collection::vec(-1.0f32..1.0, 5usize);
        let mut rng = TestRng::for_test("exact");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn select_picks_members() {
        let strat = crate::sample::select(vec![2u64, 4, 8]);
        let mut rng = TestRng::for_test("sel");
        for _ in 0..50 {
            assert!([2, 4, 8].contains(&strat.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_args(
            n in 1usize..10,
            flip in crate::bool::ANY,
            pair in (0u32..5, Just(7i32)),
        ) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!(flip || !flip);
            prop_assert_eq!(pair.1, 7);
        }

        #[test]
        fn flat_map_links_lengths(
            vs in crate::collection::vec(0u8..255, 1..4)
                .prop_flat_map(|v| {
                    let len = v.len();
                    (crate::collection::vec(0u8..255, len), Just(len))
                }),
        ) {
            prop_assert_eq!(vs.0.len(), vs.1);
        }
    }
}
