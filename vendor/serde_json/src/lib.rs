//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Parses/prints the vendored `serde` stub's [`Value`] data model. Supports
//! the full JSON grammar (escapes, exponents, nesting); the API surface is
//! what this workspace calls: `to_writer`, `from_reader`, `to_string`,
//! `to_string_pretty`, `from_str`, and `Value` inspection.

use std::fmt;
use std::io::{Read, Write};

pub use serde::{Number, Value};
use serde::{Deserialize, Serialize};

/// Parse/serialize/io error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 192 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this stub's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing a whole load.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a `Value` from text, requiring the whole input to be consumed.
fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser::new(text);
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                // Display on a String value gives the escaped literal.
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        compact => out.push_str(&compact.to_string()),
    }
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible in this stub; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to human-readable JSON (2-space indent).
///
/// # Errors
///
/// Infallible in this stub; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
///
/// # Errors
///
/// Returns [`Error`] when the writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::from_value(&parse_value(text)?)?)
}

/// Deserializes a value from a JSON reader.
///
/// # Errors
///
/// Returns [`Error`] on read failure, malformed JSON, or shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a": [1, -2, 3.5e2], "b": "x\n\"y\"", "c": null, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(350.0));
        assert_eq!(v["b"].as_str(), Some("x\n\"y\""));
        assert!(v["c"].is_null());
        assert_eq!(v["d"].as_bool(), Some(true));
        let reparsed: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<Value>("not json at all {{{").is_err());
        assert!(from_str::<Value>("{\"a\": 1,}").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Value = from_str(r#"{"rows": [{"x": 1.25}, {"x": 2}], "empty": []}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"rows\": [\n"));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.123_456_789_012_345_67f64;
        let v: Value = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(v.as_f64(), Some(x));
    }
}
