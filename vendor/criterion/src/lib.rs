//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Benchmarks compile and run with the same registration surface
//! (`criterion_group!`/`criterion_main!`, groups, `bench_with_input`), but the
//! harness is a plain wall-clock sampler: warm-up, `sample_size` timed
//! samples, median/mean printed to stdout. No statistics, baselines, or HTML
//! reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and registrar.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Function + parameter benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label made of a function name and a parameter value.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its result alive via [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, also used to pick an iteration count that makes one
        // sample take a measurable (>= ~1ms) amount of time.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1000) as u64;
        self.per_sample_iters = iters;
        let n_samples = self.samples.capacity();
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / u32::try_from(iters).unwrap_or(1));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters: 0,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<50} (no measurement: closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / u32::try_from(b.samples.len()).unwrap_or(1);
    println!(
        "bench {label:<50} median {:>12}   mean {:>12}   (n={}, {} iter/sample)",
        format_duration(median),
        format_duration(mean),
        b.samples.len(),
        b.per_sample_iters,
    );
}

/// Bundles benchmark functions into a runnable group, mirroring both real
/// forms: `criterion_group!(name, targets...)` and
/// `criterion_group!(name = ...; config = ...; targets = ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    );

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
