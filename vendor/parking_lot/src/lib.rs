//! Offline stand-in for `parking_lot` (see `vendor/README.md`): the
//! poison-free `Mutex`/`RwLock` API backed by `std::sync` primitives.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with `parking_lot`'s panic-on-poison-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Locks, recovering the value even if a holder panicked (parking_lot
    /// mutexes are not poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RwLock with `parking_lot`'s poison-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
