//! Offline stand-in for `crossbeam` (see `vendor/README.md`): scoped threads
//! with crossbeam's `scope(|s| ...) -> Result` shape, backed by
//! `std::thread::scope`.

/// Scoped-thread module mirroring `crossbeam::thread`.
pub mod thread {
    /// Spawn handle passed to the scope closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope again
        /// (crossbeam's signature); joining happens when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A worker panic is reported as `Err`, as in crossbeam.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload when any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_reported() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
