//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Emits impls of the vendored `serde` stub's value-model traits
//! (`Serialize::to_value` / `Deserialize::from_value`). The parser walks the
//! raw `proc_macro` token stream — no `syn`/`quote` — and supports exactly the
//! shapes this workspace derives on:
//!
//! - non-generic structs with named fields,
//! - enums whose variants are unit or have named fields.
//!
//! `#[serde(...)]` attributes are not supported (none exist in the
//! workspace); encountering an unsupported shape is a compile error, not a
//! silent misencode.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// Named-field struct: (name, field names).
    Struct(String, Vec<String>),
    /// Enum: (name, variants); each variant is (name, field names) with an
    /// empty field list meaning a unit variant.
    Enum(String, Vec<(String, Vec<String>)>),
}

/// Skips attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the field names out of a named-field brace group.
fn parse_named_fields(group: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde stub derive: expected field name, got {:?}", tokens[i]);
        };
        fields.push(name.to_string());
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':' after field, got {other:?}"),
        }
        // Skip the type: commas nested in <...> are not separators.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses the variants out of an enum body brace group.
fn parse_variants(group: &TokenStream) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde stub derive: expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push((name, parse_named_fields(&g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stub derive: tuple variant `{name}` is not supported");
            }
            _ => variants.push((name, Vec::new())),
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: &TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde stub derive: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde stub derive: generic item `{name}` is not supported");
    }
    let TokenTree::Group(body) = &tokens[i] else {
        panic!("serde stub derive: `{name}` must have a brace body (tuple/unit items unsupported)");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "serde stub derive: `{name}` must have named fields"
    );
    match kind.as_str() {
        "struct" => Item::Struct(name, parse_named_fields(&body.stream())),
        "enum" => Item::Enum(name, parse_variants(&body.stream())),
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn object_literal(fields: &[String], access: &str) -> String {
    let mut s = String::from("::serde::Value::Object(::std::vec![");
    for f in fields {
        s.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access}{f})),"
        ));
    }
    s.push_str("])");
    s
}

fn header(name: &str, trait_name: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::{trait_name} for {name} "
    )
}

/// Derives the stub `serde::Serialize` (`to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(&input) {
        Item::Struct(name, fields) => {
            out.push_str(&header(&name, "Serialize"));
            out.push_str("{ fn to_value(&self) -> ::serde::Value { ");
            out.push_str(&object_literal(&fields, "&self."));
            out.push_str(" } }");
        }
        Item::Enum(name, variants) => {
            out.push_str(&header(&name, "Serialize"));
            out.push_str("{ fn to_value(&self) -> ::serde::Value { match self { ");
            for (v, fields) in &variants {
                if fields.is_empty() {
                    out.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ));
                } else {
                    let binds = fields.join(", ");
                    out.push_str(&format!(
                        "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), {})]),",
                        object_literal(fields, "")
                    ));
                }
            }
            out.push_str(" } } }");
        }
    }
    out.parse().expect("serde stub derive: generated invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` (`from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(&input) {
        Item::Struct(name, fields) => {
            out.push_str(&header(&name, "Deserialize"));
            out.push_str(
                "{ fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> { \
                 ::std::result::Result::Ok(Self { ",
            );
            for f in &fields {
                out.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     ::serde::__private::field(v, \"{f}\", \"{name}\")?)?,"
                ));
            }
            out.push_str(" }) } }");
        }
        Item::Enum(name, variants) => {
            out.push_str(&header(&name, "Deserialize"));
            out.push_str(
                "{ fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> { match v { ",
            );
            let units: Vec<_> = variants.iter().filter(|(_, f)| f.is_empty()).collect();
            let structs: Vec<_> = variants.iter().filter(|(_, f)| !f.is_empty()).collect();
            if !units.is_empty() {
                out.push_str("::serde::Value::String(s) => match s.as_str() { ");
                for (v, _) in &units {
                    out.push_str(&format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"));
                }
                out.push_str(&format!(
                    "other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(other, \"{name}\")), }},"
                ));
            }
            if !structs.is_empty() {
                out.push_str(
                    "::serde::Value::Object(entries) if entries.len() == 1 => { \
                     let (tag, inner) = &entries[0]; match tag.as_str() { ",
                );
                for (v, fields) in &structs {
                    out.push_str(&format!("\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ "));
                    for f in fields.iter() {
                        out.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::__private::field(inner, \"{f}\", \"{name}::{v}\")?)?,"
                        ));
                    }
                    out.push_str(" }),");
                }
                out.push_str(&format!(
                    "other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(other, \"{name}\")), }} }},"
                ));
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(\
                 ::serde::DeError::invalid_type(\"{name}\", other)), }} }} }}"
            ));
        }
    }
    out.parse().expect("serde stub derive: generated invalid Deserialize impl")
}
