//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Instead of serde's visitor architecture this stub uses a concrete JSON-like
//! data model: `Serialize` renders a [`Value`], `Deserialize` reads one. The
//! vendored `serde_derive` emits impls of these traits and `serde_json`
//! parses/prints `Value`. The surface is exactly what this workspace uses;
//! `#[serde(...)]` attributes and zero-copy deserialization are out of scope.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Mutex, OnceLock};

pub use serde_derive::{Deserialize, Serialize};

/// JSON-style number, kept exact for integers (like `serde_json::Number`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64` (exact for integers below 2^53).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

/// The serialization data model (mirrors `serde_json::Value`).
///
/// Objects preserve insertion order, so serialized structs list fields in
/// declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Numeric view.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// Signed-integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::NegInt(i)) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for non-objects/missing keys (as in
    /// `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Writes `s` as a JSON string literal.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            // Rust's shortest-roundtrip Display; non-finite floats have no
            // JSON representation and degrade to null (serde_json errors
            // instead, but this stub keeps serialization infallible).
            Number::Float(x) if x.is_finite() => write!(f, "{x}"),
            Number::Float(_) => f.write_str("null"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON (what `serde_json::to_string` would produce).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Deserialization error (stands in for `serde::de::Error` machinery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Missing object field.
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while reading {ty}"))
    }

    /// Unknown enum variant tag.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Shape mismatch.
    #[must_use]
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("invalid type: expected {expected}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Helpers referenced by derive-generated code. Not part of the public API.
pub mod __private {
    use super::{DeError, Value};

    /// Looks up a struct field, reporting the owning type on failure.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` is not an object or lacks `field`.
    pub fn field<'a>(v: &'a Value, field: &str, ty: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Object(_) => v.get(field).ok_or_else(|| DeError::missing_field(field, ty)),
            other => Err(DeError::invalid_type(ty, other)),
        }
    }
}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reads `Self` back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::invalid_type("bool", v))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(u)) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range"))),
                    other => Err(DeError::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::invalid_type(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|i| {
            isize::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range")))
        })
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = f64::from(*self);
                if x.is_finite() {
                    Value::Number(Number::Float(x))
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's lossy mode.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // Integers appear whenever a float serialized without a
                    // fractional part (e.g. 2.0 prints as "2").
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::invalid_type("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// Interns a string, leaking at most once per distinct value — supports
/// `&'static str` fields (device and dataset names) deriving `Deserialize`.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&leaked) = pool.get(s) {
        return leaked;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), leaked);
    leaked
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(intern)
            .ok_or_else(|| DeError::invalid_type("string", v))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::invalid_type("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    /// Serializes as a JSON object; keys appear in the map's sorted order.
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
                .collect(),
            other => Err(DeError::invalid_type("object", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::invalid_type("tuple", v))?;
                const LEN: usize = [$($n),+].len();
                if arr.len() != LEN {
                    return Err(DeError::custom(format!(
                        "tuple length {} != {LEN}", arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [0u64, 1, u64::from(u32::MAX) + 7] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        // A fraction-free float serializes like an integer and must come back.
        assert_eq!(f64::from_value(&Value::Number(Number::PosInt(2))).unwrap(), 2.0);
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn static_str_interning() {
        let v = Value::String("Tesla P100".to_string());
        let a = <&'static str>::from_value(&v).unwrap();
        let b = <&'static str>::from_value(&v).unwrap();
        assert_eq!(a, "Tesla P100");
        assert!(std::ptr::eq(a, b), "second lookup must not re-leak");
    }

    #[test]
    fn compact_display() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::PosInt(1))),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![]);
        assert!(v["nope"].is_null());
        assert!(Value::Null["x"].is_null());
    }
}
