//! Property-based tests of the training substrate's invariants.

use proptest::prelude::*;

use tahoe_datasets::{Dataset, ForestKind, SampleMatrix, Task};
use tahoe_forest::train::gbdt::{self, GbdtParams};
use tahoe_forest::train::random_forest::{self, RandomForestParams};
use tahoe_forest::train::TrainParams;
use tahoe_forest::{predict_dataset, predict_sample};

/// A deterministic dataset with a learnable threshold rule.
fn threshold_dataset(n: usize, d: usize, seed: u64, label_noise: bool) -> Dataset {
    let mut values = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n {
        let start = values.len();
        for _ in 0..d {
            values.push((next() % 1000) as f32 / 100.0 - 5.0);
        }
        let pivot = values[start];
        let noisy = label_noise && next() % 20 == 0;
        let raw = pivot > 0.0;
        labels.push(f32::from(u8::from(raw != noisy)));
    }
    Dataset::new("prop", SampleMatrix::from_vec(n, d, values), labels)
}

fn params(n_trees: usize, depth: usize) -> TrainParams {
    TrainParams {
        n_trees,
        max_depth: depth,
        depth_jitter: false,
        ..TrainParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gbdt_respects_structural_limits(
        seed in 1u64..100_000,
        n_trees in 1usize..12,
        depth in 1usize..5,
    ) {
        let data = threshold_dataset(256, 4, seed, true);
        let p = GbdtParams {
            base: params(n_trees, depth),
            ..GbdtParams::default()
        };
        let forest = gbdt::train(&p, &data, Task::BinaryClassification);
        prop_assert_eq!(forest.n_trees(), n_trees);
        prop_assert_eq!(forest.kind(), ForestKind::Gbdt);
        for tree in forest.trees() {
            prop_assert!(tree.depth() <= depth, "depth {} > {}", tree.depth(), depth);
            prop_assert!(tree.n_nodes() >= 1);
            prop_assert_eq!(tree.n_leaves(), tree.n_nodes() / 2 + 1);
        }
    }

    #[test]
    fn left_probs_are_valid_probabilities(
        seed in 1u64..100_000,
        n_trees in 1usize..8,
    ) {
        let data = threshold_dataset(200, 3, seed, true);
        let p = RandomForestParams { base: params(n_trees, 4) };
        let forest = random_forest::train(&p, &data, Task::BinaryClassification);
        for tree in forest.trees() {
            for node in tree.nodes() {
                if let tahoe_forest::Node::Decision { left_prob, .. } = node {
                    prop_assert!(*left_prob > 0.0 && *left_prob < 1.0,
                        "left_prob {} out of (0,1)", left_prob);
                }
            }
            // Node probabilities are a valid distribution over leaves.
            let probs = tree.node_probabilities();
            let leaf_mass: f32 = tree
                .nodes()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_leaf())
                .map(|(i, _)| probs[i])
                .sum();
            prop_assert!((leaf_mass - 1.0).abs() < 1e-3, "leaf mass {}", leaf_mass);
        }
    }

    #[test]
    fn predictions_are_finite_even_with_missing_values(
        seed in 1u64..100_000,
        missing_lane in 0usize..3,
    ) {
        let data = threshold_dataset(200, 3, seed, false);
        let p = GbdtParams {
            base: params(5, 3),
            ..GbdtParams::default()
        };
        let forest = gbdt::train(&p, &data, Task::BinaryClassification);
        let mut sample = data.samples.row(0).to_vec();
        sample[missing_lane] = f32::NAN;
        let pred = predict_sample(&forest, &sample);
        prop_assert!(pred.is_finite());
    }

    #[test]
    fn rf_predictions_are_convex_combinations_of_leaves(
        seed in 1u64..100_000,
    ) {
        // With 0/1 targets, every RF leaf value lies in [0, 1], so the
        // average over trees must too.
        let data = threshold_dataset(300, 3, seed, true);
        let p = RandomForestParams { base: params(9, 4) };
        let forest = random_forest::train(&p, &data, Task::BinaryClassification);
        let preds = predict_dataset(&forest, &data.samples);
        for p in preds {
            prop_assert!((-1e-4..=1.0 + 1e-4).contains(&p), "prediction {p}");
        }
    }

    #[test]
    fn more_boosting_rounds_do_not_hurt_training_fit(
        seed in 1u64..100_000,
    ) {
        let data = threshold_dataset(400, 3, seed, false);
        let loss = |n_trees: usize| {
            let p = GbdtParams {
                base: params(n_trees, 3),
                subsample: 1.0,
                ..GbdtParams::default()
            };
            let forest = gbdt::train(&p, &data, Task::BinaryClassification);
            let preds = predict_dataset(&forest, &data.samples);
            preds
                .iter()
                .zip(&data.labels)
                .map(|(score, y)| {
                    // Logistic loss on the raw score.
                    let s = f64::from(*score);
                    let y = f64::from(*y);
                    (1.0 + s.exp()).ln() - y * s
                })
                .sum::<f64>()
        };
        let few = loss(2);
        let many = loss(12);
        prop_assert!(many <= few * 1.001, "training loss rose: {few} -> {many}");
    }
}
