//! Tree node representation.

use serde::{Deserialize, Serialize};

/// Index of a node within its tree's node arena.
pub type NodeId = u32;

/// A binary decision-tree node (paper §2).
///
/// A decision node tests `sample[attribute] < threshold`; `true` routes to the
/// left child, `false` to the right. When the attribute value is missing
/// (`NaN`), the *default path* is taken (`default_left`). `left_prob` is the
/// training-time edge probability of the left edge — the data property the
/// probability-based node rearrangement of §4.1 consumes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Interior (or root) node with a split condition.
    Decision {
        /// Attribute index tested by this node.
        attribute: u32,
        /// Split threshold; the left branch is taken when `value < threshold`.
        threshold: f32,
        /// Whether a missing attribute value routes left.
        default_left: bool,
        /// Left child id.
        left: NodeId,
        /// Right child id.
        right: NodeId,
        /// Probability (from training data) that a visit to this node takes
        /// the left edge. `0.5` when never measured.
        left_prob: f32,
    },
    /// Terminal node carrying the tree's output contribution.
    Leaf {
        /// Prediction value (raw score for GBDT, mean target for RF).
        value: f32,
    },
}

impl Node {
    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// The leaf value, if this is a leaf.
    #[must_use]
    pub fn leaf_value(&self) -> Option<f32> {
        match self {
            Node::Leaf { value } => Some(*value),
            Node::Decision { .. } => None,
        }
    }

    /// The children ids `(left, right)`, if this is a decision node.
    #[must_use]
    pub fn children(&self) -> Option<(NodeId, NodeId)> {
        match self {
            Node::Decision { left, right, .. } => Some((*left, *right)),
            Node::Leaf { .. } => None,
        }
    }

    /// The attribute tested by this node, if any.
    #[must_use]
    pub fn attribute(&self) -> Option<u32> {
        match self {
            Node::Decision { attribute, .. } => Some(*attribute),
            Node::Leaf { .. } => None,
        }
    }

    /// Routes a sample through this decision node.
    ///
    /// Returns the child to visit next, honouring the default path on missing
    /// values. Returns `None` for leaves.
    #[must_use]
    pub fn route(&self, sample: &[f32]) -> Option<NodeId> {
        match *self {
            Node::Leaf { .. } => None,
            Node::Decision {
                attribute,
                threshold,
                default_left,
                left,
                right,
                ..
            } => {
                let v = sample[attribute as usize];
                let go_left = if v.is_nan() { default_left } else { v < threshold };
                Some(if go_left { left } else { right })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision() -> Node {
        Node::Decision {
            attribute: 1,
            threshold: 0.5,
            default_left: false,
            left: 1,
            right: 2,
            left_prob: 0.7,
        }
    }

    #[test]
    fn route_follows_threshold() {
        let n = decision();
        assert_eq!(n.route(&[9.9, 0.4]), Some(1));
        assert_eq!(n.route(&[9.9, 0.5]), Some(2));
        assert_eq!(n.route(&[9.9, 0.6]), Some(2));
    }

    #[test]
    fn route_takes_default_on_missing() {
        let n = decision();
        assert_eq!(n.route(&[0.0, f32::NAN]), Some(2));
        let n_left = Node::Decision {
            attribute: 1,
            threshold: 0.5,
            default_left: true,
            left: 1,
            right: 2,
            left_prob: 0.5,
        };
        assert_eq!(n_left.route(&[0.0, f32::NAN]), Some(1));
    }

    #[test]
    fn leaf_has_no_route() {
        let leaf = Node::Leaf { value: 3.0 };
        assert_eq!(leaf.route(&[1.0]), None);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.leaf_value(), Some(3.0));
        assert_eq!(decision().leaf_value(), None);
    }

    #[test]
    fn accessors() {
        let n = decision();
        assert_eq!(n.children(), Some((1, 2)));
        assert_eq!(n.attribute(), Some(1));
        assert!(!n.is_leaf());
    }
}
