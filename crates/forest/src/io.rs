//! Forest (de)serialization.
//!
//! JSON via serde — human-readable, diffable, and sufficient for the model
//! sizes in this reproduction. Binary device formats live in the `tahoe`
//! crate; this module is for persistence and interchange.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::forest::Forest;

/// Errors from forest persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Malformed forest file.
    Format(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "filesystem error: {e}"),
            IoError::Format(e) => write!(f, "forest format error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Format(e)
    }
}

/// Saves a forest as JSON.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_forest(forest: &Forest, path: &Path) -> Result<(), IoError> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), forest)?;
    Ok(())
}

/// Loads a forest from JSON.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure.
pub fn load_forest(path: &Path) -> Result<Forest, IoError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::tree::Tree;
    use tahoe_datasets::{ForestKind, Task};

    fn forest() -> Forest {
        let tree = Tree::new(vec![
            Node::Decision {
                attribute: 2,
                threshold: 1.5,
                default_left: false,
                left: 1,
                right: 2,
                left_prob: 0.8,
            },
            Node::Leaf { value: -0.5 },
            Node::Leaf { value: 0.5 },
        ]);
        Forest::new(vec![tree], 3, ForestKind::RandomForest, Task::BinaryClassification, 0.0)
    }

    #[test]
    fn roundtrip_preserves_forest() {
        let dir = std::env::temp_dir().join("tahoe_forest_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forest.json");
        let f = forest();
        save_forest(&f, &path).unwrap();
        let loaded = load_forest(&path).unwrap();
        assert_eq!(f, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_fs_error() {
        let err = load_forest(Path::new("/nonexistent/forest.json")).unwrap_err();
        assert!(matches!(err, IoError::Fs(_)));
        assert!(err.to_string().contains("filesystem"));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let dir = std::env::temp_dir().join("tahoe_forest_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all {{{").unwrap();
        let err = load_forest(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        std::fs::remove_file(&path).ok();
    }
}
