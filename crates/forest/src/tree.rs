//! A single binary decision tree stored in an index arena.

use serde::{Deserialize, Serialize};

use crate::node::{Node, NodeId};

/// A binary decision tree.
///
/// Nodes live in an arena; the root is node `0`. Child ids always point
/// forward (child id > parent id), an invariant established by the builders
/// and preserved by child swapping, which keeps breadth-first layouts
/// well-defined.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Wraps an arena of nodes into a tree.
    ///
    /// # Panics
    ///
    /// Panics if the arena is empty or a child id does not point forward.
    #[must_use]
    pub fn new(nodes: Vec<Node>) -> Self {
        assert!(!nodes.is_empty(), "a tree needs at least one node");
        for (i, n) in nodes.iter().enumerate() {
            if let Some((l, r)) = n.children() {
                assert!(
                    (l as usize) > i && (r as usize) > i,
                    "child ids must point forward (node {i})"
                );
                assert!(
                    (l as usize) < nodes.len() && (r as usize) < nodes.len(),
                    "child id out of range (node {i})"
                );
            }
        }
        Self { nodes }
    }

    /// A tree consisting of a single leaf.
    #[must_use]
    pub fn leaf(value: f32) -> Self {
        Self {
            nodes: vec![Node::Leaf { value }],
        }
    }

    /// Immutable node arena.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node count.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Number of leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree: number of edges on the longest root-to-leaf path.
    ///
    /// A single-leaf tree has depth 0.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, id: NodeId) -> usize {
        match self.node(id).children() {
            None => 0,
            Some((l, r)) => 1 + self.depth_of(l).max(self.depth_of(r)),
        }
    }

    /// Depth (edges from the root) of every node.
    #[must_use]
    pub fn node_depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.nodes.len()];
        // Parents precede children, so a forward pass suffices.
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some((l, r)) = n.children() {
                depths[l as usize] = depths[i] + 1;
                depths[r as usize] = depths[i] + 1;
            }
        }
        depths
    }

    /// Predicts one sample, returning the reached leaf's value.
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer attributes than a node references.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        let mut id: NodeId = 0;
        loop {
            match self.node(id).route(sample) {
                Some(next) => id = next,
                None => {
                    return self
                        .node(id)
                        .leaf_value()
                        .expect("route() returned None only on leaves");
                }
            }
        }
    }

    /// Predicts one sample, returning the full root-to-leaf path of node ids.
    #[must_use]
    pub fn predict_path(&self, sample: &[f32]) -> Vec<NodeId> {
        let mut id: NodeId = 0;
        let mut path = vec![0];
        while let Some(next) = self.node(id).route(sample) {
            path.push(next);
            id = next;
        }
        path
    }

    /// Probability that each node is visited (paper §2, "node probability").
    ///
    /// Computed as the product of edge probabilities along the path from the
    /// root; the root has probability 1.
    #[must_use]
    pub fn node_probabilities(&self) -> Vec<f32> {
        let mut probs = vec![0.0f32; self.nodes.len()];
        probs[0] = 1.0;
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Decision {
                left,
                right,
                left_prob,
                ..
            } = n
            {
                probs[*left as usize] += probs[i] * left_prob;
                probs[*right as usize] += probs[i] * (1.0 - left_prob);
            }
        }
        probs
    }

    /// Ids of nodes at each depth level, root first (breadth-first levels).
    #[must_use]
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let depths = self.node_depths();
        let max = depths.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max + 1];
        // Iterate in a BFS order so the within-level order is
        // left-to-right as in the paper's reorg figure.
        let mut queue = std::collections::VecDeque::from([0 as NodeId]);
        while let Some(id) = queue.pop_front() {
            levels[depths[id as usize]].push(id);
            if let Some((l, r)) = self.node(id).children() {
                queue.push_back(l);
                queue.push_back(r);
            }
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-level tree:
    ///         0 (a0 < 0.0)
    ///        /            \
    ///       1 (a1 < 1.0)   2 (leaf 5.0)
    ///      /    \
    ///     3(1.0) 4(2.0)
    pub(crate) fn sample_tree() -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.6,
            },
            Node::Decision {
                attribute: 1,
                threshold: 1.0,
                default_left: false,
                left: 3,
                right: 4,
                left_prob: 0.25,
            },
            Node::Leaf { value: 5.0 },
            Node::Leaf { value: 1.0 },
            Node::Leaf { value: 2.0 },
        ])
    }

    #[test]
    fn predict_routes_correctly() {
        let t = sample_tree();
        assert_eq!(t.predict(&[-1.0, 0.5]), 1.0);
        assert_eq!(t.predict(&[-1.0, 2.0]), 2.0);
        assert_eq!(t.predict(&[1.0, 0.0]), 5.0);
    }

    #[test]
    fn predict_path_includes_root_and_leaf() {
        let t = sample_tree();
        assert_eq!(t.predict_path(&[-1.0, 0.5]), vec![0, 1, 3]);
        assert_eq!(t.predict_path(&[1.0, 0.0]), vec![0, 2]);
    }

    #[test]
    fn structure_metrics() {
        let t = sample_tree();
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.node_depths(), vec![0, 1, 1, 2, 2]);
    }

    #[test]
    fn node_probabilities_multiply_down() {
        let t = sample_tree();
        let p = t.node_probabilities();
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!((p[1] - 0.6).abs() < 1e-6);
        assert!((p[2] - 0.4).abs() < 1e-6);
        assert!((p[3] - 0.15).abs() < 1e-6);
        assert!((p[4] - 0.45).abs() < 1e-6);
    }

    #[test]
    fn levels_are_breadth_first() {
        let t = sample_tree();
        assert_eq!(t.levels(), vec![vec![0], vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn leaf_tree_has_depth_zero() {
        let t = Tree::leaf(7.0);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[]), 7.0);
    }

    #[test]
    #[should_panic(expected = "child ids must point forward")]
    fn backward_child_rejected() {
        let _ = Tree::new(vec![
            Node::Leaf { value: 0.0 },
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 0,
                right: 0,
                left_prob: 0.5,
            },
        ]);
    }
}
