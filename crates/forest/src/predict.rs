//! Reference CPU inference (ground truth for the simulated engines).

use tahoe_datasets::SampleMatrix;

use crate::forest::Forest;

/// Predicts one sample: aggregated ensemble output.
///
/// GBDT returns the raw score (logit for classification); random forests
/// return the mean tree output. This matches what the simulated GPU engines
/// compute, so results can be compared bit-for-bit up to float associativity.
#[must_use]
pub fn predict_sample(forest: &Forest, sample: &[f32]) -> f32 {
    let sum: f32 = forest.trees().iter().map(|t| t.predict(sample)).sum();
    forest.aggregate(sum)
}

/// Predicts every row of `samples`.
#[must_use]
pub fn predict_dataset(forest: &Forest, samples: &SampleMatrix) -> Vec<f32> {
    (0..samples.n_samples())
        .map(|i| predict_sample(forest, samples.row(i)))
        .collect()
}

/// Per-tree raw outputs for one sample (used to validate reductions).
#[must_use]
pub fn per_tree_outputs(forest: &Forest, sample: &[f32]) -> Vec<f32> {
    forest.trees().iter().map(|t| t.predict(sample)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::tree::Tree;
    use tahoe_datasets::{ForestKind, Task};

    fn stub_forest(kind: ForestKind) -> Forest {
        let tree = |v: f32| {
            Tree::new(vec![
                Node::Decision {
                    attribute: 0,
                    threshold: 0.5,
                    default_left: true,
                    left: 1,
                    right: 2,
                    left_prob: 0.5,
                },
                Node::Leaf { value: v },
                Node::Leaf { value: -v },
            ])
        };
        Forest::new(vec![tree(1.0), tree(3.0)], 1, kind, Task::Regression, 0.25)
    }

    #[test]
    fn predict_sample_matches_manual_sum() {
        let f = stub_forest(ForestKind::Gbdt);
        // x=0 routes left in both trees: 1 + 3 + base 0.25.
        assert!((predict_sample(&f, &[0.0]) - 4.25).abs() < 1e-6);
        // x=1 routes right: -1 - 3 + 0.25.
        assert!((predict_sample(&f, &[1.0]) + 3.75).abs() < 1e-6);
    }

    #[test]
    fn rf_averages() {
        let f = stub_forest(ForestKind::RandomForest);
        assert!((predict_sample(&f, &[0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn per_tree_outputs_sum_to_prediction() {
        let f = stub_forest(ForestKind::Gbdt);
        let outs = per_tree_outputs(&f, &[0.0]);
        let agg = f.aggregate(outs.iter().sum());
        assert!((agg - predict_sample(&f, &[0.0])).abs() < 1e-6);
    }

    #[test]
    fn predict_dataset_covers_all_rows() {
        let f = stub_forest(ForestKind::Gbdt);
        let m = SampleMatrix::from_vec(3, 1, vec![0.0, 1.0, 0.2]);
        let preds = predict_dataset(&f, &m);
        assert_eq!(preds.len(), 3);
        assert!((preds[0] - 4.25).abs() < 1e-6);
    }
}
