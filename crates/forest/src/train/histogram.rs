//! Feature binning and gradient histograms.
//!
//! Values are quantized once per training run into at most `n_bins` bins per
//! feature (quantile-based edges, as in XGBoost's approximate algorithm).
//! Split finding then scans per-bin gradient statistics instead of sorted raw
//! values.

use tahoe_datasets::SampleMatrix;

/// Bin index reserved for missing (`NaN`) values.
pub const MISSING_BIN: u8 = u8::MAX;

/// Maximum usable bins per feature (one index is reserved for missing).
pub const MAX_BINS: usize = (MISSING_BIN as usize) - 1;

/// A quantized view of a sample matrix.
///
/// `bin(sample, feature)` is the number of candidate thresholds `<= value`,
/// so the split "value < edges\[k\]" is exactly "bin <= k".
#[derive(Clone, Debug)]
pub struct BinnedMatrix {
    n_samples: usize,
    n_features: usize,
    bins: Vec<u8>,
    /// Candidate thresholds per feature, ascending and distinct.
    edges: Vec<Vec<f32>>,
}

impl BinnedMatrix {
    /// Quantizes `matrix` into at most `n_bins` bins per feature.
    ///
    /// Edge candidates are quantiles computed over a bounded subsample of
    /// rows, so binning cost is `O(n_features * min(n, cap) log)` regardless
    /// of dataset size.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins` is 0 or exceeds [`MAX_BINS`].
    #[must_use]
    pub fn build(matrix: &SampleMatrix, n_bins: usize) -> Self {
        assert!((1..=MAX_BINS).contains(&n_bins), "n_bins {n_bins} out of range");
        let n = matrix.n_samples();
        let d = matrix.n_attributes();
        const QUANTILE_CAP: usize = 4_096;
        let stride = (n / QUANTILE_CAP).max(1);
        let mut edges = Vec::with_capacity(d);
        let mut scratch: Vec<f32> = Vec::with_capacity(n.min(QUANTILE_CAP) + 1);
        for f in 0..d {
            scratch.clear();
            let mut has_missing = false;
            let mut i = 0;
            while i < n {
                let v = matrix.get(i, f);
                if v.is_nan() {
                    has_missing = true;
                } else {
                    scratch.push(v);
                }
                i += stride;
            }
            edges.push(quantile_edges(&mut scratch, n_bins, has_missing));
        }
        let mut bins = vec![0u8; n * d];
        for s in 0..n {
            let row = matrix.row(s);
            let out = &mut bins[s * d..(s + 1) * d];
            for f in 0..d {
                out[f] = bin_value(&edges[f], row[f]);
            }
        }
        Self {
            n_samples: n,
            n_features: d,
            bins,
            edges,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bin index of `(sample, feature)`; [`MISSING_BIN`] when missing.
    #[must_use]
    pub fn bin(&self, sample: usize, feature: usize) -> u8 {
        self.bins[sample * self.n_features + feature]
    }

    /// Candidate thresholds for a feature (ascending).
    #[must_use]
    pub fn edges(&self, feature: usize) -> &[f32] {
        &self.edges[feature]
    }

    /// Number of value bins for a feature (`edges.len() + 1`).
    #[must_use]
    pub fn n_value_bins(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }
}

/// Computes distinct quantile-based candidate thresholds.
///
/// An edge equal to the feature's minimum produces an always-empty left value
/// bin, which is useless *unless* the feature has missing values — then the
/// split "left on missing-default" still separates missing from present, so
/// the min-edge is kept.
fn quantile_edges(values: &mut [f32], n_bins: usize, has_missing: bool) -> Vec<f32> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(f32::total_cmp);
    let n = values.len();
    let min = values[0];
    let mut out = Vec::with_capacity(n_bins.saturating_sub(1));
    for k in 1..n_bins {
        let idx = k * n / n_bins;
        let v = values[idx.min(n - 1)];
        if (has_missing || v > min) && out.last().is_none_or(|&last| v > last) {
            out.push(v);
        }
    }
    out
}

/// Number of edges `<= value`; [`MISSING_BIN`] for `NaN`.
fn bin_value(edges: &[f32], value: f32) -> u8 {
    if value.is_nan() {
        return MISSING_BIN;
    }
    // Binary search for the partition point of `edge <= value`.
    let mut lo = 0usize;
    let mut hi = edges.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if edges[mid] <= value {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u8
}

/// Per-bin gradient statistics for one feature at one tree node.
#[derive(Clone, Debug, Default)]
pub struct FeatureHistogram {
    /// Sum of gradients per bin (last slot is the missing bin).
    pub sum_g: Vec<f64>,
    /// Sum of hessians per bin (last slot is the missing bin).
    pub sum_h: Vec<f64>,
    /// Sample count per bin (last slot is the missing bin).
    pub count: Vec<u32>,
}

impl FeatureHistogram {
    /// An empty histogram with `n_value_bins` value bins plus a missing slot.
    #[must_use]
    pub fn zeros(n_value_bins: usize) -> Self {
        Self {
            sum_g: vec![0.0; n_value_bins + 1],
            sum_h: vec![0.0; n_value_bins + 1],
            count: vec![0; n_value_bins + 1],
        }
    }

    /// Accumulates one sample.
    pub fn add(&mut self, bin: u8, g: f32, h: f32) {
        let idx = if bin == MISSING_BIN {
            self.sum_g.len() - 1
        } else {
            bin as usize
        };
        self.sum_g[idx] += f64::from(g);
        self.sum_h[idx] += f64::from(h);
        self.count[idx] += 1;
    }

    /// Index of the missing-value slot.
    #[must_use]
    pub fn missing_slot(&self) -> usize {
        self.sum_g.len() - 1
    }
}

/// Builds histograms for the selected features over the node's samples.
///
/// Large nodes (many samples × many features) split the feature set across
/// worker threads — features are independent accumulators, so this is a
/// clean parallel decomposition and the result is bit-identical to the
/// sequential pass. This is what makes `--scale paper` training tractable.
#[must_use]
pub fn build_histograms(
    binned: &BinnedMatrix,
    features: &[usize],
    indices: &[u32],
    g: &[f32],
    h: &[f32],
) -> Vec<FeatureHistogram> {
    // Below this many cell updates, thread spawn overhead dominates.
    const PARALLEL_CUTOFF: usize = 4_000_000;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(features.len().max(1));
    if workers <= 1 || indices.len().saturating_mul(features.len()) < PARALLEL_CUTOFF {
        return build_histograms_seq(binned, features, indices, g, h);
    }
    let chunk = features.len().div_ceil(workers);
    let mut out: Vec<FeatureHistogram> = Vec::with_capacity(features.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = features
            .chunks(chunk)
            .map(|feature_chunk| {
                scope.spawn(move || build_histograms_seq(binned, feature_chunk, indices, g, h))
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("histogram worker panicked"));
        }
    });
    out
}

fn build_histograms_seq(
    binned: &BinnedMatrix,
    features: &[usize],
    indices: &[u32],
    g: &[f32],
    h: &[f32],
) -> Vec<FeatureHistogram> {
    let mut hists: Vec<FeatureHistogram> = features
        .iter()
        .map(|&f| FeatureHistogram::zeros(binned.n_value_bins(f)))
        .collect();
    for &i in indices {
        let i = i as usize;
        let row = &binned.bins[i * binned.n_features..(i + 1) * binned.n_features];
        let (gi, hi) = (g[i], h[i]);
        for (slot, &f) in features.iter().enumerate() {
            hists[slot].add(row[f], gi, hi);
        }
    }
    hists
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_value_counts_edges_leq() {
        let edges = vec![1.0, 2.0, 3.0];
        assert_eq!(bin_value(&edges, 0.5), 0);
        assert_eq!(bin_value(&edges, 1.0), 1);
        assert_eq!(bin_value(&edges, 2.5), 2);
        assert_eq!(bin_value(&edges, 9.0), 3);
        assert_eq!(bin_value(&edges, f32::NAN), MISSING_BIN);
    }

    #[test]
    fn split_semantics_match_binning() {
        // "v < edges[k]" must be equivalent to "bin(v) <= k".
        let edges = vec![-1.0, 0.5, 2.0];
        for v in [-5.0f32, -1.0, -0.5, 0.5, 1.0, 2.0, 7.0] {
            for (k, &t) in edges.iter().enumerate() {
                assert_eq!(v < t, usize::from(bin_value(&edges, v)) <= k, "v={v} k={k}");
            }
        }
    }

    #[test]
    fn quantile_edges_are_distinct_ascending() {
        let mut vals: Vec<f32> = (0..100).map(|i| (i % 10) as f32).collect();
        let edges = quantile_edges(&mut vals, 8, false);
        for w in edges.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(edges.len() <= 7);
    }

    #[test]
    fn binned_matrix_roundtrip() {
        let m = SampleMatrix::from_vec(4, 2, vec![0.0, 10.0, 1.0, 20.0, 2.0, 30.0, 3.0, 40.0]);
        let b = BinnedMatrix::build(&m, 4);
        assert_eq!(b.n_samples(), 4);
        assert_eq!(b.n_features(), 2);
        // Feature 0 values 0..=3 must land in increasing bins.
        let bins: Vec<u8> = (0..4).map(|s| b.bin(s, 0)).collect();
        for w in bins.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(bins[3] > bins[0]);
    }

    #[test]
    fn missing_values_get_missing_bin() {
        let m = SampleMatrix::from_vec(2, 1, vec![f32::NAN, 1.0]);
        let b = BinnedMatrix::build(&m, 4);
        assert_eq!(b.bin(0, 0), MISSING_BIN);
        assert_ne!(b.bin(1, 0), MISSING_BIN);
    }

    #[test]
    fn histograms_accumulate() {
        let m = SampleMatrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, f32::NAN]);
        let b = BinnedMatrix::build(&m, 4);
        let g = vec![1.0, 2.0, 3.0, 4.0];
        let h = vec![1.0; 4];
        let hists = build_histograms(&b, &[0], &[0, 1, 2, 3], &g, &h);
        let hist = &hists[0];
        let total_g: f64 = hist.sum_g.iter().sum();
        assert!((total_g - 10.0).abs() < 1e-9);
        assert_eq!(hist.count.iter().sum::<u32>(), 4);
        assert_eq!(hist.count[hist.missing_slot()], 1);
    }

    #[test]
    fn constant_feature_has_no_edges() {
        let m = SampleMatrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]);
        let b = BinnedMatrix::build(&m, 8);
        assert!(b.edges(0).is_empty());
        assert_eq!(b.n_value_bins(0), 1);
    }
}
