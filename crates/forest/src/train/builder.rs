//! Single-tree builder over gradient/hessian pairs (XGBoost-style).

use rand::rngs::StdRng;
use rand::Rng;

use crate::node::{Node, NodeId};
use crate::train::histogram::{build_histograms, BinnedMatrix, FeatureHistogram};
use crate::train::TrainParams;
use crate::tree::Tree;

/// A chosen split for one node.
#[derive(Clone, Copy, Debug)]
struct Split {
    feature: usize,
    /// Index into the feature's edge array; threshold is `edges[edge_idx]`.
    edge_idx: usize,
    /// Whether missing values route left.
    default_left: bool,
    gain: f64,
}

/// Context shared across one tree build.
pub struct TreeBuilder<'a> {
    binned: &'a BinnedMatrix,
    g: &'a [f32],
    h: &'a [f32],
    params: &'a TrainParams,
    features: Vec<usize>,
    max_depth: usize,
    /// Scale applied to leaf values (the GBDT learning rate; 1.0 for RF).
    leaf_scale: f32,
}

impl<'a> TreeBuilder<'a> {
    /// Creates a builder for one tree.
    ///
    /// `features` is the per-tree column subsample; `max_depth` may differ
    /// from `params.max_depth` when depth jitter is enabled.
    #[must_use]
    pub fn new(
        binned: &'a BinnedMatrix,
        g: &'a [f32],
        h: &'a [f32],
        params: &'a TrainParams,
        features: Vec<usize>,
        max_depth: usize,
        leaf_scale: f32,
    ) -> Self {
        assert_eq!(g.len(), binned.n_samples());
        assert_eq!(h.len(), binned.n_samples());
        assert!(!features.is_empty(), "need at least one candidate feature");
        Self {
            binned,
            g,
            h,
            params,
            features,
            max_depth,
            leaf_scale,
        }
    }

    /// Builds the tree over the given root sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    #[must_use]
    pub fn build(&self, indices: Vec<u32>) -> Tree {
        assert!(!indices.is_empty(), "cannot build a tree on zero samples");
        let mut nodes: Vec<Node> = Vec::new();
        self.build_node(indices, 0, &mut nodes);
        Tree::new(nodes)
    }

    /// Recursively appends the subtree for `indices`; returns its root id.
    fn build_node(&self, indices: Vec<u32>, depth: usize, nodes: &mut Vec<Node>) -> NodeId {
        let id = nodes.len() as NodeId;
        if depth >= self.max_depth || indices.len() < 2 * self.params.min_samples_leaf {
            nodes.push(self.leaf(&indices));
            return id;
        }
        let hists = build_histograms(self.binned, &self.features, &indices, self.g, self.h);
        let Some(split) = self.best_split(&hists) else {
            nodes.push(self.leaf(&indices));
            return id;
        };
        let (left_idx, right_idx) = self.partition(&indices, split);
        if left_idx.len() < self.params.min_samples_leaf
            || right_idx.len() < self.params.min_samples_leaf
        {
            nodes.push(self.leaf(&indices));
            return id;
        }
        let left_prob = left_idx.len() as f32 / indices.len() as f32;
        drop(indices);
        // Reserve the decision slot, then append subtrees (children forward).
        nodes.push(Node::Leaf { value: 0.0 });
        let threshold = self.binned.edges(split.feature)[split.edge_idx];
        let left = self.build_node(left_idx, depth + 1, nodes);
        let right = self.build_node(right_idx, depth + 1, nodes);
        nodes[id as usize] = Node::Decision {
            attribute: split.feature as u32,
            threshold,
            default_left: split.default_left,
            left,
            right,
            left_prob,
        };
        id
    }

    /// Newton leaf value: `-G / (H + lambda)`, scaled by the learning rate.
    fn leaf(&self, indices: &[u32]) -> Node {
        let mut sum_g = 0.0f64;
        let mut sum_h = 0.0f64;
        for &i in indices {
            sum_g += f64::from(self.g[i as usize]);
            sum_h += f64::from(self.h[i as usize]);
        }
        let value = (-sum_g / (sum_h + f64::from(self.params.lambda))) as f32;
        Node::Leaf {
            value: value * self.leaf_scale,
        }
    }

    /// Finds the best (feature, edge) split across all candidate histograms.
    ///
    /// Missing values are tried on both sides (XGBoost's sparsity-aware
    /// split); `default_left` records the winning direction.
    fn best_split(&self, hists: &[FeatureHistogram]) -> Option<Split> {
        let lambda = f64::from(self.params.lambda);
        let mut best: Option<Split> = None;
        for (slot, hist) in hists.iter().enumerate() {
            let feature = self.features[slot];
            let n_edges = self.binned.edges(feature).len();
            if n_edges == 0 {
                continue;
            }
            let miss = hist.missing_slot();
            let (gm, hm) = (hist.sum_g[miss], hist.sum_h[miss]);
            let total_g: f64 = hist.sum_g.iter().sum();
            let total_h: f64 = hist.sum_h.iter().sum();
            let parent_score = total_g * total_g / (total_h + lambda);
            // Prefix over value bins 0..=k corresponds to "v < edges[k]".
            let mut gl = 0.0f64;
            let mut hl = 0.0f64;
            for k in 0..n_edges {
                gl += hist.sum_g[k];
                hl += hist.sum_h[k];
                for &missing_left in &[false, true] {
                    let (l_g, l_h) = if missing_left { (gl + gm, hl + hm) } else { (gl, hl) };
                    let (r_g, r_h) = (total_g - l_g, total_h - l_h);
                    if l_h <= 0.0 || r_h <= 0.0 {
                        continue;
                    }
                    let gain = l_g * l_g / (l_h + lambda) + r_g * r_g / (r_h + lambda)
                        - parent_score;
                    if gain > best.as_ref().map_or(1e-9, |b| b.gain) {
                        best = Some(Split {
                            feature,
                            edge_idx: k,
                            default_left: missing_left,
                            gain,
                        });
                    }
                }
            }
        }
        best
    }

    /// Partitions node samples by the chosen split.
    fn partition(&self, indices: &[u32], split: Split) -> (Vec<u32>, Vec<u32>) {
        let mut left = Vec::with_capacity(indices.len() / 2);
        let mut right = Vec::with_capacity(indices.len() / 2);
        for &i in indices {
            let bin = self.binned.bin(i as usize, split.feature);
            let go_left = if bin == crate::train::histogram::MISSING_BIN {
                split.default_left
            } else {
                usize::from(bin) <= split.edge_idx
            };
            if go_left {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        (left, right)
    }
}

/// Draws the per-tree feature subsample.
#[must_use]
pub fn sample_features(rng: &mut StdRng, n_features: usize, colsample: f64) -> Vec<usize> {
    let k = ((n_features as f64 * colsample).round() as usize).clamp(1, n_features);
    if k == n_features {
        return (0..n_features).collect();
    }
    // Partial Fisher–Yates.
    let mut all: Vec<usize> = (0..n_features).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n_features);
        all.swap(i, j);
    }
    all.truncate(k);
    all.sort_unstable();
    all
}

/// Draws this tree's max depth, honoring the depth-jitter flag.
///
/// The range is deliberately wide (25 %–100 % of the nominal depth): the
/// paper attributes its large thread-time imbalance ("up to 10x difference",
/// §1) to random attribute selection and post-pruning, which produce trees of
/// very different sizes within one ensemble.
#[must_use]
pub fn jittered_depth(rng: &mut StdRng, params: &TrainParams) -> usize {
    if !params.depth_jitter || params.max_depth <= 2 {
        return params.max_depth;
    }
    let lo = ((params.max_depth as f64) * 0.25).ceil() as usize;
    let lo = lo.max(2);
    rng.gen_range(lo..=params.max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tahoe_datasets::SampleMatrix;

    fn xor_ish_data() -> (SampleMatrix, Vec<f32>) {
        // A dataset splittable at x0 < 0.5 then x1 < 0.5.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..64 {
            let x0 = f32::from(u8::from(i % 2 == 0));
            let x1 = f32::from(u8::from((i / 2) % 2 == 0));
            values.extend_from_slice(&[x0, x1]);
            labels.push(if x0 == 0.0 && x1 == 0.0 { 4.0 } else { 1.0 });
        }
        (SampleMatrix::from_vec(64, 2, values), labels)
    }

    fn fit_tree(max_depth: usize) -> (Tree, SampleMatrix, Vec<f32>) {
        let (m, y) = xor_ish_data();
        let binned = BinnedMatrix::build(&m, 8);
        // RF-style: g = -y, h = 1 → leaf value = mean(y).
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0f32; y.len()];
        let params = TrainParams {
            max_depth,
            min_samples_leaf: 1,
            lambda: 0.0,
            ..TrainParams::default()
        };
        let b = TreeBuilder::new(&binned, &g, &h, &params, vec![0, 1], max_depth, 1.0);
        let tree = b.build((0..64).collect());
        (tree, m, y)
    }

    #[test]
    fn tree_learns_the_partition() {
        let (tree, m, y) = fit_tree(3);
        let mut worst = 0.0f32;
        for (i, target) in y.iter().enumerate() {
            let err = (tree.predict(m.row(i)) - target).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.1, "worst training error {worst}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let (tree, _, _) = fit_tree(1);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn left_prob_reflects_sample_mass() {
        let (tree, _, _) = fit_tree(3);
        for n in tree.nodes() {
            if let Node::Decision { left_prob, .. } = n {
                assert!(*left_prob > 0.0 && *left_prob < 1.0);
            }
        }
    }

    #[test]
    fn leaf_value_is_mean_under_rf_trick() {
        let params = TrainParams {
            lambda: 0.0,
            ..TrainParams::default()
        };
        let m = SampleMatrix::from_vec(3, 1, vec![0.0, 0.0, 0.0]);
        let binned = BinnedMatrix::build(&m, 4);
        let y = [2.0f32, 4.0, 6.0];
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0f32; 3];
        let b = TreeBuilder::new(&binned, &g, &h, &params, vec![0], 3, 1.0);
        let tree = b.build(vec![0, 1, 2]);
        assert!((tree.predict(&[0.0]) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn missing_values_follow_default_direction() {
        // Feature 0: half missing with high targets → default side should
        // capture them.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..32 {
            if i % 2 == 0 {
                values.push(f32::NAN);
                labels.push(10.0);
            } else {
                values.push(1.0);
                labels.push(0.0);
            }
            values.push(i as f32); // A second, noisy feature.
        }
        let m = SampleMatrix::from_vec(32, 2, values);
        let binned = BinnedMatrix::build(&m, 8);
        let g: Vec<f32> = labels.iter().map(|v: &f32| -v).collect();
        let h = vec![1.0f32; 32];
        let params = TrainParams {
            min_samples_leaf: 1,
            lambda: 0.0,
            ..TrainParams::default()
        };
        let b = TreeBuilder::new(&binned, &g, &h, &params, vec![0, 1], 4, 1.0);
        let tree = b.build((0..32).collect());
        let pred_missing = tree.predict(&[f32::NAN, 3.0]);
        assert!((pred_missing - 10.0).abs() < 0.5, "missing routed wrong: {pred_missing}");
    }

    #[test]
    fn sample_features_is_sorted_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = sample_features(&mut rng, 100, 0.2);
        assert_eq!(f.len(), 20);
        for w in f.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn jittered_depth_within_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = TrainParams {
            max_depth: 10,
            depth_jitter: true,
            ..TrainParams::default()
        };
        for _ in 0..100 {
            let d = jittered_depth(&mut rng, &params);
            assert!((3..=10).contains(&d));
        }
        let no_jitter = TrainParams {
            max_depth: 10,
            depth_jitter: false,
            ..TrainParams::default()
        };
        assert_eq!(jittered_depth(&mut rng, &no_jitter), 10);
    }
}
