//! Second-order gradient boosting (the paper's XGBoost stand-in).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tahoe_datasets::{Dataset, ForestKind, Task};

use crate::forest::Forest;
use crate::train::builder::{jittered_depth, sample_features, TreeBuilder};
use crate::train::histogram::BinnedMatrix;
use crate::train::{base_score, sigmoid, TrainParams};
use crate::tree::Tree;

/// GBDT-specific hyperparameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Shared training hyperparameters.
    pub base: TrainParams,
    /// Shrinkage applied to each tree's leaf values.
    pub learning_rate: f32,
    /// Fraction of rows sampled (without replacement) per boosting round.
    pub subsample: f64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            base: TrainParams::default(),
            learning_rate: 0.1,
            subsample: 0.8,
        }
    }
}

/// Trains a GBDT forest.
///
/// Logistic loss for [`Task::BinaryClassification`] (gradient `p - y`,
/// hessian `p (1 - p)`), squared loss for [`Task::Regression`] (gradient
/// `pred - y`, hessian `1`).
///
/// # Panics
///
/// Panics if the dataset is empty.
#[must_use]
pub fn train(params: &GbdtParams, data: &Dataset, task: Task) -> Forest {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();
    let binned = BinnedMatrix::build(&data.samples, params.base.n_bins);
    let mut rng = StdRng::seed_from_u64(params.base.seed);
    let base = base_score(task, &data.labels);
    let mut scores = vec![base; n];
    let mut g = vec![0.0f32; n];
    let mut h = vec![0.0f32; n];
    let mut trees: Vec<Tree> = Vec::with_capacity(params.base.n_trees);
    for _round in 0..params.base.n_trees {
        compute_gradients(task, &scores, &data.labels, &mut g, &mut h);
        let indices = subsample_rows(&mut rng, n, params.subsample);
        let features = sample_features(&mut rng, binned.n_features(), params.base.colsample);
        let depth = jittered_depth(&mut rng, &params.base);
        let builder = TreeBuilder::new(
            &binned,
            &g,
            &h,
            &params.base,
            features,
            depth,
            params.learning_rate,
        );
        let tree = builder.build(indices);
        for (i, s) in scores.iter_mut().enumerate() {
            *s += tree.predict(data.samples.row(i));
        }
        trees.push(tree);
    }
    Forest::new(
        trees,
        data.samples.n_attributes() as u32,
        ForestKind::Gbdt,
        task,
        base,
    )
}

/// Fills `g`/`h` with the loss derivatives at the current scores.
fn compute_gradients(task: Task, scores: &[f32], labels: &[f32], g: &mut [f32], h: &mut [f32]) {
    match task {
        Task::Regression => {
            for i in 0..scores.len() {
                g[i] = scores[i] - labels[i];
                h[i] = 1.0;
            }
        }
        Task::BinaryClassification => {
            for i in 0..scores.len() {
                let p = sigmoid(scores[i]);
                g[i] = p - labels[i];
                h[i] = (p * (1.0 - p)).max(1e-6);
            }
        }
    }
}

/// Samples `rate * n` distinct row indices.
fn subsample_rows(rng: &mut StdRng, n: usize, rate: f64) -> Vec<u32> {
    if rate >= 1.0 {
        return (0..n as u32).collect();
    }
    let mut rows: Vec<u32> = (0..n as u32)
        .filter(|_| rng.gen_bool(rate))
        .collect();
    if rows.is_empty() {
        rows.push(rng.gen_range(0..n) as u32);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict_dataset;
    use tahoe_datasets::{DatasetSpec, Scale};

    fn small_params(n_trees: usize, max_depth: usize) -> GbdtParams {
        GbdtParams {
            base: TrainParams {
                n_trees,
                max_depth,
                depth_jitter: false,
                ..TrainParams::default()
            },
            ..GbdtParams::default()
        }
    }

    #[test]
    fn gbdt_reduces_classification_error() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train_d, infer_d) = data.split_train_infer();
        let forest = train(&small_params(30, 4), &train_d, Task::BinaryClassification);
        let preds = predict_dataset(&forest, &infer_d.samples);
        let acc = preds
            .iter()
            .zip(&infer_d.labels)
            .filter(|(p, &y)| (sigmoid(**p) > 0.5) == (y == 1.0))
            .count() as f64
            / preds.len() as f64;
        // The majority class is 65 %, so beating 0.72 shows real learning.
        assert!(acc > 0.72, "accuracy {acc} too low");
    }

    #[test]
    fn gbdt_reduces_regression_loss() {
        let spec = DatasetSpec::by_name("year").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train_d, infer_d) = data.split_train_infer();
        let forest = train(&small_params(30, 4), &train_d, Task::Regression);
        let preds = predict_dataset(&forest, &infer_d.samples);
        let mse: f64 = preds
            .iter()
            .zip(&infer_d.labels)
            .map(|(p, y)| f64::from((p - y) * (p - y)))
            .sum::<f64>()
            / preds.len() as f64;
        let mean: f32 = infer_d.labels.iter().sum::<f32>() / infer_d.labels.len() as f32;
        let var: f64 = infer_d
            .labels
            .iter()
            .map(|y| f64::from((y - mean) * (y - mean)))
            .sum::<f64>()
            / infer_d.labels.len() as f64;
        assert!(mse < 0.7 * var, "mse {mse} vs variance {var}: no learning");
    }

    #[test]
    fn training_is_deterministic() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train_d, _) = data.split_train_infer();
        let a = train(&small_params(5, 3), &train_d, Task::BinaryClassification);
        let b = train(&small_params(5, 3), &train_d, Task::BinaryClassification);
        assert_eq!(a, b);
    }

    #[test]
    fn tree_count_matches_params() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train(&small_params(7, 3), &data, Task::BinaryClassification);
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn subsample_rows_covers_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = subsample_rows(&mut rng, 10_000, 0.8);
        let frac = rows.len() as f64 / 10_000.0;
        assert!((frac - 0.8).abs() < 0.05);
        let full = subsample_rows(&mut rng, 10, 1.0);
        assert_eq!(full.len(), 10);
    }
}
