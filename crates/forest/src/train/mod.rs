//! Ensemble training (replaces XGBoost in the paper's pipeline).
//!
//! The trainer is a histogram-based CART builder shared by two ensemble
//! drivers: second-order gradient boosting ([`gbdt`]) and random forests
//! ([`random_forest`]). Both reduce to building regression trees on
//! per-sample gradient/hessian pairs, exactly as XGBoost does; random forests
//! use `g = -y, h = 1`, for which the optimal leaf value is the mean target.

pub mod builder;
pub mod gbdt;
pub mod histogram;
pub mod prune;
pub mod random_forest;

use serde::{Deserialize, Serialize};

use tahoe_datasets::{Dataset, DatasetSpec, ForestKind, Scale, Task};

use crate::forest::Forest;

pub use gbdt::GbdtParams;
pub use random_forest::RandomForestParams;

/// Hyperparameters shared by both ensemble trainers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Number of trees to train.
    pub n_trees: usize,
    /// Maximum tree depth (edges root→leaf).
    pub max_depth: usize,
    /// Minimum training samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (XGBoost's lambda).
    pub lambda: f32,
    /// Fraction of features considered per tree (per-tree column subsampling).
    pub colsample: f64,
    /// Number of histogram bins per feature (max 254).
    pub n_bins: usize,
    /// Whether to vary `max_depth` per tree within `[60 %, 100 %]` of the
    /// nominal value. The paper attributes tree-depth variance to random
    /// attribute selection and post-pruning (§1); the jitter reproduces the
    /// resulting load imbalance that §4.2's tree rearrangement targets.
    pub depth_jitter: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 6,
            min_samples_leaf: 4,
            lambda: 1.0,
            colsample: 1.0,
            n_bins: 32,
            depth_jitter: true,
            seed: 0x7_A40E,
        }
    }
}

impl TrainParams {
    /// Sensible defaults for a Table 2 dataset at a given scale.
    #[must_use]
    pub fn for_spec(spec: &DatasetSpec, scale: Scale) -> Self {
        let d = spec.n_attributes as f64;
        // High-dimensional datasets subsample columns aggressively (like
        // XGBoost's colsample_bytree); this keeps histogram costs bounded and
        // mirrors common practice for pixel-style data.
        let colsample = if spec.n_attributes > 256 {
            (d.sqrt().max(32.0) / d).min(1.0)
        } else if spec.forest == ForestKind::RandomForest {
            0.6
        } else {
            1.0
        };
        Self {
            n_trees: spec.scaled_trees(scale),
            max_depth: spec.max_depth,
            colsample,
            seed: tahoe_datasets::mix_seed(spec.seed(), 0x7141),
            ..Self::default()
        }
    }
}

/// Trains the forest described by `spec` on `train` at the given `scale`.
///
/// Dispatches to GBDT or random forest per Table 2's "forest type" column.
#[must_use]
pub fn train_for_spec(spec: &DatasetSpec, train: &Dataset, scale: Scale) -> Forest {
    let params = TrainParams::for_spec(spec, scale);
    match spec.forest {
        ForestKind::Gbdt => {
            let gp = GbdtParams {
                base: params,
                learning_rate: 0.1,
                subsample: 0.8,
            };
            gbdt::train(&gp, train, spec.task)
        }
        ForestKind::RandomForest => {
            let rp = RandomForestParams { base: params };
            random_forest::train(&rp, train, spec.task)
        }
    }
}

/// Numerically stable sigmoid.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Base score (prior) for a task given the label vector.
#[must_use]
pub fn base_score(task: Task, labels: &[f32]) -> f32 {
    let mean = labels.iter().sum::<f32>() / labels.len().max(1) as f32;
    match task {
        Task::Regression => mean,
        Task::BinaryClassification => {
            let p = mean.clamp(1e-4, 1.0 - 1e-4);
            (p / (1.0 - p)).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_symmetric_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn base_score_regression_is_mean() {
        assert!((base_score(Task::Regression, &[1.0, 3.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn base_score_classification_is_logit() {
        let b = base_score(Task::BinaryClassification, &[1.0, 1.0, 0.0, 0.0]);
        assert!(b.abs() < 1e-6, "logit of 0.5 should be 0, got {b}");
        let b = base_score(Task::BinaryClassification, &[1.0, 1.0, 1.0, 0.0]);
        assert!(b > 0.0);
    }

    #[test]
    fn for_spec_caps_colsample_for_high_dim() {
        let spec = DatasetSpec::by_name("gisette").unwrap();
        let p = TrainParams::for_spec(&spec, Scale::Ci);
        assert!(p.colsample < 0.05, "colsample {} too large for 5000 attrs", p.colsample);
        assert!(p.colsample * 5000.0 >= 32.0);
    }

    #[test]
    fn for_spec_uses_table2_hyperparameters() {
        let spec = DatasetSpec::by_name("covtype").unwrap();
        let p = TrainParams::for_spec(&spec, Scale::Smoke);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.n_trees, 40);
    }
}
