//! Random-forest training (bagging + per-tree feature subsampling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tahoe_datasets::{mix_seed, Dataset, ForestKind, Task};

use crate::forest::Forest;
use crate::train::builder::{jittered_depth, sample_features, TreeBuilder};
use crate::train::histogram::BinnedMatrix;
use crate::train::TrainParams;
use crate::tree::Tree;

/// Random-forest hyperparameters.
///
/// Trees are trained on bootstrap resamples with the `g = -y, h = 1`
/// reduction, for which the Newton leaf value is the node's mean target —
/// the classic regression-tree / class-probability leaf.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Shared training hyperparameters.
    pub base: TrainParams,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            base: TrainParams {
                colsample: 0.6,
                lambda: 0.0,
                ..TrainParams::default()
            },
        }
    }
}

/// Trains a random forest; predictions are the average of tree outputs.
///
/// Unlike boosting, the trees are independent, so they train in parallel
/// (scoped threads). Each tree derives its own RNG from `(seed, tree index)`,
/// making the result deterministic regardless of thread scheduling.
///
/// # Panics
///
/// Panics if the dataset is empty.
#[must_use]
pub fn train(params: &RandomForestParams, data: &Dataset, task: Task) -> Forest {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();
    let binned = BinnedMatrix::build(&data.samples, params.base.n_bins);
    // The RF reduction: leaf = mean(y) = -sum(g)/sum(h) with g = -y, h = 1.
    let g: Vec<f32> = data.labels.iter().map(|y| -y).collect();
    let h = vec![1.0f32; n];
    let trees: Vec<Tree> = parallel_trees(params.base.n_trees, |t| {
        let mut rng = StdRng::seed_from_u64(mix_seed(params.base.seed, t as u64));
        let indices = bootstrap_rows(&mut rng, n);
        let features = sample_features(&mut rng, binned.n_features(), params.base.colsample);
        let depth = jittered_depth(&mut rng, &params.base);
        let builder = TreeBuilder::new(&binned, &g, &h, &params.base, features, depth, 1.0);
        builder.build(indices)
    });
    Forest::new(
        trees,
        data.samples.n_attributes() as u32,
        ForestKind::RandomForest,
        task,
        0.0,
    )
}

/// Order-preserving parallel map over tree indices (scoped threads with a
/// shared work counter; sequential for tiny forests).
fn parallel_trees<F>(n_trees: usize, build: F) -> Vec<Tree>
where
    F: Fn(usize) -> Tree + Sync,
{
    const SEQUENTIAL_CUTOFF: usize = 4;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n_trees);
    if n_trees <= SEQUENTIAL_CUTOFF || workers <= 1 {
        return (0..n_trees).map(build).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Tree>>> = (0..n_trees).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= n_trees {
                    break;
                }
                let tree = build(t);
                *slots[t].lock().expect("tree slot lock") = Some(tree);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("tree slot lock")
                .expect("every tree index is produced exactly once")
        })
        .collect()
}

/// Samples `n` row indices with replacement.
fn bootstrap_rows(rng: &mut StdRng, n: usize) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict_dataset;
    use tahoe_datasets::{DatasetSpec, Scale};

    fn params(n_trees: usize, max_depth: usize) -> RandomForestParams {
        RandomForestParams {
            base: TrainParams {
                n_trees,
                max_depth,
                lambda: 0.0,
                ..TrainParams::default()
            },
        }
    }

    #[test]
    fn rf_beats_majority_class() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train_d, infer_d) = data.split_train_infer();
        let forest = train(&params(25, 4), &train_d, Task::BinaryClassification);
        let preds = predict_dataset(&forest, &infer_d.samples);
        let majority = {
            let pos = infer_d.labels.iter().filter(|&&y| y == 1.0).count() as f64
                / infer_d.labels.len() as f64;
            pos.max(1.0 - pos)
        };
        let acc = preds
            .iter()
            .zip(&infer_d.labels)
            .filter(|(p, &y)| (**p > 0.5) == (y == 1.0))
            .count() as f64
            / preds.len() as f64;
        assert!(acc > majority, "accuracy {acc} not above majority {majority}");
    }

    #[test]
    fn rf_predictions_are_probabilities_for_binary_labels() {
        let spec = DatasetSpec::by_name("phishing").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train(&params(10, 4), &data, Task::BinaryClassification);
        let preds = predict_dataset(&forest, &data.samples);
        assert!(preds.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_is_deterministic_despite_parallelism() {
        let spec = DatasetSpec::by_name("ijcnn1").unwrap();
        let data = spec.generate(Scale::Smoke);
        let a = train(&params(16, 4), &data, Task::BinaryClassification);
        let b = train(&params(16, 4), &data, Task::BinaryClassification);
        assert_eq!(a, b);
    }

    #[test]
    fn depth_jitter_produces_varied_depths() {
        let spec = DatasetSpec::by_name("aloi").unwrap();
        let data = spec.generate(Scale::Smoke);
        let p = RandomForestParams {
            base: TrainParams {
                n_trees: 20,
                max_depth: 8,
                depth_jitter: true,
                ..TrainParams::default()
            },
        };
        let forest = train(&p, &data, Task::BinaryClassification);
        let depths: std::collections::BTreeSet<usize> =
            forest.trees().iter().map(crate::tree::Tree::depth).collect();
        assert!(depths.len() >= 3, "expected varied depths, got {depths:?}");
    }

    #[test]
    fn bootstrap_rows_have_duplicates() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows = bootstrap_rows(&mut rng, 1_000);
        assert_eq!(rows.len(), 1_000);
        let distinct: std::collections::BTreeSet<u32> = rows.iter().copied().collect();
        // With replacement, ~63 % distinct is expected.
        assert!(distinct.len() < 800);
    }
}
