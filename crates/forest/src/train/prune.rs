//! Post-training subtree collapsing ("pruning").
//!
//! The paper attributes the tree-structure variance Tahoe exploits partly to
//! post-pruning [19, 42]. This module implements probability-weighted
//! low-variance collapsing: a subtree whose leaves are (almost) equal —
//! weighted by how often each leaf is reached — contributes (almost) nothing
//! beyond its mean, so it is replaced by a single leaf carrying that mean.
//! Besides modelling pruning's structural effect, this is a practical
//! inference-time compression: smaller trees mean fewer levels, fewer bytes
//! and better coalescing.

use crate::node::{Node, NodeId};
use crate::tree::Tree;
use crate::Forest;

/// Probability-weighted leaf statistics of each subtree.
struct SubtreeStats {
    /// Weighted mean leaf value under each node.
    mean: Vec<f64>,
    /// Weighted variance of leaf values under each node.
    var: Vec<f64>,
}

fn subtree_stats(tree: &Tree) -> SubtreeStats {
    let n = tree.n_nodes();
    let mut mean = vec![0.0f64; n];
    let mut var = vec![0.0f64; n];
    // Children have larger ids than parents, so a reverse pass is bottom-up.
    for id in (0..n).rev() {
        match tree.node(id as NodeId) {
            Node::Leaf { value } => {
                mean[id] = f64::from(*value);
                var[id] = 0.0;
            }
            Node::Decision {
                left,
                right,
                left_prob,
                ..
            } => {
                let p = f64::from(*left_prob).clamp(0.0, 1.0);
                let (l, r) = (*left as usize, *right as usize);
                let m = p * mean[l] + (1.0 - p) * mean[r];
                // Law of total variance.
                let v = p * (var[l] + (mean[l] - m) * (mean[l] - m))
                    + (1.0 - p) * (var[r] + (mean[r] - m) * (mean[r] - m));
                mean[id] = m;
                var[id] = v;
            }
        }
    }
    SubtreeStats { mean, var }
}

/// Collapses every subtree whose weighted leaf-value standard deviation is at
/// most `epsilon` into a single leaf carrying the weighted mean.
///
/// `epsilon = 0` collapses only exactly-constant subtrees; larger values
/// trade accuracy (the expected per-tree output shift is bounded by the
/// collapsed subtrees' standard deviation) for smaller trees.
///
/// # Panics
///
/// Panics if `epsilon` is negative or not finite.
#[must_use]
pub fn prune_tree(tree: &Tree, epsilon: f32) -> Tree {
    assert!(epsilon >= 0.0 && epsilon.is_finite(), "epsilon must be finite and >= 0");
    let stats = subtree_stats(tree);
    let threshold = f64::from(epsilon) * f64::from(epsilon);
    // Rebuild top-down, stopping at collapsed nodes. `map` is old id → new.
    let mut nodes: Vec<Node> = Vec::with_capacity(tree.n_nodes());
    build(tree, &stats, threshold, 0, &mut nodes);
    Tree::new(nodes)
}

fn build(
    tree: &Tree,
    stats: &SubtreeStats,
    threshold: f64,
    id: NodeId,
    out: &mut Vec<Node>,
) -> NodeId {
    let new_id = out.len() as NodeId;
    let node = tree.node(id);
    let collapse = match node {
        Node::Leaf { .. } => true,
        Node::Decision { .. } => stats.var[id as usize] <= threshold,
    };
    if collapse {
        out.push(Node::Leaf {
            value: stats.mean[id as usize] as f32,
        });
        return new_id;
    }
    let Node::Decision {
        attribute,
        threshold: split,
        default_left,
        left,
        right,
        left_prob,
    } = *node
    else {
        unreachable!("leaves always collapse");
    };
    out.push(Node::Leaf { value: 0.0 }); // Reserved; patched below.
    let new_left = build(tree, stats, threshold, left, out);
    let new_right = build(tree, stats, threshold, right, out);
    out[new_id as usize] = Node::Decision {
        attribute,
        threshold: split,
        default_left,
        left: new_left,
        right: new_right,
        left_prob,
    };
    new_id
}

/// Prunes every tree of a forest with the same tolerance.
#[must_use]
pub fn prune_forest(forest: &Forest, epsilon: f32) -> Forest {
    let trees = forest.trees().iter().map(|t| prune_tree(t, epsilon)).collect();
    Forest::new(
        trees,
        forest.n_attributes(),
        forest.kind(),
        forest.task(),
        forest.base_score(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, ForestKind, Scale, Task};

    fn constant_subtree_tree() -> Tree {
        // Left subtree: both leaves 2.0 (collapsible); right leaf 5.0.
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 4,
                left_prob: 0.5,
            },
            Node::Decision {
                attribute: 1,
                threshold: 1.0,
                default_left: false,
                left: 2,
                right: 3,
                left_prob: 0.7,
            },
            Node::Leaf { value: 2.0 },
            Node::Leaf { value: 2.0 },
            Node::Leaf { value: 5.0 },
        ])
    }

    #[test]
    fn constant_subtrees_collapse_at_zero_epsilon() {
        let t = prune_tree(&constant_subtree_tree(), 0.0);
        assert_eq!(t.n_nodes(), 3, "left subtree must collapse");
        assert_eq!(t.predict(&[-1.0, 0.0]), 2.0);
        assert_eq!(t.predict(&[1.0, 0.0]), 5.0);
    }

    #[test]
    fn zero_epsilon_preserves_predictions_exactly() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = crate::train::train_for_spec(&spec, &data, Scale::Smoke);
        let pruned = prune_forest(&forest, 0.0);
        for i in 0..200 {
            let row = data.samples.row(i);
            let a = crate::predict::predict_sample(&forest, row);
            let b = crate::predict::predict_sample(&pruned, row);
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert!(pruned.stats().total_nodes <= forest.stats().total_nodes);
    }

    #[test]
    fn huge_epsilon_collapses_to_single_leaves() {
        let t = prune_tree(&constant_subtree_tree(), 1e6);
        assert_eq!(t.n_nodes(), 1);
        // The single leaf is the probability-weighted mean:
        // 0.5 * 2.0 + 0.5 * 5.0.
        assert!((t.predict(&[0.0, 0.0]) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn epsilon_monotonically_shrinks_trees() {
        let spec = DatasetSpec::by_name("year").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = crate::train::train_for_spec(&spec, &data, Scale::Smoke);
        let mut last_nodes = usize::MAX;
        for eps in [0.0f32, 0.05, 0.2, 1.0, 10.0] {
            let nodes = prune_forest(&forest, eps).stats().total_nodes;
            assert!(nodes <= last_nodes, "eps {eps}: {nodes} > {last_nodes}");
            last_nodes = nodes;
        }
    }

    #[test]
    fn small_epsilon_keeps_predictions_close() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = crate::train::train_for_spec(&spec, &data, Scale::Smoke);
        let eps = 0.01f32;
        let pruned = prune_forest(&forest, eps);
        let n_trees = forest.n_trees() as f32;
        let mut worst = 0.0f32;
        for i in 0..300 {
            let row = data.samples.row(i);
            let a = crate::predict::predict_sample(&forest, row);
            let b = crate::predict::predict_sample(&pruned, row);
            worst = worst.max((a - b).abs());
        }
        // Loose bound: per-tree expected shift is ~eps; allow generous slack
        // for the worst case over samples.
        assert!(
            worst < eps * n_trees,
            "worst shift {worst} vs bound {}",
            eps * n_trees
        );
    }

    #[test]
    fn pruned_forest_keeps_metadata() {
        let t = constant_subtree_tree();
        let f = Forest::new(vec![t], 2, ForestKind::Gbdt, Task::Regression, 0.25);
        let p = prune_forest(&f, 0.0);
        assert_eq!(p.kind(), ForestKind::Gbdt);
        assert_eq!(p.base_score(), 0.25);
        assert_eq!(p.n_attributes(), 2);
    }
}
