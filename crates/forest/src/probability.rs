//! Edge-probability measurement (paper §2 and Algorithm 1 line 16).
//!
//! The tree builders already record training-time `left_prob` on every
//! decision node. This module *re-measures* edge probabilities by routing an
//! arbitrary dataset through the forest — used for the incremental-learning
//! path (recount after a forest update) and for the oracle-probability
//! ablation (count on the inference split instead of the training split).

use tahoe_datasets::SampleMatrix;

use crate::forest::Forest;
use crate::node::Node;
use crate::tree::Tree;

/// Incremental edge-visit counter for a fixed forest structure.
///
/// Algorithm 1 line 16 counts edge probabilities *during inference*; an
/// [`EdgeCounter`] accumulates observations across any number of batches and
/// can then re-annotate the forest. Counts are keyed by node id per tree, so
/// the forest's structure must not change between `observe` calls (a changed
/// forest needs a fresh counter).
#[derive(Clone, Debug)]
pub struct EdgeCounter {
    visits: Vec<Vec<u32>>,
    lefts: Vec<Vec<u32>>,
}

impl EdgeCounter {
    /// A zeroed counter shaped for `forest`.
    #[must_use]
    pub fn new(forest: &Forest) -> Self {
        Self {
            visits: forest.trees().iter().map(|t| vec![0; t.n_nodes()]).collect(),
            lefts: forest.trees().iter().map(|t| vec![0; t.n_nodes()]).collect(),
        }
    }

    /// Routes every sample through every tree, accumulating edge counts.
    ///
    /// # Panics
    ///
    /// Panics if the forest's shape does not match the counter.
    pub fn observe(&mut self, forest: &Forest, samples: &SampleMatrix) {
        assert_eq!(forest.n_trees(), self.visits.len(), "forest shape changed");
        for (t, tree) in forest.trees().iter().enumerate() {
            let visits = &mut self.visits[t];
            let lefts = &mut self.lefts[t];
            assert_eq!(tree.n_nodes(), visits.len(), "tree {t} shape changed");
            for i in 0..samples.n_samples() {
                let row = samples.row(i);
                let mut id = 0u32;
                loop {
                    let node = tree.node(id);
                    match node.route(row) {
                        None => break,
                        Some(next) => {
                            visits[id as usize] += 1;
                            if let Some((l, _)) = node.children() {
                                if next == l {
                                    lefts[id as usize] += 1;
                                }
                            }
                            id = next;
                        }
                    }
                }
            }
        }
    }

    /// Total observations at the root of tree 0 (≈ samples observed).
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.visits
            .first()
            .and_then(|v| v.first())
            .map_or(0, |&v| u64::from(v))
    }

    /// Builds a forest with `left_prob` re-estimated from the counts.
    ///
    /// Unvisited decision nodes keep a neutral `0.5`; counts are
    /// Laplace-smoothed so a node visited once does not get a degenerate
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if the forest's shape does not match the counter.
    #[must_use]
    pub fn annotate(&self, forest: &Forest) -> Forest {
        assert_eq!(forest.n_trees(), self.visits.len(), "forest shape changed");
        let trees: Vec<Tree> = forest
            .trees()
            .iter()
            .enumerate()
            .map(|(t, tree)| {
                let visits = &self.visits[t];
                let lefts = &self.lefts[t];
                let nodes: Vec<Node> = tree
                    .nodes()
                    .iter()
                    .enumerate()
                    .map(|(i, n)| match *n {
                        Node::Leaf { value } => Node::Leaf { value },
                        Node::Decision {
                            attribute,
                            threshold,
                            default_left,
                            left,
                            right,
                            ..
                        } => {
                            let left_prob = if visits[i] == 0 {
                                0.5
                            } else {
                                (lefts[i] as f32 + 1.0) / (visits[i] as f32 + 2.0)
                            };
                            Node::Decision {
                                attribute,
                                threshold,
                                default_left,
                                left,
                                right,
                                left_prob,
                            }
                        }
                    })
                    .collect();
                Tree::new(nodes)
            })
            .collect();
        Forest::new(
            trees,
            forest.n_attributes(),
            forest.kind(),
            forest.task(),
            forest.base_score(),
        )
    }
}

/// Returns a forest whose `left_prob` values are re-estimated by routing
/// `samples` through every tree (one-shot convenience over [`EdgeCounter`]).
#[must_use]
pub fn annotate_edge_probabilities(forest: &Forest, samples: &SampleMatrix) -> Forest {
    let mut counter = EdgeCounter::new(forest);
    counter.observe(forest, samples);
    counter.annotate(forest)
}

/// Coefficient of variation of tree depths — a cheap structural-imbalance
/// indicator used in reports.
#[must_use]
pub fn depth_cv(forest: &Forest) -> f64 {
    let depths: Vec<f64> = forest.trees().iter().map(|t| t.depth() as f64).collect();
    let mean = depths.iter().sum::<f64>() / depths.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = depths.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / depths.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{ForestKind, Task};

    fn skewed_forest() -> Forest {
        // Root sends x<0 left; tree below only leaves.
        let tree = Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.5,
            },
            Node::Leaf { value: 1.0 },
            Node::Leaf { value: 2.0 },
        ]);
        Forest::new(vec![tree], 1, ForestKind::Gbdt, Task::Regression, 0.0)
    }

    #[test]
    fn annotation_counts_left_fraction() {
        let f = skewed_forest();
        // 3 of 4 samples go left.
        let m = SampleMatrix::from_vec(4, 1, vec![-1.0, -2.0, -3.0, 5.0]);
        let annotated = annotate_edge_probabilities(&f, &m);
        match annotated.trees()[0].node(0) {
            Node::Decision { left_prob, .. } => {
                // Laplace smoothed: (3+1)/(4+2).
                assert!((left_prob - 4.0 / 6.0).abs() < 1e-6);
            }
            Node::Leaf { .. } => panic!("root is a decision node"),
        }
    }

    #[test]
    fn unvisited_nodes_get_half() {
        let f = skewed_forest();
        let m = SampleMatrix::from_vec(0, 1, vec![]);
        let annotated = annotate_edge_probabilities(&f, &m);
        match annotated.trees()[0].node(0) {
            Node::Decision { left_prob, .. } => assert!((left_prob - 0.5).abs() < 1e-6),
            Node::Leaf { .. } => panic!("root is a decision node"),
        }
    }

    #[test]
    fn annotation_preserves_predictions() {
        let f = skewed_forest();
        let m = SampleMatrix::from_vec(4, 1, vec![-1.0, -2.0, -3.0, 5.0]);
        let annotated = annotate_edge_probabilities(&f, &m);
        for i in 0..m.n_samples() {
            assert_eq!(
                crate::predict::predict_sample(&f, m.row(i)),
                crate::predict::predict_sample(&annotated, m.row(i)),
            );
        }
    }

    #[test]
    fn edge_counter_accumulates_across_batches() {
        let f = skewed_forest();
        let batch1 = SampleMatrix::from_vec(2, 1, vec![-1.0, -2.0]);
        let batch2 = SampleMatrix::from_vec(2, 1, vec![-3.0, 5.0]);
        let mut counter = EdgeCounter::new(&f);
        counter.observe(&f, &batch1);
        counter.observe(&f, &batch2);
        assert_eq!(counter.observations(), 4);
        let annotated = counter.annotate(&f);
        match annotated.trees()[0].node(0) {
            Node::Decision { left_prob, .. } => {
                assert!((left_prob - 4.0 / 6.0).abs() < 1e-6);
            }
            Node::Leaf { .. } => panic!("root is a decision node"),
        }
    }

    #[test]
    #[should_panic(expected = "forest shape changed")]
    fn edge_counter_rejects_mismatched_forest() {
        let f = skewed_forest();
        let counter = EdgeCounter::new(&f);
        let bigger = Forest::new(
            vec![f.trees()[0].clone(), f.trees()[0].clone()],
            1,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
        let _ = counter.annotate(&bigger);
    }

    #[test]
    fn depth_cv_zero_for_identical_trees() {
        let f = skewed_forest();
        assert!(depth_cv(&f).abs() < 1e-12);
    }
}
