//! Decision-tree ensembles ("forests").

use serde::{Deserialize, Serialize};

use tahoe_datasets::{ForestKind, Task};

use crate::tree::Tree;

/// A trained ensemble of binary decision trees.
///
/// GBDT forests aggregate by *summing* raw tree scores on top of `base_score`
/// (the sum is the logit for classification); random forests aggregate by
/// *averaging*. Both reduce to a weighted sum, which is what the simulated
/// reduction kernels compute.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<Tree>,
    n_attributes: u32,
    kind: ForestKind,
    task: Task,
    base_score: f32,
}

impl Forest {
    /// Assembles a forest.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or any tree references an attribute
    /// `>= n_attributes`.
    #[must_use]
    pub fn new(
        trees: Vec<Tree>,
        n_attributes: u32,
        kind: ForestKind,
        task: Task,
        base_score: f32,
    ) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        for (i, t) in trees.iter().enumerate() {
            for n in t.nodes() {
                if let Some(a) = n.attribute() {
                    assert!(a < n_attributes, "tree {i} references attribute {a} out of range");
                }
            }
        }
        Self {
            trees,
            n_attributes,
            kind,
            task,
            base_score,
        }
    }

    /// The trees in ensemble order.
    #[must_use]
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input attributes the forest was trained on.
    #[must_use]
    pub fn n_attributes(&self) -> u32 {
        self.n_attributes
    }

    /// Ensemble kind (GBDT or random forest).
    #[must_use]
    pub fn kind(&self) -> ForestKind {
        self.kind
    }

    /// Prediction task.
    #[must_use]
    pub fn task(&self) -> Task {
        self.task
    }

    /// Additive base score (GBDT prior; 0 for random forests).
    #[must_use]
    pub fn base_score(&self) -> f32 {
        self.base_score
    }

    /// Returns a new forest containing the same trees in `order`.
    ///
    /// This is the operation similarity-based tree rearrangement performs
    /// (paper §4.2). Aggregation is order-independent, so predictions are
    /// unchanged — property-tested in the `tahoe` crate.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n_trees`.
    #[must_use]
    pub fn reordered(&self, order: &[usize]) -> Forest {
        assert_eq!(order.len(), self.n_trees(), "order must cover every tree");
        let mut seen = vec![false; self.n_trees()];
        for &i in order {
            assert!(!seen[i], "order must be a permutation (duplicate {i})");
            seen[i] = true;
        }
        let trees = order.iter().map(|&i| self.trees[i].clone()).collect();
        Forest {
            trees,
            n_attributes: self.n_attributes,
            kind: self.kind,
            task: self.task,
            base_score: self.base_score,
        }
    }

    /// Returns a forest truncated to the first `n` trees (used by the
    /// tree-count sweeps of Fig. 2b).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the tree count.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Forest {
        assert!(n >= 1 && n <= self.n_trees(), "invalid truncation length {n}");
        Forest {
            trees: self.trees[..n].to_vec(),
            n_attributes: self.n_attributes,
            kind: self.kind,
            task: self.task,
            base_score: self.base_score,
        }
    }

    /// Combines per-tree raw outputs into the ensemble prediction.
    #[must_use]
    pub fn aggregate(&self, tree_output_sum: f32) -> f32 {
        match self.kind {
            ForestKind::Gbdt => self.base_score + tree_output_sum,
            ForestKind::RandomForest => tree_output_sum / self.n_trees() as f32,
        }
    }

    /// Structural summary statistics.
    #[must_use]
    pub fn stats(&self) -> ForestStats {
        let depths: Vec<usize> = self.trees.iter().map(Tree::depth).collect();
        let total_nodes: usize = self.trees.iter().map(Tree::n_nodes).sum();
        let max_depth = depths.iter().copied().max().unwrap_or(0);
        let avg_depth = depths.iter().sum::<usize>() as f64 / depths.len() as f64;
        ForestStats {
            n_trees: self.n_trees(),
            n_attributes: self.n_attributes as usize,
            total_nodes,
            max_depth,
            avg_depth,
        }
    }
}

/// Structural summary of a forest (feeds the performance models' `D_tree`,
/// `N_trees`, `N_nodes` inputs, Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestStats {
    /// Number of trees.
    pub n_trees: usize,
    /// Number of input attributes.
    pub n_attributes: usize,
    /// Total node count over all trees.
    pub total_nodes: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Mean tree depth (the performance models' `D_tree`).
    pub avg_depth: f64,
}

impl ForestStats {
    /// Mean number of nodes per tree (the models' `N_nodes`).
    #[must_use]
    pub fn avg_nodes_per_tree(&self) -> f64 {
        self.total_nodes as f64 / self.n_trees as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn tiny_tree(leaf: f32) -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.5,
            },
            Node::Leaf { value: leaf },
            Node::Leaf { value: -leaf },
        ])
    }

    fn forest() -> Forest {
        Forest::new(
            vec![tiny_tree(1.0), tiny_tree(2.0), tiny_tree(3.0)],
            1,
            ForestKind::Gbdt,
            Task::BinaryClassification,
            0.5,
        )
    }

    #[test]
    fn aggregate_gbdt_adds_base_score() {
        let f = forest();
        assert!((f.aggregate(6.0) - 6.5).abs() < 1e-6);
    }

    #[test]
    fn aggregate_rf_averages() {
        let f = Forest::new(
            vec![tiny_tree(1.0), tiny_tree(2.0)],
            1,
            ForestKind::RandomForest,
            Task::Regression,
            0.0,
        );
        assert!((f.aggregate(6.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn reordered_permutes_trees() {
        let f = forest();
        let r = f.reordered(&[2, 0, 1]);
        assert_eq!(r.trees()[0], f.trees()[2]);
        assert_eq!(r.trees()[1], f.trees()[0]);
        assert_eq!(r.n_trees(), 3);
    }

    #[test]
    #[should_panic(expected = "must be a permutation")]
    fn reordered_rejects_duplicates() {
        let _ = forest().reordered(&[0, 0, 1]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let f = forest().truncated(2);
        assert_eq!(f.n_trees(), 2);
    }

    #[test]
    fn stats_summarize_structure() {
        let s = forest().stats();
        assert_eq!(s.n_trees, 3);
        assert_eq!(s.total_nodes, 9);
        assert_eq!(s.max_depth, 1);
        assert!((s.avg_depth - 1.0).abs() < 1e-9);
        assert!((s.avg_nodes_per_tree() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attribute_range_checked() {
        let _ = Forest::new(
            vec![tiny_tree(1.0)],
            0,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
    }
}
