//! Decision-tree ensemble substrate for the Tahoe reproduction.
//!
//! Replaces XGBoost in the paper's pipeline: trains binary decision trees with
//! histogram-based split finding, assembles them into GBDT or random-forest
//! ensembles, counts the *edge probabilities* Tahoe's node rearrangement
//! consumes (paper §2/§4.1), and provides reference CPU inference used as
//! ground truth by every engine test.
//!
//! # Examples
//!
//! ```
//! use tahoe_datasets::{DatasetSpec, Scale};
//! use tahoe_forest::{train_for_spec, predict_dataset};
//!
//! let spec = DatasetSpec::by_name("letter").unwrap();
//! let data = spec.generate(Scale::Smoke);
//! let (train, infer) = data.split_train_infer();
//! let forest = train_for_spec(&spec, &train, Scale::Smoke);
//! let preds = predict_dataset(&forest, &infer.samples);
//! assert_eq!(preds.len(), infer.len());
//! ```

pub mod forest;
pub mod io;
pub mod node;
pub mod predict;
pub mod probability;
pub mod train;
pub mod tree;

pub use forest::{Forest, ForestStats};
pub use node::{Node, NodeId};
pub use predict::{predict_dataset, predict_sample};
pub use train::prune::{prune_forest, prune_tree};
pub use train::{train_for_spec, GbdtParams, RandomForestParams, TrainParams};
pub use tree::Tree;
