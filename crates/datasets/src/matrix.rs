//! Dense row-major sample storage.
//!
//! Samples are stored row-major because both the reference CPU inference and
//! the simulated GPU kernels address attributes as `base + sample * n_attributes
//! + attribute`, matching how FIL and Tahoe lay out batches in device memory.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` attribute values.
///
/// Missing values are represented as `NaN`, matching the paper's decision-node
/// semantics: a node takes its *default path* when the tested attribute "does
/// not have a value" (paper §2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SampleMatrix {
    n_samples: usize,
    n_attributes: usize,
    values: Vec<f32>,
}

impl SampleMatrix {
    /// Creates a matrix from raw row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_samples * n_attributes`.
    #[must_use]
    pub fn from_vec(n_samples: usize, n_attributes: usize, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            n_samples * n_attributes,
            "value buffer does not match matrix dimensions"
        );
        Self {
            n_samples,
            n_attributes,
            values,
        }
    }

    /// Creates an all-zero matrix.
    #[must_use]
    pub fn zeros(n_samples: usize, n_attributes: usize) -> Self {
        Self {
            n_samples,
            n_attributes,
            values: vec![0.0; n_samples * n_attributes],
        }
    }

    /// Number of samples (rows).
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of attributes per sample (columns).
    #[must_use]
    pub fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    /// Returns one sample as a slice of attribute values.
    ///
    /// # Panics
    ///
    /// Panics if `sample >= n_samples`.
    #[must_use]
    pub fn row(&self, sample: usize) -> &[f32] {
        let start = sample * self.n_attributes;
        &self.values[start..start + self.n_attributes]
    }

    /// Mutable access to one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample >= n_samples`.
    pub fn row_mut(&mut self, sample: usize) -> &mut [f32] {
        let start = sample * self.n_attributes;
        &mut self.values[start..start + self.n_attributes]
    }

    /// Reads a single attribute value; `NaN` means missing.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, sample: usize, attribute: usize) -> f32 {
        assert!(attribute < self.n_attributes, "attribute out of range");
        self.values[sample * self.n_attributes + attribute]
    }

    /// The full row-major backing buffer.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.values.chunks_exact(self.n_attributes.max(1)).take(self.n_samples)
    }

    /// Builds a new matrix containing only `indices`' rows (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Self {
        let mut values = Vec::with_capacity(indices.len() * self.n_attributes);
        for &i in indices {
            values.extend_from_slice(self.row(i));
        }
        Self::from_vec(indices.len(), self.n_attributes, values)
    }

    /// Fraction of entries that are missing (`NaN`).
    #[must_use]
    pub fn missing_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let missing = self.values.iter().filter(|v| v.is_nan()).count();
        missing as f64 / self.values.len() as f64
    }

    /// Size in bytes of one sample as stored on the simulated device.
    #[must_use]
    pub fn sample_bytes(&self) -> usize {
        self.n_attributes * core::mem::size_of::<f32>()
    }
}

/// A labelled dataset: samples plus one target value per sample.
///
/// For binary classification the labels are `0.0` / `1.0`; for regression they
/// are arbitrary reals. The train/inference split follows the paper: 70 % of
/// samples train the forest, 30 % are the inference workload (§3, §7.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"higgs"`).
    pub name: String,
    /// Attribute matrix, one row per sample.
    pub samples: SampleMatrix,
    /// One label per sample.
    pub labels: Vec<f32>,
}

impl Dataset {
    /// Creates a dataset, validating that labels match samples.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != samples.n_samples()`.
    #[must_use]
    pub fn new(name: impl Into<String>, samples: SampleMatrix, labels: Vec<f32>) -> Self {
        assert_eq!(
            labels.len(),
            samples.n_samples(),
            "label count must match sample count"
        );
        Self {
            name: name.into(),
            samples,
            labels,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.n_samples()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into (train, inference) datasets with the paper's 70/30 ratio.
    ///
    /// The split is deterministic and interleaved (every 10 samples, 7 go to
    /// train and 3 to inference) so both halves see the same distribution
    /// without needing a shuffle pass.
    #[must_use]
    pub fn split_train_infer(&self) -> (Dataset, Dataset) {
        let split = crate::split::TrainInferSplit::paper_default(self.len());
        (self.subset(&split.train), self.subset(&split.infer))
    }

    /// Builds a new dataset from a subset of rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let samples = self.samples.select(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset::new(self.name.clone(), samples, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SampleMatrix {
        SampleMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn row_access() {
        let m = small();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn select_reorders_rows() {
        let m = small();
        let s = m.select(&[2, 0]);
        assert_eq!(s.n_samples(), 2);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn missing_fraction_counts_nans() {
        let mut m = small();
        m.row_mut(0)[0] = f32::NAN;
        let frac = m.missing_fraction();
        assert!((frac - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn rows_iterator_matches_row() {
        let m = small();
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], m.row(1));
    }

    #[test]
    #[should_panic(expected = "does not match matrix dimensions")]
    fn bad_dimensions_panic() {
        let _ = SampleMatrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn dataset_split_is_70_30() {
        let m = SampleMatrix::zeros(100, 4);
        let d = Dataset::new("t", m, vec![0.0; 100]);
        let (train, infer) = d.split_train_infer();
        assert_eq!(train.len(), 70);
        assert_eq!(infer.len(), 30);
    }

    #[test]
    fn sample_bytes_is_attr_count_times_4() {
        assert_eq!(small().sample_bytes(), 8);
    }
}
