//! Synthetic dataset substrate for the Tahoe (EuroSys '21) reproduction.
//!
//! The paper evaluates on 15 public datasets (UCI / LIBSVM) whose *shapes* —
//! sample count, attribute count, task type, and the forest hyperparameters
//! trained on them (Table 2 of the paper) — drive every performance effect the
//! evaluation measures. This crate generates deterministic synthetic datasets
//! matched to those shapes, so the rest of the reproduction exercises the same
//! code paths as the paper without access to the original data.
//!
//! The entry point is [`DatasetSpec`]: [`DatasetSpec::table2`] returns the 15
//! specs of the paper's Table 2, and [`DatasetSpec::generate`] materializes a
//! [`Dataset`] (a [`SampleMatrix`] plus labels) at a chosen [`Scale`].
//!
//! # Examples
//!
//! ```
//! use tahoe_datasets::{DatasetSpec, Scale};
//!
//! let spec = DatasetSpec::by_name("higgs").unwrap();
//! let data = spec.generate(Scale::Smoke);
//! let (train, infer) = data.split_train_infer();
//! assert!(train.len() > infer.len());
//! ```

pub mod gen;
pub mod io;
pub mod matrix;
pub mod spec;
pub mod split;

pub use io::{load_csv, CsvOptions, LabelColumn};
pub use matrix::{Dataset, SampleMatrix};
pub use spec::{DatasetSpec, ForestKind, GeneratorKind, Scale, Task};
pub use split::TrainInferSplit;

/// Deterministic 64-bit seed mix used everywhere a sub-seed is derived.
///
/// This is the SplitMix64 finalizer; it guarantees that distinct
/// `(base, stream)` pairs produce uncorrelated seeds, which keeps every
/// generator reproducible independent of generation order.
#[must_use]
pub fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic() {
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }

    #[test]
    fn mix_seed_streams_differ() {
        assert_ne!(mix_seed(42, 7), mix_seed(42, 8));
        assert_ne!(mix_seed(42, 7), mix_seed(43, 7));
    }

    #[test]
    fn mix_seed_zero_inputs_are_fine() {
        // Stream 0 must not collapse to the identity.
        assert_ne!(mix_seed(0, 0), 0);
    }
}
