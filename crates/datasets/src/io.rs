//! Loading real datasets from delimited text files.
//!
//! The reproduction's experiments run on synthetic data, but the library is
//! usable with real datasets: this module parses the CSV-style formats the
//! paper's datasets ship in (UCI comma/space-separated, label in a chosen
//! column, `?`/empty fields as missing values).

use std::fs;
use std::path::Path;

use crate::matrix::{Dataset, SampleMatrix};

/// Where the label lives in each record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelColumn {
    /// First field (UCI convention, e.g. covtype-style).
    First,
    /// Last field.
    Last,
    /// Explicit zero-based field index.
    Index(usize),
}

/// CSV parsing options.
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// Field delimiter (`,` by default; use `' '` for LIBSVM-ish exports).
    pub delimiter: char,
    /// Label position.
    pub label: LabelColumn,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            label: LabelColumn::Last,
            has_header: false,
        }
    }
}

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Structural problem, with the 1-based line number.
    Parse {
        /// 1-based line where the problem was found.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The file had no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Fs(e) => write!(f, "filesystem error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Fs(e)
    }
}

/// Parses a delimited text dataset from a string.
///
/// Fields equal to `?`, `NA`, or the empty string become missing (`NaN`)
/// attribute values. Every row must have the same number of fields.
///
/// # Errors
///
/// Returns [`CsvError`] on ragged rows, unparsable numbers (other than the
/// missing markers), a missing label, or an empty file.
pub fn parse_csv(name: &str, text: &str, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let mut values: Vec<f32> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    let mut n_attributes: Option<usize> = None;
    let mut rows = 0usize;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if options.has_header && idx == 0 {
            continue;
        }
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(options.delimiter).map(str::trim).collect();
        if fields.len() < 2 {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("need at least 2 fields, found {}", fields.len()),
            });
        }
        let label_idx = match options.label {
            LabelColumn::First => 0,
            LabelColumn::Last => fields.len() - 1,
            LabelColumn::Index(i) => i,
        };
        if label_idx >= fields.len() {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("label column {label_idx} out of range"),
            });
        }
        let attrs = fields.len() - 1;
        match n_attributes {
            None => n_attributes = Some(attrs),
            Some(expected) if expected != attrs => {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("expected {expected} attributes, found {attrs}"),
                });
            }
            Some(_) => {}
        }
        let label: f32 = fields[label_idx].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            message: format!("bad label '{}'", fields[label_idx]),
        })?;
        labels.push(label);
        for (i, field) in fields.iter().enumerate() {
            if i == label_idx {
                continue;
            }
            let value = if field.is_empty() || *field == "?" || *field == "NA" {
                f32::NAN
            } else {
                field.parse().map_err(|_| CsvError::Parse {
                    line: line_no,
                    message: format!("bad value '{field}' in field {i}"),
                })?
            };
            values.push(value);
        }
        rows += 1;
    }
    let Some(n_attributes) = n_attributes else {
        return Err(CsvError::Empty);
    };
    Ok(Dataset::new(
        name,
        SampleMatrix::from_vec(rows, n_attributes, values),
        labels,
    ))
}

/// Loads a delimited text dataset from a file; the dataset name is the file
/// stem.
///
/// # Errors
///
/// As [`parse_csv`], plus filesystem errors.
pub fn load_csv(path: &Path, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let text = fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    parse_csv(&name, &text, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_label_last() {
        let d = parse_csv("t", "1.0,2.0,0\n3.0,4.0,1\n", &CsvOptions::default()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.samples.n_attributes(), 2);
        assert_eq!(d.labels, vec![0.0, 1.0]);
        assert_eq!(d.samples.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn parses_label_first_with_header() {
        let opts = CsvOptions {
            label: LabelColumn::First,
            has_header: true,
            ..CsvOptions::default()
        };
        let d = parse_csv("t", "y,a,b\n1,5.0,6.0\n", &opts).unwrap();
        assert_eq!(d.labels, vec![1.0]);
        assert_eq!(d.samples.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn missing_markers_become_nan() {
        let d = parse_csv("t", "1.0,?,0\n,2.0,1\nNA,3.0,0\n", &CsvOptions::default()).unwrap();
        assert!(d.samples.get(0, 1).is_nan());
        assert!(d.samples.get(1, 0).is_nan());
        assert!(d.samples.get(2, 0).is_nan());
        assert_eq!(d.samples.get(2, 1), 3.0);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let d = parse_csv("t", "\n# comment\n1.0,0\n\n2.0,1\n", &CsvOptions::default()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn space_delimited() {
        let opts = CsvOptions {
            delimiter: ' ',
            ..CsvOptions::default()
        };
        let d = parse_csv("t", "1.0 2.0 1", &opts).unwrap();
        assert_eq!(d.samples.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = parse_csv("t", "1,2,0\n1,0\n", &CsvOptions::default()).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bad_number_and_bad_label_error() {
        assert!(matches!(
            parse_csv("t", "abc,0\n", &CsvOptions::default()),
            Err(CsvError::Parse { .. })
        ));
        assert!(matches!(
            parse_csv("t", "1.0,xyz\n", &CsvOptions::default()),
            Err(CsvError::Parse { .. })
        ));
    }

    #[test]
    fn empty_file_errors() {
        assert!(matches!(
            parse_csv("t", "# only comments\n", &CsvOptions::default()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tahoe_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "1.0,2.0,0\n3.0,4.0,1\n").unwrap();
        let d = load_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(d.name, "mini");
        assert_eq!(d.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
