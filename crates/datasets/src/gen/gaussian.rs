//! Gaussian-cluster classification generator (Higgs/SUSY/hepmass-style).

use super::GenRng;
use rand::Rng;

use super::std_normal;
use crate::matrix::{Dataset, SampleMatrix};
use crate::spec::DatasetSpec;

/// Clusters per class; many modes per class produce trees whose branches have
/// visibly unequal traversal probabilities (the data property the paper's
/// probability-based node rearrangement exploits) and keep split gains
/// positive deep into the tree, so forests actually use their depth budget.
const CLUSTERS_PER_CLASS: usize = 8;

/// Fraction of labels flipped after generation. Real tabular datasets are not
/// separable; the noise floor lets depth-limited trees keep finding small
/// (over-fitting) gains at depth, as the paper's XGBoost forests do.
const LABEL_NOISE: f64 = 0.05;

/// Generates `n` samples of a two-class Gaussian mixture.
pub(super) fn generate(spec: &DatasetSpec, n: usize, rng: &mut GenRng) -> Dataset {
    let d = spec.n_attributes;
    // Class priors are deliberately skewed (65/35) so that even root-level
    // branches have unequal edge probabilities.
    let class1_prior = 0.35;
    let mut means = Vec::with_capacity(2 * CLUSTERS_PER_CLASS);
    for _ in 0..2 * CLUSTERS_PER_CLASS {
        let mean: Vec<f32> = (0..d).map(|_| 2.0 * std_normal(rng)).collect();
        means.push(mean);
    }
    // Cluster weights within a class are skewed geometrically (1/2, 1/4, ...),
    // again to induce non-uniform node probabilities.
    let mut values = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = usize::from(rng.gen_bool(class1_prior));
        let cluster = pick_geometric(rng, CLUSTERS_PER_CLASS);
        let mean = &means[class * CLUSTERS_PER_CLASS + cluster];
        for &m in mean.iter() {
            values.push(m + std_normal(rng));
        }
        let noisy = rng.gen_bool(LABEL_NOISE);
        labels.push(if noisy { (1 - class) as f32 } else { class as f32 });
    }
    Dataset::new(spec.name, SampleMatrix::from_vec(n, d, values), labels)
}

/// Picks index `i` in `0..k` with probability proportional to `2^-(i+1)`
/// (the remainder mass folds into the last index).
fn pick_geometric(rng: &mut GenRng, k: usize) -> usize {
    for i in 0..k - 1 {
        if rng.gen_bool(0.5) {
            return i;
        }
    }
    k - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_prior_is_skewed() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let mut rng = GenRng::seed_from_u64(9);
        let d = generate(&spec, 4_000, &mut rng);
        let pos = d.labels.iter().filter(|&&l| l == 1.0).count() as f64 / 4_000.0;
        assert!((pos - 0.35).abs() < 0.05, "positive rate {pos}");
    }

    #[test]
    fn pick_geometric_prefers_low_indices() {
        // k = 4 so every compared pair of bins has genuinely different mass
        // (1/2, 1/4, 1/8 + fold-in); with k = 3 the last two bins are both
        // 1/4 and their ordering would be RNG-stream luck.
        let mut rng = GenRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[pick_geometric(&mut rng, 4)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn classes_are_separable_on_average() {
        // Means differ between classes, so a simple per-attribute mean gap
        // must exist somewhere; otherwise trees trained on this data would be
        // trivial and edge probabilities uniform.
        let spec = DatasetSpec::by_name("higgs").unwrap();
        let mut rng = GenRng::seed_from_u64(11);
        let d = generate(&spec, 2_000, &mut rng);
        let attrs = d.samples.n_attributes();
        let mut best_gap = 0.0f32;
        for a in 0..attrs {
            let (mut s0, mut c0, mut s1, mut c1) = (0.0f32, 0usize, 0.0f32, 0usize);
            for i in 0..d.len() {
                let v = d.samples.get(i, a);
                if d.labels[i] == 0.0 {
                    s0 += v;
                    c0 += 1;
                } else {
                    s1 += v;
                    c1 += 1;
                }
            }
            let gap = (s0 / c0 as f32 - s1 / c1 as f32).abs();
            best_gap = best_gap.max(gap);
        }
        assert!(best_gap > 0.5, "best class gap {best_gap} too small");
    }
}
