//! Sparse high-dimensional generator (gisette / SVHN / cifar10-style).

use super::GenRng;
use rand::Rng;

use super::std_normal;
use crate::matrix::{Dataset, SampleMatrix};
use crate::spec::DatasetSpec;

/// Generates `n` samples with mostly-near-zero attributes and a small
/// informative block, in correlated runs that mimic pixel locality.
pub(super) fn generate(spec: &DatasetSpec, n: usize, rng: &mut GenRng) -> Dataset {
    let d = spec.n_attributes;
    // ~2 % informative attributes, at least 8.
    let n_informative = (d / 50).max(8).min(d);
    let informative: Vec<usize> = sample_indices(rng, d, n_informative);
    let mut shift = vec![0.0f32; d];
    for &a in informative.iter() {
        shift[a] = 1.5 + rng.gen::<f32>();
    }
    let run = 16.min(d); // Pixel-style correlation run length.
    let mut values = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = usize::from(rng.gen_bool(0.4));
        let mut a = 0;
        while a < d {
            // One low-variance base level per run of adjacent attributes.
            let base = 0.15 * std_normal(rng).abs();
            let end = (a + run).min(d);
            for &attr_shift in &shift[a..end] {
                let mut v = base + 0.05 * std_normal(rng);
                if class == 1 {
                    v += attr_shift;
                }
                values.push(v);
            }
            a = end;
        }
        labels.push(class as f32);
    }
    Dataset::new(spec.name, SampleMatrix::from_vec(n, d, values), labels)
}

/// Samples `k` distinct indices in `0..d` (partial Fisher–Yates).
fn sample_indices(rng: &mut GenRng, d: usize, k: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..d).collect();
    for i in 0..k {
        let j = rng.gen_range(i..d);
        all.swap(i, j);
    }
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn most_mass_is_near_zero() {
        let spec = DatasetSpec::by_name("gisette").unwrap();
        let mut rng = GenRng::seed_from_u64(5);
        let d = generate(&spec, 50, &mut rng);
        let small = d
            .samples
            .values()
            .iter()
            .filter(|v| v.abs() < 0.6)
            .count() as f64
            / d.samples.values().len() as f64;
        assert!(small > 0.8, "only {small} of values near zero");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = GenRng::seed_from_u64(2);
        let idx = sample_indices(&mut rng, 100, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn labels_correlate_with_informative_shift() {
        let spec = DatasetSpec::by_name("cifar10").unwrap();
        let mut rng = GenRng::seed_from_u64(8);
        let d = generate(&spec, 400, &mut rng);
        // Mean attribute magnitude of class 1 exceeds class 0 because of the
        // informative shift.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for i in 0..d.len() {
            let c = d.labels[i] as usize;
            sums[c] += d.samples.row(i).iter().map(|v| f64::from(v.abs())).sum::<f64>();
            counts[c] += 1;
        }
        let m0 = sums[0] / counts[0] as f64;
        let m1 = sums[1] / counts[1] as f64;
        assert!(m1 > m0, "class 1 mean {m1} not above class 0 mean {m0}");
    }
}
