//! Synthetic data generators.
//!
//! Each generator is deterministic given the dataset spec's seed and produces
//! attribute distributions whose *tree-relevant* structure matches the real
//! dataset family it stands in for: class-dependent cluster structure yields
//! skewed edge probabilities after training (needed by §4.1 node
//! rearrangement), and attribute counts match Table 2 (needed by the
//! shared-memory capacity effects of §5).

mod gaussian;
mod linear;
mod lowcard;
mod sparse;

use rand::{Rng, SeedableRng};

use crate::matrix::Dataset;
use crate::spec::{DatasetSpec, GeneratorKind, Scale};

/// The RNG used by all generators.
///
/// Bulk generation (up to tens of millions of values per dataset) is the hot
/// path of this crate; `SmallRng` (xoshiro) is several times faster than the
/// default ChaCha-based `StdRng` and statistical quality is irrelevant here —
/// only determinism and lack of obvious structure matter for tree training.
pub(crate) type GenRng = rand::rngs::SmallRng;

/// Generates the dataset described by `spec` at the given `scale`.
#[must_use]
pub fn generate(spec: &DatasetSpec, scale: Scale) -> Dataset {
    let n = spec.scaled_samples(scale);
    let mut rng = GenRng::seed_from_u64(spec.seed());
    let mut dataset = match spec.generator {
        GeneratorKind::GaussianClusters => gaussian::generate(spec, n, &mut rng),
        GeneratorKind::SparseHighDim => sparse::generate(spec, n, &mut rng),
        GeneratorKind::LowCardinality => lowcard::generate(spec, n, &mut rng),
        GeneratorKind::PiecewiseLinear => linear::generate(spec, n, &mut rng),
    };
    if spec.missing_rate > 0.0 {
        inject_missing(&mut dataset, spec.missing_rate, &mut rng);
    }
    dataset
}

/// Replaces a random `rate` fraction of attribute values with `NaN`.
fn inject_missing(dataset: &mut Dataset, rate: f64, rng: &mut GenRng) {
    let n = dataset.samples.n_samples();
    for i in 0..n {
        let row = dataset.samples.row_mut(i);
        for v in row.iter_mut() {
            if rng.gen_bool(rate) {
                *v = f32::NAN;
            }
        }
    }
}

/// Draws a zero-mean, unit-variance symmetric noise value.
///
/// Implemented as a scaled triangular distribution (sum of two uniforms):
/// two RNG draws per value instead of Box–Muller's transcendental math. Tree
/// training only consumes value *order* (quantile bins), so the exact shape
/// of the tails is irrelevant; mean 0 / variance 1 keeps generator parameters
/// interpretable.
pub(crate) fn std_normal(rng: &mut GenRng) -> f32 {
    // Var(U1 + U2) = 1/6, so scale by sqrt(6).
    const SCALE: f32 = 2.449_489_8;
    (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::by_name("higgs").unwrap();
        let a = generate(&spec, Scale::Smoke);
        let b = generate(&spec, Scale::Smoke);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn every_table2_dataset_generates_at_smoke_scale() {
        for spec in DatasetSpec::table2() {
            let d = generate(&spec, Scale::Smoke);
            assert_eq!(d.len(), spec.scaled_samples(Scale::Smoke), "{}", spec.name);
            assert_eq!(d.samples.n_attributes(), spec.n_attributes, "{}", spec.name);
        }
    }

    #[test]
    fn missing_rate_is_respected() {
        let spec = DatasetSpec::by_name("cup98").unwrap();
        let d = generate(&spec, Scale::Smoke);
        let frac = d.samples.missing_fraction();
        assert!(
            (frac - spec.missing_rate).abs() < 0.02,
            "missing fraction {frac} far from requested {}",
            spec.missing_rate
        );
    }

    #[test]
    fn classification_labels_are_binary() {
        let spec = DatasetSpec::by_name("susy").unwrap();
        let d = generate(&spec, Scale::Smoke);
        assert!(d.labels.iter().all(|&l| l == 0.0 || l == 1.0));
        // Both classes must be present for training to be meaningful.
        assert!(d.labels.contains(&0.0));
        assert!(d.labels.contains(&1.0));
    }

    #[test]
    fn std_normal_has_roughly_unit_moments() {
        let mut rng = GenRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
