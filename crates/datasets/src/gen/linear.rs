//! Piecewise-linear regression generator (allstate / cup98 / year-style).

use super::GenRng;
use rand::Rng;

use super::std_normal;
use crate::matrix::{Dataset, SampleMatrix};
use crate::spec::DatasetSpec;

/// Number of regions in the piecewise-linear target function.
const REGIONS: usize = 4;

/// Generates `n` regression samples: dense Gaussian-ish attributes, target a
/// piecewise-linear function of a sparse coefficient vector plus noise.
pub(super) fn generate(spec: &DatasetSpec, n: usize, rng: &mut GenRng) -> Dataset {
    let d = spec.n_attributes;
    let region_attr = rng.gen_range(0..d);
    // Region boundaries are skewed (non-uniform quantiles) so the trained
    // trees route unequal sample mass down each branch.
    let boundaries = [-0.8f32, 0.0, 1.0];
    // Each region has its own sparse linear model over ~10 attributes.
    let n_coef = 10.min(d);
    let mut region_models = Vec::with_capacity(REGIONS);
    for _ in 0..REGIONS {
        let model: Vec<(usize, f32)> = (0..n_coef)
            .map(|_| (rng.gen_range(0..d), 2.0 * std_normal(rng)))
            .collect();
        region_models.push(model);
    }
    let mut values = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let start = values.len();
        for _ in 0..d {
            values.push(std_normal(rng));
        }
        let row = &values[start..start + d];
        let pivot = row[region_attr];
        let region = boundaries.iter().filter(|&&b| pivot > b).count();
        let model = &region_models[region];
        let mut y = region as f32 * 3.0;
        for &(attr, coef) in model {
            y += coef * row[attr];
        }
        y += 0.3 * std_normal(rng);
        labels.push(y);
    }
    Dataset::new(spec.name, SampleMatrix::from_vec(n, d, values), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn labels_are_continuous() {
        let spec = DatasetSpec::by_name("year").unwrap();
        let mut rng = GenRng::seed_from_u64(3);
        let d = generate(&spec, 500, &mut rng);
        let distinct: std::collections::BTreeSet<u64> =
            d.labels.iter().map(|l| l.to_bits() as u64).collect();
        assert!(distinct.len() > 400, "labels look discrete: {}", distinct.len());
    }

    #[test]
    fn labels_have_signal_beyond_noise() {
        let spec = DatasetSpec::by_name("allstate").unwrap();
        let mut rng = GenRng::seed_from_u64(13);
        let d = generate(&spec, 1_000, &mut rng);
        let mean: f32 = d.labels.iter().sum::<f32>() / d.labels.len() as f32;
        let var: f32 = d.labels.iter().map(|l| (l - mean) * (l - mean)).sum::<f32>()
            / d.labels.len() as f32;
        // Pure noise would have variance ~0.09; the piecewise model dominates.
        assert!(var > 1.0, "label variance {var} too small");
    }
}
