//! Low-cardinality integer-attribute generator (covtype / letter-style).

use super::GenRng;
use rand::Rng;

use crate::matrix::{Dataset, SampleMatrix};
use crate::spec::DatasetSpec;

/// Generates `n` samples whose attributes are small integers with
/// per-attribute cardinality in `[4, 32]`, labelled by a noisy rule over two
/// pivot attributes.
pub(super) fn generate(spec: &DatasetSpec, n: usize, rng: &mut GenRng) -> Dataset {
    let d = spec.n_attributes;
    let cards: Vec<u32> = (0..d).map(|_| rng.gen_range(4..=32)).collect();
    // Two pivot attributes define the (noisy) label rule; the rest are noise.
    let pivot_a = rng.gen_range(0..d);
    let pivot_b = if d > 1 { (pivot_a + 1 + rng.gen_range(0..d - 1)) % d } else { 0 };
    let mut values = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let start = values.len();
        for &c in &cards {
            // Triangular-ish distribution: min of two uniforms skews mass to
            // low values, producing unequal split-edge probabilities.
            let v = rng.gen_range(0..c).min(rng.gen_range(0..c));
            values.push(v as f32);
        }
        let va = values[start + pivot_a];
        let vb = values[start + pivot_b];
        let noisy = rng.gen_bool(0.1);
        let raw = va * 2.0 + vb > (cards[pivot_a] as f32);
        labels.push(f32::from(u8::from(raw != noisy)));
    }
    Dataset::new(spec.name, SampleMatrix::from_vec(n, d, values), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn attributes_are_small_integers() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let mut rng = GenRng::seed_from_u64(4);
        let d = generate(&spec, 300, &mut rng);
        for &v in d.samples.values() {
            assert!((0.0..32.0).contains(&v));
            assert_eq!(v, v.trunc(), "attribute {v} is not integral");
        }
    }

    #[test]
    fn both_labels_occur() {
        let spec = DatasetSpec::by_name("covtype").unwrap();
        let mut rng = GenRng::seed_from_u64(6);
        let d = generate(&spec, 500, &mut rng);
        assert!(d.labels.contains(&0.0));
        assert!(d.labels.contains(&1.0));
    }

    #[test]
    fn distribution_is_skewed_low() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let mut rng = GenRng::seed_from_u64(7);
        let d = generate(&spec, 1_000, &mut rng);
        let mean: f32 =
            d.samples.values().iter().sum::<f32>() / d.samples.values().len() as f32;
        // Uniform over [0, ~17] would have mean ~8.5; min-of-two skews lower.
        assert!(mean < 8.0, "mean {mean} not skewed low");
    }
}
