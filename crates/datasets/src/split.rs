//! Deterministic train/inference splitting.

/// Index sets for a train/inference split.
///
/// The paper uses 70 % of each dataset for training and 30 % for inference
/// (§3 and §7.1). We use a deterministic interleaved split: within every
/// window of ten consecutive samples, the first seven go to the training set
/// and the remaining three to the inference set. Synthetic samples are i.i.d.
/// by construction, so interleaving is equivalent to a random split but
/// reproducible without carrying an RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrainInferSplit {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of inference samples.
    pub infer: Vec<usize>,
}

impl TrainInferSplit {
    /// The paper's 70/30 split over `n` samples.
    #[must_use]
    pub fn paper_default(n: usize) -> Self {
        Self::interleaved(n, 7, 10)
    }

    /// Interleaved split: of every `window` samples, the first `keep` train.
    ///
    /// # Panics
    ///
    /// Panics if `keep > window` or `window == 0`.
    #[must_use]
    pub fn interleaved(n: usize, keep: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(keep <= window, "keep must not exceed window");
        let mut train = Vec::with_capacity(n * keep / window + 1);
        let mut infer = Vec::with_capacity(n - n * keep / window + 1);
        for i in 0..n {
            if i % window < keep {
                train.push(i);
            } else {
                infer.push(i);
            }
        }
        Self { train, infer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_exactly_once() {
        let s = TrainInferSplit::paper_default(103);
        let mut all: Vec<usize> = s.train.iter().chain(s.infer.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn ratio_is_roughly_70_30() {
        let s = TrainInferSplit::paper_default(1000);
        assert_eq!(s.train.len(), 700);
        assert_eq!(s.infer.len(), 300);
    }

    #[test]
    fn small_n_still_works() {
        let s = TrainInferSplit::paper_default(3);
        assert_eq!(s.train, vec![0, 1, 2]);
        assert!(s.infer.is_empty());
    }

    #[test]
    fn custom_window() {
        let s = TrainInferSplit::interleaved(4, 1, 2);
        assert_eq!(s.train, vec![0, 2]);
        assert_eq!(s.infer, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "keep must not exceed window")]
    fn keep_larger_than_window_panics() {
        let _ = TrainInferSplit::interleaved(10, 3, 2);
    }
}
