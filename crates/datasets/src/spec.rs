//! Dataset specifications mirroring Table 2 of the paper.

use serde::{Deserialize, Serialize};

use crate::gen;
use crate::matrix::Dataset;

/// Prediction task trained on a dataset.
///
/// The paper's datasets mix binary classification, multi-class classification
/// and regression; GBDT in this reproduction is binary-logistic, so
/// multi-class datasets are binarized (class 0 vs. rest), which preserves the
/// forest shapes in Table 2 (documented substitution, see `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Labels in {0.0, 1.0}.
    BinaryClassification,
    /// Real-valued labels.
    Regression,
}

/// Ensemble type trained on a dataset (Table 2, "Forest type").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForestKind {
    /// Gradient-boosted decision trees.
    Gbdt,
    /// Random forest (bagging + feature subsampling).
    RandomForest,
}

/// Which synthetic generator produces a dataset's attribute distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Gaussian class clusters (physics-style dense tabular data:
    /// Higgs, SUSY, hepmass, ...).
    GaussianClusters,
    /// Mostly-zero high-dimensional data with a small informative subset
    /// (gisette, SVHN, cifar10 pixel-style data).
    SparseHighDim,
    /// Small-integer-valued attributes (covtype, letter).
    LowCardinality,
    /// Piecewise-linear regression targets over dense attributes
    /// (allstate, cup98, year).
    PiecewiseLinear,
}

/// Experiment scale knob (see `DESIGN.md` §6).
///
/// `Paper` reproduces Table 2 verbatim; `Ci` caps sample and tree counts so
/// the full experiment suite runs in seconds on a laptop while preserving
/// every qualitative relationship; `Smoke` is for unit tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Table 2 verbatim (can take a long time on large datasets).
    Paper,
    /// Samples capped at 20 000, trees capped at 400.
    Ci,
    /// Samples capped at 2 000, trees capped at 40.
    Smoke,
}

impl Scale {
    /// Applies this scale's sample-count cap.
    #[must_use]
    pub fn cap_samples(self, n: usize) -> usize {
        match self {
            Scale::Paper => n,
            Scale::Ci => n.min(20_000),
            Scale::Smoke => n.min(2_000),
        }
    }

    /// Applies this scale's tree-count cap.
    #[must_use]
    pub fn cap_trees(self, n: usize) -> usize {
        match self {
            Scale::Paper => n,
            Scale::Ci => n.min(400),
            Scale::Smoke => n.min(40),
        }
    }

    /// Parses a `--scale` CLI value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "paper" => Some(Scale::Paper),
            "ci" => Some(Scale::Ci),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

/// One row of the paper's Table 2: a dataset plus the hyperparameters of the
/// forest trained on it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset id, 1-based as in Table 2 (used on the x-axes of Figs. 7/8).
    pub id: usize,
    /// Dataset name (lower-case).
    pub name: &'static str,
    /// Total number of samples before scaling.
    pub n_samples: usize,
    /// Number of attributes per sample.
    pub n_attributes: usize,
    /// Prediction task.
    pub task: Task,
    /// Ensemble type trained on this dataset.
    pub forest: ForestKind,
    /// Maximum number of trees (Table 2, `N_trees`).
    pub n_trees: usize,
    /// Maximum tree depth (Table 2, `D_tree`).
    pub max_depth: usize,
    /// Synthetic generator for the attribute distribution.
    pub generator: GeneratorKind,
    /// Fraction of attribute values injected as missing (`NaN`).
    pub missing_rate: f64,
}

impl DatasetSpec {
    /// The 15 dataset rows of the paper's Table 2, in order.
    #[must_use]
    pub fn table2() -> Vec<DatasetSpec> {
        use ForestKind::{Gbdt, RandomForest};
        use GeneratorKind::{GaussianClusters, LowCardinality, PiecewiseLinear, SparseHighDim};
        use Task::{BinaryClassification, Regression};
        let row = |id,
                   name,
                   n_samples,
                   n_attributes,
                   task,
                   forest,
                   n_trees,
                   max_depth,
                   generator,
                   missing_rate| DatasetSpec {
            id,
            name,
            n_samples,
            n_attributes,
            task,
            forest,
            n_trees,
            max_depth,
            generator,
            missing_rate,
        };
        vec![
            row(1, "hock", 1_993, 4_862, BinaryClassification, Gbdt, 8, 8, SparseHighDim, 0.0),
            row(2, "higgs", 250_000, 28, BinaryClassification, RandomForest, 3_000, 8, GaussianClusters, 0.0),
            row(3, "susy", 1_000_000, 18, BinaryClassification, Gbdt, 2_000, 8, GaussianClusters, 0.0),
            row(4, "svhn", 1_000_000, 3_072, BinaryClassification, Gbdt, 218, 15, SparseHighDim, 0.0),
            row(5, "allstate", 588_318, 130, Regression, RandomForest, 800, 5, PiecewiseLinear, 0.03),
            row(6, "cifar10", 60_000, 3_072, BinaryClassification, Gbdt, 10, 8, SparseHighDim, 0.0),
            row(7, "covtype", 581_012, 54, BinaryClassification, RandomForest, 500, 3, LowCardinality, 0.0),
            row(8, "cup98", 17_535, 481, Regression, Gbdt, 150, 8, PiecewiseLinear, 0.05),
            row(9, "gisette", 13_500, 5_000, BinaryClassification, Gbdt, 20, 20, SparseHighDim, 0.0),
            row(10, "year", 515_345, 90, Regression, RandomForest, 150, 6, PiecewiseLinear, 0.0),
            row(11, "hepmass", 10_500_000, 28, BinaryClassification, Gbdt, 2_000, 10, GaussianClusters, 0.0),
            row(12, "ijcnn1", 49_990, 22, BinaryClassification, RandomForest, 10, 6, GaussianClusters, 0.0),
            row(13, "phishing", 11_055, 68, BinaryClassification, RandomForest, 15, 6, GaussianClusters, 0.0),
            row(14, "aloi", 108_000, 128, BinaryClassification, RandomForest, 2_000, 6, GaussianClusters, 0.0),
            row(15, "letter", 15_000, 16, BinaryClassification, RandomForest, 150, 4, LowCardinality, 0.0),
        ]
    }

    /// Looks up a Table 2 spec by (case-insensitive) name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        let lower = name.to_ascii_lowercase();
        Self::table2().into_iter().find(|s| s.name == lower)
    }

    /// Looks up a Table 2 spec by 1-based id.
    #[must_use]
    pub fn by_id(id: usize) -> Option<DatasetSpec> {
        Self::table2().into_iter().find(|s| s.id == id)
    }

    /// Number of samples after applying `scale`.
    #[must_use]
    pub fn scaled_samples(&self, scale: Scale) -> usize {
        scale.cap_samples(self.n_samples)
    }

    /// Number of trees after applying `scale`.
    #[must_use]
    pub fn scaled_trees(&self, scale: Scale) -> usize {
        scale.cap_trees(self.n_trees)
    }

    /// Deterministic base seed for this dataset's generators.
    #[must_use]
    pub fn seed(&self) -> u64 {
        crate::mix_seed(0x7A40_E000, self.id as u64)
    }

    /// Generates the synthetic dataset at the given scale.
    #[must_use]
    pub fn generate(&self, scale: Scale) -> Dataset {
        gen::generate(self, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_15_rows_in_id_order() {
        let rows = DatasetSpec::table2();
        assert_eq!(rows.len(), 15);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.id, i + 1);
        }
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let a = DatasetSpec::by_name("Higgs").unwrap();
        let b = DatasetSpec::by_id(2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.n_trees, 3_000);
        assert_eq!(a.max_depth, 8);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(DatasetSpec::by_name("mnist").is_none());
    }

    #[test]
    fn scale_caps_apply() {
        let higgs = DatasetSpec::by_name("higgs").unwrap();
        assert_eq!(higgs.scaled_samples(Scale::Paper), 250_000);
        assert_eq!(higgs.scaled_samples(Scale::Ci), 20_000);
        assert_eq!(higgs.scaled_trees(Scale::Ci), 400);
        assert_eq!(higgs.scaled_trees(Scale::Smoke), 40);
    }

    #[test]
    fn small_forests_not_capped() {
        let cifar = DatasetSpec::by_name("cifar10").unwrap();
        assert_eq!(cifar.scaled_trees(Scale::Ci), 10);
    }

    #[test]
    fn scale_parse_roundtrip() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("CI"), Some(Scale::Ci));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn seeds_are_distinct_per_dataset() {
        let seeds: Vec<u64> = DatasetSpec::table2().iter().map(DatasetSpec::seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
