//! Property-based tests of the simulator's cost-model invariants.

use proptest::prelude::*;

use tahoe_gpu_sim::coalesce::{adjacent_lane_distance, count_transactions};
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::{sample_plan, Detail, KernelSim};
use tahoe_gpu_sim::metrics::coefficient_of_variation;
use tahoe_gpu_sim::multigpu::partition;
use tahoe_gpu_sim::reduction::{block_reduce_sum, segmented_sum};

fn run_uniform_kernel(
    device: &DeviceSpec,
    grid: usize,
    steps: usize,
    stride: u64,
) -> tahoe_gpu_sim::KernelResult {
    let mut k = KernelSim::new(device, grid, 64, 0);
    for _ in sample_plan(grid, Detail::Sampled(8)) {
        let mut b = k.block();
        let mut w = b.warp();
        for s in 0..steps {
            let base = 0x1000_0000 + (s as u64) * stride * 64;
            let accesses: Vec<(u8, u64)> =
                (0..32).map(|i| (i as u8, base + i * stride)).collect();
            w.gmem_read(&accesses, 4, None);
        }
        b.push_warp(w.finish());
        k.push_block(b.finish());
    }
    k.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernel_time_is_monotone_in_grid_size(
        grid_a in 1usize..200,
        extra in 1usize..200,
        steps in 1usize..20,
    ) {
        let d = DeviceSpec::tesla_p100();
        let small = run_uniform_kernel(&d, grid_a, steps, 4);
        let large = run_uniform_kernel(&d, grid_a + extra, steps, 4);
        prop_assert!(large.total_ns >= small.total_ns * 0.999,
            "more blocks cannot be faster: {} vs {}", large.total_ns, small.total_ns);
    }

    #[test]
    fn kernel_time_is_monotone_in_scatter(
        grid in 1usize..100,
        steps in 1usize..20,
    ) {
        // Scattered accesses can never beat coalesced ones.
        let d = DeviceSpec::tesla_k80();
        let coalesced = run_uniform_kernel(&d, grid, steps, 4);
        let scattered = run_uniform_kernel(&d, grid, steps, 4096);
        prop_assert!(scattered.total_ns >= coalesced.total_ns * 0.999);
        prop_assert!(scattered.gmem.fetched_bytes >= coalesced.gmem.fetched_bytes);
        prop_assert!(scattered.gmem.efficiency() <= coalesced.gmem.efficiency() + 1e-12);
    }

    #[test]
    fn throughput_never_exceeds_peak_bandwidth(
        grid in 1usize..400,
        steps in 1usize..30,
        stride in prop::sample::select(vec![4u64, 64, 256, 4096]),
    ) {
        for d in DeviceSpec::paper_devices() {
            let r = run_uniform_kernel(&d, grid, steps, stride);
            prop_assert!(
                r.gmem_throughput() <= d.gmem_bytes_per_ns * 1.001,
                "{}: {} > {}", d.name, r.gmem_throughput(), d.gmem_bytes_per_ns
            );
        }
    }

    #[test]
    fn requested_never_exceeds_fetched(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..32),
    ) {
        let d = DeviceSpec::tesla_v100();
        let mut k = KernelSim::new(&d, 1, 32, 0);
        let mut b = k.block();
        let mut w = b.warp();
        let accesses: Vec<(u8, u64)> = addrs
            .iter()
            .enumerate()
            .map(|(lane, &a)| (lane as u8, a))
            .collect();
        w.gmem_read(&accesses, 4, None);
        b.push_warp(w.finish());
        k.push_block(b.finish());
        let r = k.finish();
        prop_assert!(r.gmem.requested_bytes <= r.gmem.fetched_bytes);
        prop_assert!(r.gmem.efficiency() <= 1.0);
    }

    #[test]
    fn transactions_shrink_when_addresses_merge(
        base in 0u64..1_000_000,
        n in 2usize..32,
    ) {
        // Collapsing all lanes onto one address can only reduce transactions.
        let mut spread: Vec<u64> = (0..n as u64).map(|i| base + i * 4096).collect();
        let mut merged = vec![base; n];
        let t_spread = count_transactions(&mut spread, 4, 128);
        let t_merged = count_transactions(&mut merged, 4, 128);
        prop_assert!(t_merged <= t_spread);
        // One shared address costs at most 2 transactions (when the 4-byte
        // element straddles a line boundary), and exactly 1 when it doesn't.
        let straddles = (base % 128) > 124;
        prop_assert_eq!(t_merged, if straddles { 2 } else { 1 });
    }

    #[test]
    fn adjacent_distance_is_translation_invariant(
        addrs in proptest::collection::vec(0u64..100_000, 2..32),
        shift in 0u64..100_000,
    ) {
        let shifted: Vec<u64> = addrs.iter().map(|a| a + shift).collect();
        let a = adjacent_lane_distance(&addrs).unwrap();
        let b = adjacent_lane_distance(&shifted).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn block_reduce_matches_f64_sum(
        values in proptest::collection::vec(-100.0f32..100.0, 0..64),
    ) {
        let tree = f64::from(block_reduce_sum(&values));
        let exact: f64 = values.iter().map(|&v| f64::from(v)).sum();
        prop_assert!((tree - exact).abs() < 1e-2, "{tree} vs {exact}");
    }

    #[test]
    fn segmented_sum_matches_whole_sum(
        values in proptest::collection::vec(-10.0f32..10.0, 1..8)
            .prop_flat_map(|seg| {
                let len = seg.len();
                (proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, len), 1..6), Just(len))
            }),
    ) {
        let (segments, len) = values;
        let flat: Vec<f32> = segments.concat();
        let sums = segmented_sum(&flat, len);
        prop_assert_eq!(sums.len(), segments.len());
        for (sum, seg) in sums.iter().zip(&segments) {
            let expected: f32 = seg.iter().sum();
            prop_assert!((sum - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn partition_is_exact_and_balanced(
        n in 0usize..10_000,
        devices in 1usize..64,
    ) {
        let parts = partition(n, devices);
        prop_assert_eq!(parts.len(), devices);
        let total: usize = parts.iter().map(ExactSizeIterator::len).sum();
        prop_assert_eq!(total, n);
        let max = parts.iter().map(ExactSizeIterator::len).max().unwrap();
        let min = parts.iter().map(ExactSizeIterator::len).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn cv_is_scale_invariant(
        values in proptest::collection::vec(0.1f64..1_000.0, 2..50),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let a = coefficient_of_variation(&values);
        let b = coefficient_of_variation(&scaled);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
