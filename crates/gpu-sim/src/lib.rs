//! Trace-driven GPU execution simulator — the hardware substrate of the
//! Tahoe (EuroSys '21) reproduction.
//!
//! The paper's evaluation runs CUDA kernels on Tesla K80/P100/V100 GPUs and
//! measures memory-system effects: transaction coalescing, shared-memory
//! capacity and bandwidth, reduction overheads, warp/block load imbalance,
//! and occupancy-limited scheduling. This crate models exactly those
//! mechanisms:
//!
//! - [`device`] — per-generation device parameters (three paper GPUs).
//! - [`memory`] — simulated global address space (addresses only; data stays
//!   in host slices).
//! - [`coalesce`] — per-warp-step transaction coalescing and the
//!   requested/fetched efficiency metric.
//! - [`warp`] — lockstep warp tracer with per-lane busy times and per-level
//!   statistics.
//! - [`block`] — block timing: `max(bandwidth bound, critical path) +
//!   reductions`.
//! - [`kernel`] — grid scheduling in occupancy-limited waves, with
//!   deterministic block sampling + extrapolation for huge grids.
//! - [`reduction`] — functional tree reductions (cub-order).
//! - [`occupancy`] — residency limits.
//! - [`microbench`] — "offline" hardware-parameter measurement feeding the
//!   paper's performance models (Algorithm 1, line 4).
//! - [`multigpu`] — data-parallel multi-device runs (§7.5 scaling).
//! - [`metrics`] — CV / A.C.V. imbalance statistics.
//! - [`parallel`] — host-side parallel map for simulation work
//!   (`TAHOE_SIM_THREADS` overrides the worker count).
//! - [`memo`] — per-launch block-result memoization: identical blocks
//!   simulate once and replay in plan order (`TAHOE_SIM_MEMO` toggles it).
//! - [`telemetry`] — span recorder, typed counter registry, and Chrome
//!   trace / metrics-snapshot export (zero-cost when disabled).
//! - [`profile`] — per-kernel Nsight-style reports, latency histograms,
//!   and model-vs-simulator drift records layered on the telemetry sink.
//! - [`timeseries`] — windowed time-series sampler: counter deltas, gauges,
//!   and per-window latency percentiles on fixed simulated-clock windows.
//! - [`decision`] — request-path flight recorder: per-request critical-path
//!   records and per-tuning-event decision audits on the telemetry sink.
//!
//! # Examples
//!
//! Sampled blocks fan out across host worker threads via
//! [`kernel::KernelSim::simulate_blocks`]; results merge in plan order, so
//! the outcome is bit-identical however many workers ran.
//!
//! ```
//! use tahoe_gpu_sim::device::DeviceSpec;
//! use tahoe_gpu_sim::kernel::{sample_plan, Detail, KernelSim};
//!
//! let device = DeviceSpec::tesla_p100();
//! let mut kernel = KernelSim::new(&device, 128, 256, 0);
//! let plan = sample_plan(128, Detail::Sampled(8));
//! kernel.simulate_blocks(&plan, |_block_idx, mut block| {
//!     let mut warp = block.warp();
//!     let accesses: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4)).collect();
//!     warp.gmem_read(&accesses, 4, None);
//!     block.push_warp(warp.finish());
//!     block.finish()
//! });
//! let result = kernel.finish();
//! assert!(result.total_ns > 0.0);
//! assert!((result.gmem.efficiency() - 1.0).abs() < 1e-12);
//! ```

pub mod block;
pub mod coalesce;
pub mod decision;
pub mod device;
pub mod kernel;
pub mod memo;
pub mod memory;
pub mod metrics;
pub mod microbench;
pub mod multigpu;
pub mod occupancy;
pub mod parallel;
pub mod profile;
pub mod reduction;
pub mod telemetry;
pub mod timeseries;
pub mod warp;

pub use block::{BlockResult, BlockSim};
pub use coalesce::AccessStats;
pub use decision::{DecisionCandidate, DecisionRecord, DecisionsExport, RequestPathRecord};
pub use device::{Arch, DeviceSpec};
pub use kernel::{sample_plan, Detail, KernelResult, KernelSim};
pub use memo::{set_sim_memo, sim_memo, BlockKey, KeyHasher, MemoStats};
pub use memory::{DeviceMemory, GlobalBuffer, OomError, ALLOC_ALIGN};
pub use microbench::{measure, MeasuredParams};
pub use parallel::{parallel_map, set_sim_threads, sim_threads};
pub use profile::{
    DriftRecord, HistogramExport, KernelProfile, LatencyHistogram, OccupancyLimiter,
    ProfilesExport, TimeBreakdown,
};
pub use telemetry::{Counter, CounterRegistry, MetricsSnapshot, SpanEvent, TelemetrySink};
pub use timeseries::{
    LatencyWindowExport, SeriesExport, SeriesPoint, SloWindowExport, TimeSeriesExport,
    DEFAULT_WINDOW_NS,
};
pub use warp::{LevelStats, WarpResult, WarpSim, MAX_WARP_LANES};
