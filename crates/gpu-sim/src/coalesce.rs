//! Per-warp memory-transaction coalescing analysis.
//!
//! One warp step issues up to 32 addresses (one per active lane). The memory
//! system serves them in `transaction_bytes`-sized chunks; lanes whose
//! addresses fall in the same chunk share one transaction. The ratio of
//! *requested* bytes (what the lanes asked for) to *fetched* bytes
//! (transactions × transaction size) is the paper's global-load-efficiency
//! metric (§3: "ratio of requested data to total fetched data").

use serde::{Deserialize, Serialize};

/// Counts distinct transactions covering `addrs`, each access `elem_bytes`
/// wide. `addrs` is scratch space and is sorted in place.
///
/// An access that straddles a transaction boundary counts every transaction
/// it touches.
#[must_use]
pub fn count_transactions(addrs: &mut [u64], elem_bytes: u64, txn_bytes: u64) -> u64 {
    debug_assert!(txn_bytes.is_power_of_two());
    if addrs.is_empty() {
        return 0;
    }
    addrs.sort_unstable();
    let shift = txn_bytes.trailing_zeros();
    let mut txns = 0u64;
    // Highest line already fetched; `None` before the first access.
    let mut last: Option<u64> = None;
    for &a in addrs.iter() {
        let first_line = a >> shift;
        let last_line = (a + elem_bytes - 1) >> shift;
        // Lines up to and including `last` are already fetched.
        let from = match last {
            Some(l) => first_line.max(l + 1),
            None => first_line,
        };
        if from <= last_line {
            txns += last_line - from + 1;
            last = Some(last_line);
        }
    }
    txns
}

/// Mean absolute address distance between adjacent active lanes.
///
/// This is the metric of the paper's Figure 2(a): "average distance of two
/// addresses accessed by two threads with adjacent thread IDs within the same
/// warp". `addrs` must be in lane order (not sorted).
#[must_use]
pub fn adjacent_lane_distance(addrs: &[u64]) -> Option<f64> {
    if addrs.len() < 2 {
        return None;
    }
    let mut sum = 0.0f64;
    for w in addrs.windows(2) {
        sum += w[0].abs_diff(w[1]) as f64;
    }
    Some(sum / (addrs.len() - 1) as f64)
}

/// Accumulated access statistics for one address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Bytes the lanes asked for.
    pub requested_bytes: u64,
    /// Bytes the memory system moved (transactions × transaction size for
    /// global memory; equal to requested for shared memory).
    pub fetched_bytes: u64,
    /// Number of memory transactions.
    pub transactions: u64,
    /// Number of warp steps that accessed this space.
    pub steps: u64,
}

impl AccessStats {
    /// The efficiency metric: requested / fetched (1.0 when nothing fetched).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.fetched_bytes == 0 {
            1.0
        } else {
            self.requested_bytes as f64 / self.fetched_bytes as f64
        }
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &AccessStats) {
        self.requested_bytes += other.requested_bytes;
        self.fetched_bytes += other.fetched_bytes;
        self.transactions += other.transactions;
        self.steps += other.steps;
    }

    /// Returns these stats scaled by an extrapolation factor (used when only
    /// a subset of blocks was simulated in detail).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> AccessStats {
        let scale = |v: u64| (v as f64 * factor).round() as u64;
        AccessStats {
            requested_bytes: scale(self.requested_bytes),
            fetched_bytes: scale(self.fetched_bytes),
            transactions: scale(self.transactions),
            steps: scale(self.steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        // 32 consecutive 4-byte accesses starting at a 128B boundary.
        let mut addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
        assert_eq!(count_transactions(&mut addrs, 4, 128), 1);
    }

    #[test]
    fn fully_scattered_warp_is_32_transactions() {
        let mut addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4096).collect();
        assert_eq!(count_transactions(&mut addrs, 4, 128), 32);
    }

    #[test]
    fn duplicate_addresses_share_a_transaction() {
        let mut addrs = vec![0x1000u64; 32];
        assert_eq!(count_transactions(&mut addrs, 4, 128), 1);
    }

    #[test]
    fn straddling_access_counts_both_lines() {
        let mut addrs = vec![0x1000u64 + 126];
        assert_eq!(count_transactions(&mut addrs, 4, 128), 2);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut addrs = vec![0x1100u64, 0x1000, 0x1080, 0x1004];
        // Lines: 0x1000/0x1080/0x1100 → 3 transactions.
        assert_eq!(count_transactions(&mut addrs, 4, 128), 3);
    }

    #[test]
    fn empty_is_zero() {
        let mut addrs: Vec<u64> = vec![];
        assert_eq!(count_transactions(&mut addrs, 4, 128), 0);
    }

    #[test]
    fn adjacent_distance_averages_gaps() {
        let addrs = vec![100u64, 104, 112];
        let d = adjacent_lane_distance(&addrs).unwrap();
        assert!((d - 6.0).abs() < 1e-12);
        assert!(adjacent_lane_distance(&[1]).is_none());
    }

    #[test]
    fn efficiency_and_merge() {
        let mut a = AccessStats {
            requested_bytes: 128,
            fetched_bytes: 256,
            transactions: 2,
            steps: 1,
        };
        assert!((a.efficiency() - 0.5).abs() < 1e-12);
        let b = a;
        a.merge(&b);
        assert_eq!(a.requested_bytes, 256);
        assert_eq!(a.transactions, 4);
        assert!((AccessStats::default().efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_counters() {
        let a = AccessStats {
            requested_bytes: 100,
            fetched_bytes: 200,
            transactions: 10,
            steps: 5,
        };
        let s = a.scaled(2.5);
        assert_eq!(s.requested_bytes, 250);
        assert_eq!(s.steps, 13); // Rounded.
    }
}
