//! Lockstep warp tracer.
//!
//! A [`WarpSim`] replays one warp's execution as a sequence of *steps*. At
//! each step the active lanes issue at most one memory access or compute
//! operation; the tracer coalesces global accesses into transactions,
//! accumulates bandwidth/latency costs, and tracks per-lane busy time (used
//! for the paper's thread-imbalance metrics).
//!
//! Divergence semantics: lanes that have finished their work simply stop
//! appearing in the active sets, but the *warp* keeps paying the critical-path
//! cost of every remaining step — exactly the SIMT behaviour that makes tree
//! depth imbalance expensive on real hardware.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::coalesce::{adjacent_lane_distance, count_transactions, AccessStats};
use crate::device::DeviceSpec;

/// Per-tree-level access statistics (drives the paper's Fig. 2a).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Sum of mean adjacent-lane address distances over steps.
    pub distance_sum: f64,
    /// Number of steps contributing to `distance_sum`.
    pub distance_steps: u64,
    /// Access statistics at this level.
    pub access: AccessStats,
}

impl LevelStats {
    /// Mean adjacent-lane address distance at this level.
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        if self.distance_steps == 0 {
            0.0
        } else {
            self.distance_sum / self.distance_steps as f64
        }
    }

    /// Accumulates another level's statistics.
    pub fn merge(&mut self, other: &LevelStats) {
        self.distance_sum += other.distance_sum;
        self.distance_steps += other.distance_steps;
        self.access.merge(&other.access);
    }
}

/// Completed-warp summary handed to the block aggregator.
#[derive(Clone, Debug, Default)]
pub struct WarpResult {
    /// Critical-path time of the warp (lockstep over all steps).
    pub serial_ns: f64,
    /// Portion of `serial_ns` accrued by *streamed* global reads
    /// (`gmem_read_streamed`); the profiler attributes it to staging.
    pub streamed_ns: f64,
    /// Global-memory statistics.
    pub gmem: AccessStats,
    /// Shared-memory statistics.
    pub smem: AccessStats,
    /// Pure compute time on the critical path.
    pub compute_ns: f64,
    /// Per-lane busy time (only the lane's own active steps).
    pub lane_busy_ns: Vec<f64>,
    /// Per-level statistics, keyed by the caller's level tag.
    pub levels: BTreeMap<u32, LevelStats>,
    /// Total lockstep steps executed (memory + compute).
    pub steps: u64,
    /// Sum of active lanes over all steps; `active_lane_steps /
    /// (steps × warp_size)` is the warp's SIMT efficiency.
    pub active_lane_steps: u64,
}

/// Widest warp the tracer supports (capacity of the inline address scratch).
pub const MAX_WARP_LANES: usize = 64;

/// Tracer for one warp.
pub struct WarpSim<'d> {
    device: &'d DeviceSpec,
    result: WarpResult,
    /// Inline address scratch for per-step coalescing: a stack buffer instead
    /// of a heap `Vec`, so the hot loop stays allocation-free and warp
    /// construction costs nothing beyond the result's lane vector.
    addr_scratch: [u64; MAX_WARP_LANES],
}

impl<'d> WarpSim<'d> {
    /// Starts tracing a warp on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device's warp is wider than [`MAX_WARP_LANES`].
    #[must_use]
    pub fn new(device: &'d DeviceSpec) -> Self {
        assert!(
            device.warp_size as usize <= MAX_WARP_LANES,
            "warp width {} exceeds the tracer's {MAX_WARP_LANES}-lane scratch",
            device.warp_size
        );
        Self {
            device,
            result: WarpResult {
                lane_busy_ns: vec![0.0; device.warp_size as usize],
                ..WarpResult::default()
            },
            addr_scratch: [0; MAX_WARP_LANES],
        }
    }

    /// One global-memory read step.
    ///
    /// `accesses` holds `(lane, address)` pairs for the active lanes, in lane
    /// order. `level` optionally tags the step for per-level reporting
    /// (Fig. 2a uses the tree level).
    ///
    /// # Panics
    ///
    /// Panics if more lanes are active than the warp is wide.
    pub fn gmem_read(&mut self, accesses: &[(u8, u64)], elem_bytes: u64, level: Option<u32>) {
        self.gmem_access(accesses, elem_bytes, level, false);
    }

    /// One *streamed* global-memory read step: the access is independent of
    /// the previous step (no pointer chase), so the warp keeps `mlp` such
    /// loads in flight and the critical path pays `latency / mlp`.
    pub fn gmem_read_streamed(
        &mut self,
        accesses: &[(u8, u64)],
        elem_bytes: u64,
        level: Option<u32>,
    ) {
        self.gmem_access(accesses, elem_bytes, level, true);
    }

    /// One *joint* dependent global-read step over several access sets — the
    /// struct-of-arrays node fetch, where a warp reads a node's structural
    /// entry, its value, and (sparse) its child offset from separate lanes.
    ///
    /// Each set is `(accesses, elem_bytes)` with `(lane, address)` pairs in
    /// lane order. All sets are indexed by the *same* already-known slot, so
    /// the loads issue back-to-back and overlap: the warp pays **one**
    /// dependent `gmem_latency_ns` for the whole step, while the bandwidth
    /// side (transactions, requested/fetched bytes) charges every set in
    /// full. Lane busy time and SIMT activity count each lane once per step
    /// (the union of the sets' active lanes).
    ///
    /// # Panics
    ///
    /// Panics if any set has more lanes than the warp is wide.
    pub fn gmem_read_joint(&mut self, sets: &[(&[(u8, u64)], u64)], level: Option<u32>) {
        if sets.iter().all(|(accesses, _)| accesses.is_empty()) {
            return;
        }
        let mut lane_mask = 0u64;
        for &(accesses, elem_bytes) in sets {
            assert!(
                accesses.len() <= self.device.warp_size as usize,
                "more active lanes than the warp width"
            );
            if accesses.is_empty() {
                continue;
            }
            let addrs = &mut self.addr_scratch[..accesses.len()];
            for (slot, &(lane, addr)) in addrs.iter_mut().zip(accesses) {
                *slot = addr;
                lane_mask |= 1 << lane;
            }
            let distance = adjacent_lane_distance(addrs);
            let txns = count_transactions(addrs, elem_bytes, self.device.transaction_bytes);
            let step = AccessStats {
                requested_bytes: accesses.len() as u64 * elem_bytes,
                fetched_bytes: txns * self.device.transaction_bytes,
                transactions: txns,
                steps: 1,
            };
            self.result.gmem.merge(&step);
            if let Some(lvl) = level {
                let entry = self.result.levels.entry(lvl).or_default();
                entry.access.merge(&step);
                if let Some(d) = distance {
                    entry.distance_sum += d;
                    entry.distance_steps += 1;
                }
            }
        }
        let latency = self.device.gmem_latency_ns;
        self.result.serial_ns += latency;
        self.result.steps += 1;
        self.result.active_lane_steps += u64::from(lane_mask.count_ones());
        for lane in 0..self.device.warp_size as usize {
            if lane_mask & (1 << lane) != 0 {
                self.result.lane_busy_ns[lane] += latency;
            }
        }
    }

    fn gmem_access(
        &mut self,
        accesses: &[(u8, u64)],
        elem_bytes: u64,
        level: Option<u32>,
        streamed: bool,
    ) {
        assert!(
            accesses.len() <= self.device.warp_size as usize,
            "more active lanes than the warp width"
        );
        if accesses.is_empty() {
            return;
        }
        let addrs = &mut self.addr_scratch[..accesses.len()];
        for (slot, &(_, addr)) in addrs.iter_mut().zip(accesses) {
            *slot = addr;
        }
        let distance = adjacent_lane_distance(addrs);
        let txns = count_transactions(addrs, elem_bytes, self.device.transaction_bytes);
        let requested = accesses.len() as u64 * elem_bytes;
        let fetched = txns * self.device.transaction_bytes;
        let step = AccessStats {
            requested_bytes: requested,
            fetched_bytes: fetched,
            transactions: txns,
            steps: 1,
        };
        self.result.gmem.merge(&step);
        if let Some(lvl) = level {
            let entry = self.result.levels.entry(lvl).or_default();
            entry.access.merge(&step);
            if let Some(d) = distance {
                entry.distance_sum += d;
                entry.distance_steps += 1;
            }
        }
        let latency = if streamed {
            self.device.gmem_latency_ns / self.device.mlp
        } else {
            self.device.gmem_latency_ns
        };
        self.result.serial_ns += latency;
        if streamed {
            self.result.streamed_ns += latency;
        }
        self.result.steps += 1;
        self.result.active_lane_steps += accesses.len() as u64;
        for &(lane, _) in accesses {
            self.result.lane_busy_ns[lane as usize] += latency;
        }
    }

    /// One shared-memory access step (`bytes_each` per active lane).
    ///
    /// Shared memory has no coalescing concept here; bank conflicts are out
    /// of scope (documented simplification — uniform and broadcast patterns
    /// dominate the strategies' shared-memory traffic).
    pub fn smem_access(&mut self, lanes: &[u8], bytes_each: u64) {
        if lanes.is_empty() {
            return;
        }
        let bytes = lanes.len() as u64 * bytes_each;
        let step = AccessStats {
            requested_bytes: bytes,
            fetched_bytes: bytes,
            transactions: 1,
            steps: 1,
        };
        self.result.smem.merge(&step);
        let latency = self.device.smem_latency_ns;
        self.result.serial_ns += latency;
        self.result.steps += 1;
        self.result.active_lane_steps += lanes.len() as u64;
        for &lane in lanes {
            self.result.lane_busy_ns[lane as usize] += latency;
        }
    }

    /// One compute step of `ns` (e.g. a node evaluation) on the active lanes.
    pub fn compute(&mut self, lanes: &[u8], ns: f64) {
        if lanes.is_empty() {
            return;
        }
        self.result.serial_ns += ns;
        self.result.compute_ns += ns;
        self.result.steps += 1;
        self.result.active_lane_steps += lanes.len() as u64;
        for &lane in lanes {
            self.result.lane_busy_ns[lane as usize] += ns;
        }
    }

    /// Convenience: one decision-node evaluation step.
    pub fn node_eval(&mut self, lanes: &[u8]) {
        self.compute(lanes, self.device.node_eval_ns);
    }

    /// Ends the warp, returning its summary.
    #[must_use]
    pub fn finish(self) -> WarpResult {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_p100()
    }

    #[test]
    fn coalesced_step_fetches_one_transaction() {
        let d = device();
        let mut w = WarpSim::new(&d);
        let accesses: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4)).collect();
        w.gmem_read(&accesses, 4, None);
        let r = w.finish();
        assert_eq!(r.gmem.transactions, 1);
        assert_eq!(r.gmem.requested_bytes, 128);
        assert_eq!(r.gmem.fetched_bytes, 128);
        assert!((r.gmem.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_step_fetches_many_transactions() {
        let d = device();
        let mut w = WarpSim::new(&d);
        let accesses: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4096)).collect();
        w.gmem_read(&accesses, 4, None);
        let r = w.finish();
        assert_eq!(r.gmem.transactions, 32);
        assert!((r.gmem.efficiency() - 128.0 / 4096.0).abs() < 1e-9);
    }

    #[test]
    fn serial_time_counts_every_step_once() {
        let d = device();
        let mut w = WarpSim::new(&d);
        let all: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4)).collect();
        w.gmem_read(&all, 4, None);
        w.smem_access(&[0, 1, 2], 4);
        w.compute(&[0], 5.0);
        let r = w.finish();
        let expected = d.gmem_latency_ns + d.smem_latency_ns + 5.0;
        assert!((r.serial_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn inactive_lanes_accrue_no_busy_time() {
        let d = device();
        let mut w = WarpSim::new(&d);
        w.gmem_read(&[(0, 0x1000), (5, 0x1004)], 4, None);
        let r = w.finish();
        assert!(r.lane_busy_ns[0] > 0.0);
        assert!(r.lane_busy_ns[5] > 0.0);
        assert_eq!(r.lane_busy_ns[1], 0.0);
        assert_eq!(r.lane_busy_ns[31], 0.0);
    }

    #[test]
    fn level_tags_accumulate_distance() {
        let d = device();
        let mut w = WarpSim::new(&d);
        w.gmem_read(&[(0, 0x1000), (1, 0x1010)], 16, Some(3));
        w.gmem_read(&[(0, 0x1000), (1, 0x1030)], 16, Some(3));
        let r = w.finish();
        let lvl = &r.levels[&3];
        assert_eq!(lvl.distance_steps, 2);
        assert!((lvl.mean_distance() - (16.0 + 48.0) / 2.0).abs() < 1e-9);
        assert_eq!(lvl.access.steps, 2);
    }

    #[test]
    fn empty_access_sets_are_noops() {
        let d = device();
        let mut w = WarpSim::new(&d);
        w.gmem_read(&[], 4, Some(1));
        w.smem_access(&[], 4);
        w.compute(&[], 10.0);
        let r = w.finish();
        assert_eq!(r.serial_ns, 0.0);
        assert_eq!(r.gmem.steps, 0);
        assert!(r.levels.is_empty());
    }

    #[test]
    fn streamed_time_is_tracked_separately() {
        let d = device();
        let mut w = WarpSim::new(&d);
        let all: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4)).collect();
        w.gmem_read(&all, 4, None); // dependent: full latency, not streamed
        w.gmem_read_streamed(&all, 4, None); // streamed: latency / mlp
        let r = w.finish();
        let streamed = d.gmem_latency_ns / d.mlp;
        assert!((r.streamed_ns - streamed).abs() < 1e-9);
        assert!((r.serial_ns - (d.gmem_latency_ns + streamed)).abs() < 1e-9);
    }

    #[test]
    fn joint_read_pays_one_latency_but_all_bandwidth() {
        let d = device();
        let mut w = WarpSim::new(&d);
        let bits: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i)).collect();
        let vals: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x8000 + i * 4)).collect();
        w.gmem_read_joint(&[(&bits, 1), (&vals, 4)], Some(2));
        let r = w.finish();
        // One dependent latency for the whole struct-of-arrays fetch...
        assert!((r.serial_ns - d.gmem_latency_ns).abs() < 1e-9);
        assert_eq!(r.steps, 1);
        assert_eq!(r.active_lane_steps, 32);
        // ...but the bandwidth side charges both sets in full.
        assert_eq!(r.gmem.requested_bytes, 32 + 128);
        assert_eq!(r.gmem.transactions, 2);
        assert_eq!(r.gmem.steps, 2);
        assert_eq!(r.levels[&2].access.steps, 2);
        // Each lane is busy once per joint step.
        assert!((r.lane_busy_ns[0] - d.gmem_latency_ns).abs() < 1e-9);
        assert!((r.lane_busy_ns[31] - d.gmem_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn joint_read_unions_partial_lane_sets() {
        let d = device();
        let mut w = WarpSim::new(&d);
        // Bits read by lanes 0 and 3; value read only by lane 3.
        w.gmem_read_joint(&[(&[(0, 0x1000), (3, 0x1003)], 1), (&[(3, 0x8000)], 4)], None);
        let r = w.finish();
        assert_eq!(r.active_lane_steps, 2);
        assert!(r.lane_busy_ns[0] > 0.0);
        assert!((r.lane_busy_ns[3] - d.gmem_latency_ns).abs() < 1e-9, "lane 3 busy once");
        assert_eq!(r.lane_busy_ns[1], 0.0);
    }

    #[test]
    fn joint_read_with_all_empty_sets_is_a_noop() {
        let d = device();
        let mut w = WarpSim::new(&d);
        w.gmem_read_joint(&[(&[], 1), (&[], 4)], Some(0));
        let r = w.finish();
        assert_eq!(r.steps, 0);
        assert_eq!(r.serial_ns, 0.0);
        assert!(r.levels.is_empty());
    }

    #[test]
    fn node_eval_uses_device_cost() {
        let d = device();
        let mut w = WarpSim::new(&d);
        w.node_eval(&[0, 1]);
        let r = w.finish();
        assert!((r.compute_ns - d.node_eval_ns).abs() < 1e-12);
    }
}
