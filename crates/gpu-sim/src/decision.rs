//! Request-path flight recorder and tuning decision audit (DESIGN.md §2.15).
//!
//! The profiler (DESIGN.md §2.10) answers "what did this launch cost?"; this
//! module answers the two questions aggregates cannot: *why was request R
//! slow?* and *why did Algorithm 1 pick this plan?*
//!
//! - [`DecisionRecord`] — one entry per engine tuning event: every
//!   `(strategy, block size)` candidate the tuner swept with its predicted
//!   cost (or the rejection reason), the chosen plan, and the post-hoc
//!   simulated cost + model drift for the launch that actually ran.
//! - [`RequestPathRecord`] — one entry per serving request: the critical-path
//!   breakdown (batch formation wait, queue wait behind a busy device,
//!   execution) whose components sum *bitwise* to the request's end-to-end
//!   latency, because the serving simulators construct the latency as the
//!   left-to-right fold `form + queue + execute` rather than deriving the
//!   components after the fact.
//!
//! Both accumulate in the [`TelemetrySink`] and export as
//! [`TelemetrySink::decisions_json`] (the `--decisions <path>` payload);
//! the Chrome trace additionally renders each request as a Perfetto async
//! span plus flow arrows into the executing device's track.
//!
//! # Determinism
//!
//! Records are pushed only from the engine's and the serving simulators'
//! caller threads, after `simulate_blocks` has merged block results in plan
//! order — worker threads never touch the store. Every field derives from
//! simulated-clock arithmetic and performance-model evaluation (no
//! wall-clock), so the export is byte-identical across the
//! `TAHOE_SIM_THREADS` × `TAHOE_SIM_MEMO` cross-product
//! (`tests/determinism.rs`).

use serde::{Deserialize, Serialize};

use crate::telemetry::TelemetrySink;

/// One `(strategy, block size)` candidate Algorithm 1 evaluated.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionCandidate {
    /// Strategy name (e.g. `"shared forest"`).
    pub strategy: String,
    /// Candidate threads per block.
    pub block_threads: u64,
    /// Model-predicted batch cost (ns); `None` (JSON `null`) when the
    /// candidate was rejected before costing — a rejection is not a
    /// zero-cost prediction.
    pub predicted_ns: Option<f64>,
    /// Why the candidate was rejected (`None` = feasible and costed).
    pub rejection: Option<String>,
}

/// One engine tuning event: the full candidate sweep, the chosen plan, and
/// the realized (simulated) cost of the launch it produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Cluster device index the batch ran on (0 for a bare engine; re-tagged
    /// when a cluster absorbs a device sink).
    pub device: u32,
    /// Engine batch ordinal on its device (1-based launch order).
    pub batch: u64,
    /// Samples in the batch.
    pub n_samples: u64,
    /// Whether the strategy was forced by the caller (the sweep is still
    /// recorded so the export shows what the model *would* have chosen).
    pub forced: bool,
    /// Strategy the engine ran.
    pub chosen_strategy: String,
    /// Block size the engine launched with.
    pub chosen_block_threads: u64,
    /// Model-predicted cost of the chosen plan for this batch (ns).
    pub predicted_ns: f64,
    /// Simulated kernel time of the launch (ns).
    pub simulated_ns: f64,
    /// `(predicted − simulated) / simulated` (0 when simulated is 0) — the
    /// same value as the launch's `DriftRecord`.
    pub relative_error: f64,
    /// Calibration generation the predictions were made under (0 = the raw
    /// §6 constants; bumps when the engine's calibrator refits and moves a
    /// scale).
    pub calibration_generation: u64,
    /// Whether the tuned plan list came from the engine's tuning-decision
    /// cache instead of a fresh `tune_all` sweep.
    pub cache_hit: bool,
    /// Every candidate the tuner swept, in sweep order (strategy-major,
    /// ascending block size).
    pub candidates: Vec<DecisionCandidate>,
}

/// One serving request's critical path. `form_ns + queue_ns + execute_ns`
/// equals `total_ns` bitwise: the serving simulators compute `total_ns` as
/// exactly that left-to-right sum and report it as the request's latency.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestPathRecord {
    /// Request index in the trace — the trace id linking the Chrome-trace
    /// async span and flow arrows to this record.
    pub request: u64,
    /// Serving batch ordinal the request was grouped into (dispatch order).
    pub batch: u64,
    /// Cluster device index that executed the batch (0 for a single engine).
    pub device: u32,
    /// Arrival time on the simulated clock (ns).
    pub arrival_ns: f64,
    /// Wait for the batch to form after arrival (ns; 0 for the request that
    /// completed the batch).
    pub form_ns: f64,
    /// Wait for the dispatch device to become free (ns).
    pub queue_ns: f64,
    /// Batch execution time on the device (ns).
    pub execute_ns: f64,
    /// Slice of `execute_ns` spent in block + global reductions
    /// (informational; not a critical-path component of the sum).
    pub reduction_ns: f64,
    /// End-to-end latency (ns) — bitwise `form_ns + queue_ns + execute_ns`.
    pub total_ns: f64,
}

/// Flight-recorder state shared behind a recording sink (one per
/// `telemetry::SinkInner`).
#[derive(Debug, Default)]
pub struct DecisionStore {
    decisions: Vec<DecisionRecord>,
    requests: Vec<RequestPathRecord>,
}

impl DecisionStore {
    /// Appends a device sink's records, re-tagging their device-local index
    /// 0 to the cluster-wide `device_idx`. Callers (the cluster absorb path)
    /// must invoke this in device-index order so the merged export is
    /// deterministic.
    pub(crate) fn merge_from(&mut self, other: DecisionStore, device_idx: usize) {
        self.decisions.extend(other.decisions.into_iter().map(|mut d| {
            d.device += device_idx as u32;
            d
        }));
        self.requests.extend(other.requests.into_iter().map(|mut r| {
            r.device += device_idx as u32;
            r
        }));
    }

    fn export(&self) -> DecisionsExport {
        DecisionsExport {
            decisions: self.decisions.clone(),
            requests: self.requests.clone(),
        }
    }
}

/// The full flight-recorder export — the `--decisions <path>` payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionsExport {
    /// One record per engine tuning event, in launch order (device-major
    /// after a cluster merge).
    pub decisions: Vec<DecisionRecord>,
    /// One record per serving request, in request order within each batch,
    /// batches in dispatch order.
    pub requests: Vec<RequestPathRecord>,
}

impl DecisionsExport {
    /// Parses an export previously written by
    /// [`TelemetrySink::decisions_json`] (e.g. a `--decisions <path>` file).
    ///
    /// # Errors
    ///
    /// Returns the deserialization error message when `text` is not a valid
    /// flight-recorder export.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl TelemetrySink {
    /// Records one tuning decision. No-op when disabled. Called only from
    /// the engine's caller thread, after the launch finished.
    pub fn push_decision(&self, record: DecisionRecord) {
        if let TelemetrySink::Recording(inner) = self {
            inner.decisions.lock().decisions.push(record);
        }
    }

    /// Records one serving request's critical path. No-op when disabled.
    /// Called only from the serving simulator's caller thread.
    pub fn push_request_path(&self, record: RequestPathRecord) {
        if let TelemetrySink::Recording(inner) = self {
            inner.decisions.lock().requests.push(record);
        }
    }

    /// Snapshot of the recorded flight-recorder state (empty when disabled).
    #[must_use]
    pub fn decisions(&self) -> DecisionsExport {
        match self {
            TelemetrySink::Disabled => DecisionStore::default().export(),
            TelemetrySink::Recording(inner) => inner.decisions.lock().export(),
        }
    }

    /// The flight-recorder export as pretty JSON (the `--decisions <path>`
    /// payload).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the export is plain data that always
    /// serializes.
    #[must_use]
    pub fn decisions_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(&self.decisions()).expect("decisions serialize");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(device: u32) -> DecisionRecord {
        DecisionRecord {
            device,
            batch: 1,
            n_samples: 64,
            forced: false,
            chosen_strategy: "shared data".to_string(),
            chosen_block_threads: 128,
            predicted_ns: 900.0,
            simulated_ns: 1_000.0,
            relative_error: -0.1,
            calibration_generation: 0,
            cache_hit: false,
            candidates: vec![
                DecisionCandidate {
                    strategy: "shared data".to_string(),
                    block_threads: 128,
                    predicted_ns: Some(900.0),
                    rejection: None,
                },
                DecisionCandidate {
                    strategy: "shared forest".to_string(),
                    block_threads: 1024,
                    predicted_ns: None,
                    rejection: Some("geometry infeasible".to_string()),
                },
            ],
        }
    }

    fn request(device: u32) -> RequestPathRecord {
        RequestPathRecord {
            request: 3,
            batch: 0,
            device,
            arrival_ns: 150.0,
            form_ns: 50.0,
            queue_ns: 25.0,
            execute_ns: 1_000.0,
            reduction_ns: 100.0,
            total_ns: 50.0 + 25.0 + 1_000.0,
        }
    }

    #[test]
    fn disabled_sink_stores_nothing() {
        let sink = TelemetrySink::Disabled;
        sink.push_decision(decision(0));
        sink.push_request_path(request(0));
        let e = sink.decisions();
        assert!(e.decisions.is_empty());
        assert!(e.requests.is_empty());
    }

    #[test]
    fn recording_sink_accumulates_and_round_trips() {
        let sink = TelemetrySink::recording();
        sink.push_decision(decision(0));
        sink.push_request_path(request(0));
        let e = sink.decisions();
        assert_eq!(e.decisions.len(), 1);
        assert_eq!(e.requests.len(), 1);
        assert_eq!(e.decisions[0].candidates.len(), 2);
        let back = DecisionsExport::from_json(&sink.decisions_json()).expect("export parses");
        assert_eq!(back, e, "round-trip must be lossless");
    }

    #[test]
    fn merge_retags_the_device_local_index() {
        let mut cluster = DecisionStore::default();
        let mut dev = DecisionStore::default();
        dev.decisions.push(decision(0));
        dev.requests.push(request(0));
        cluster.merge_from(dev, 2);
        assert_eq!(cluster.decisions[0].device, 2);
        assert_eq!(cluster.requests[0].device, 2);
        // A cluster-recorded request (explicit device) merges unchanged at
        // index 0.
        let mut explicit = DecisionStore::default();
        explicit.requests.push(request(1));
        cluster.merge_from(explicit, 0);
        assert_eq!(cluster.requests[1].device, 1);
    }
}
