//! Block-result memoization support (DESIGN.md §2.12).
//!
//! Within one launch, many sampled blocks are *identical* as far as the
//! simulator can tell: same block shape, same tree slice, same sample-window
//! content, same alignment relative to the coalescing grain. Simulating each
//! of them is redundant — [`crate::kernel::KernelSim::simulate_blocks_keyed`]
//! simulates one representative per distinct fingerprint and replays the
//! cached [`crate::block::BlockResult`] for the rest, in plan order, so the
//! merged outcome is bit-identical to simulating every block.
//!
//! This module holds the pieces the keyed path needs:
//!
//! - [`BlockKey`] / [`KeyHasher`] — a deterministic, seedless 128-bit
//!   content fingerprint. The hasher is plain stack state (two u64
//!   accumulators), so computing a key never allocates; callers feed it the
//!   exact quantities their block closure depends on.
//! - [`MemoStats`] — per-`KernelSim` hit/miss/footprint accounting, emitted
//!   as telemetry counters from `KernelSim::finish` (and only there).
//! - [`set_sim_memo`] / [`sim_memo`] — the process-wide on/off switch,
//!   mirroring [`crate::parallel::set_sim_threads`]: programmatic override
//!   first, then the `TAHOE_SIM_MEMO` environment variable, then the
//!   default (on). Turning memoization off must never change results — the
//!   determinism suite pins that cross-product.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide memoization override: 0 = unset, 1 = forced off,
/// 2 = forced on.
static MEMO_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides whether [`crate::kernel::KernelSim::simulate_blocks_keyed`]
/// memoizes, process-wide.
///
/// `Some(false)` forces every planned block to simulate (the keyed path
/// degrades to [`crate::kernel::KernelSim::simulate_blocks`]); `Some(true)`
/// forces memoization on; `None` restores the default resolution
/// (`TAHOE_SIM_MEMO`, then on). Used by the determinism tests and the
/// `host_perf` benchmark to compare both paths in one process.
pub fn set_sim_memo(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    MEMO_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether the keyed simulation path memoizes. Resolution order: the
/// [`set_sim_memo`] override, then `TAHOE_SIM_MEMO`, then on.
#[must_use]
pub fn sim_memo() -> bool {
    match MEMO_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => env_memo().unwrap_or(true),
    }
}

/// `TAHOE_SIM_MEMO`, when set to a recognized value. Invalid values warn
/// once to stderr and fall through to the default (on).
fn env_memo() -> Option<bool> {
    let raw = std::env::var("TAHOE_SIM_MEMO").ok()?;
    match parse_memo_env(&raw) {
        Ok(v) => v,
        Err(()) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid TAHOE_SIM_MEMO={raw:?}: \
                     expected 0/1, true/false, or on/off; memoization stays on"
                );
            });
            None
        }
    }
}

/// Parses a `TAHOE_SIM_MEMO` value: `Ok(Some(_))` for a recognized on/off
/// spelling, `Ok(None)` for empty/whitespace (unset), `Err(())` otherwise.
fn parse_memo_env(raw: &str) -> Result<Option<bool>, ()> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    if t == "0" || t.eq_ignore_ascii_case("false") || t.eq_ignore_ascii_case("off") {
        return Ok(Some(false));
    }
    if t == "1" || t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("on") {
        return Ok(Some(true));
    }
    Err(())
}

/// 128-bit block fingerprint produced by [`KeyHasher`].
///
/// Keys are compared for exact equality; a collision would replay the wrong
/// block's result, so the key is 128 bits wide (collision probability is
/// negligible at any realistic grid size) and the hasher folds every input
/// word into both halves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockKey {
    hi: u64,
    lo: u64,
}

/// Deterministic, seedless streaming hasher for [`BlockKey`]s.
///
/// Plain stack state — two accumulators mixed with the splitmix64 finalizer
/// per input word — so fingerprinting a block allocates nothing. The stream
/// is length-suffixed, and words are position-dependent: `[a, b]` and
/// `[b, a]` hash differently.
#[derive(Clone, Copy, Debug)]
pub struct KeyHasher {
    a: u64,
    b: u64,
    len: u64,
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// A fresh hasher. Always starts from the same fixed state, so the same
    /// input stream produces the same key in every process.
    #[must_use]
    pub fn new() -> Self {
        Self {
            a: 0x243f_6a88_85a3_08d3, // pi digits — nothing-up-my-sleeve
            b: 0x1319_8a2e_0370_7344,
            len: 0,
        }
    }

    /// Folds one 64-bit word into the fingerprint.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.a = mix(self.a ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.b = mix(self.b.wrapping_add(w).wrapping_add(self.a.rotate_left(23)));
        self.len = self.len.wrapping_add(1);
    }

    /// Folds a slice of f32 values by their exact bit patterns, so any ULP
    /// difference (or a NaN payload change) produces a different key.
    #[inline]
    pub fn write_f32s(&mut self, values: &[f32]) {
        for v in values {
            self.write_u64(u64::from(v.to_bits()));
        }
    }

    /// Finishes the stream into a key.
    #[must_use]
    pub fn finish(self) -> BlockKey {
        BlockKey {
            hi: mix(self.a ^ self.len),
            lo: mix(self.b ^ self.len.rotate_left(32)),
        }
    }
}

/// Memoization accounting of one [`crate::kernel::KernelSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Planned blocks replayed from the cache.
    pub hits: u64,
    /// Planned blocks simulated in detail (one per distinct key).
    pub misses: u64,
    /// Approximate bytes of cached block results held while the launch's
    /// cache was live.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_env_parsing() {
        assert_eq!(parse_memo_env(""), Ok(None));
        assert_eq!(parse_memo_env("   "), Ok(None));
        assert_eq!(parse_memo_env("0"), Ok(Some(false)));
        assert_eq!(parse_memo_env("off"), Ok(Some(false)));
        assert_eq!(parse_memo_env("FALSE"), Ok(Some(false)));
        assert_eq!(parse_memo_env("1"), Ok(Some(true)));
        assert_eq!(parse_memo_env(" on "), Ok(Some(true)));
        assert_eq!(parse_memo_env("True"), Ok(Some(true)));
        assert_eq!(parse_memo_env("yes"), Err(()));
        assert_eq!(parse_memo_env("2"), Err(()));
        assert_eq!(parse_memo_env("-1"), Err(()));
    }

    #[test]
    fn identical_streams_hash_identically() {
        let mut a = KeyHasher::new();
        let mut b = KeyHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(7);
            h.write_f32s(&[1.0, -0.5, f32::NAN]);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_changes_flip_the_key() {
        let key = |values: &[f32]| {
            let mut h = KeyHasher::new();
            h.write_f32s(values);
            h.finish()
        };
        let base = key(&[1.0, 2.0, 3.0]);
        // One ULP on one value must miss — this is the no-false-sharing
        // property the strategy keys rely on.
        assert_ne!(base, key(&[1.0, 2.0, f32::from_bits(3.0f32.to_bits() + 1)]));
        assert_ne!(base, key(&[1.0, 2.0]));
        // -0.0 and 0.0 differ in bits, so they differ in key.
        assert_ne!(key(&[0.0]), key(&[-0.0]));
    }

    #[test]
    fn keys_are_order_and_length_sensitive() {
        let key = |words: &[u64]| {
            let mut h = KeyHasher::new();
            for &w in words {
                h.write_u64(w);
            }
            h.finish()
        };
        assert_ne!(key(&[1, 2]), key(&[2, 1]));
        assert_ne!(key(&[0]), key(&[0, 0]));
        assert_ne!(key(&[]), key(&[0]));
    }
}
