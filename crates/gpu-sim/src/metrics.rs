//! Statistical helpers for the paper's imbalance metrics.

/// Coefficient of variation: standard deviation over mean.
///
/// Returns 0 for empty input or zero mean. This is the paper's per-block
/// thread-imbalance metric (Fig. 2c: "CV = 49.1 %").
#[must_use]
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    var.sqrt() / mean
}

/// Average coefficient of variation over groups (the paper's "A.C.V." of
/// Table 3: CV is computed per thread block, then averaged).
#[must_use]
pub fn average_cv<I>(groups: I) -> f64
where
    I: IntoIterator,
    I::Item: AsRef<[f64]>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for g in groups {
        let g = g.as_ref();
        if g.is_empty() {
            continue;
        }
        sum += coefficient_of_variation(g);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Arithmetic mean (0 for empty input).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean (0 for empty input).
///
/// # Panics
///
/// Panics if any value is non-positive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn cv_matches_hand_computation() {
        // Values 1, 3: mean 2, stddev 1, CV 0.5.
        let cv = coefficient_of_variation(&[1.0, 3.0]);
        assert!((cv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cv_handles_degenerate_input() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn average_cv_averages_groups() {
        let groups = vec![vec![1.0, 3.0], vec![2.0, 2.0]];
        let acv = average_cv(&groups);
        assert!((acv - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_and_geomean() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
