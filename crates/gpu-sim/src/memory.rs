//! Simulated device address spaces.
//!
//! The simulator never stores data at these addresses — kernels keep their
//! functional data in ordinary Rust slices. Addresses exist purely so the
//! coalescing analyzer can reason about which accesses share a memory
//! transaction, exactly as `nvprof`'s global-load-efficiency counters do.
//!
//! [`DeviceMemory`] models a real `cudaMalloc`/`cudaFree` heap: allocations
//! occupy 256-byte-aligned spans, freed spans are coalesced and reused, and
//! the heap is bounded by the device's DRAM capacity
//! ([`DeviceSpec::dram_bytes`]). Capacity is enforced on the *aligned* spans
//! (what actually occupies DRAM), so [`DeviceMemory::try_alloc`] fails with
//! [`OomError`] exactly when a real allocator would.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::telemetry::{Counter, TelemetrySink};

/// Base of the simulated global address space (arbitrary, non-zero so that
/// address arithmetic bugs surface as wild addresses rather than plausible
/// small offsets).
pub const GLOBAL_BASE: u64 = 0x1_0000_0000;

/// Allocation granularity: `cudaMalloc` guarantees at least 256-byte
/// alignment, and every span the allocator hands out is a multiple of this.
pub const ALLOC_ALIGN: u64 = 256;

/// Simulated device-memory exhaustion (the analogue of
/// `cudaErrorMemoryAllocation`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Bytes the failing request asked for.
    pub requested_bytes: u64,
    /// Aligned bytes in use at the time of the request.
    pub in_use_bytes: u64,
    /// Device DRAM capacity.
    pub capacity_bytes: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated device OOM: requested {} B with {} B of {} B in use",
            self.requested_bytes, self.in_use_bytes, self.capacity_bytes
        )
    }
}

impl std::error::Error for OomError {}

/// A capacity-bounded free-list allocator for simulated global memory.
///
/// Freed spans are merged with adjacent free spans and reused first-fit;
/// a free span that reaches the bump frontier shrinks the frontier back, so
/// a steady alloc/free workload stays at a constant footprint instead of
/// marching through the address space.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    /// Bump frontier: every address at or above this is virgin. Always a
    /// multiple of [`ALLOC_ALIGN`].
    next: u64,
    /// Cumulative requested bytes over the allocator's lifetime (never
    /// decremented by `free`) — a traffic counter, not a footprint.
    allocated: u64,
    /// Aligned bytes currently live.
    in_use: u64,
    /// Largest value `in_use` has reached.
    high_water: u64,
    /// DRAM capacity in bytes; allocations beyond this fail.
    capacity: u64,
    /// Live spans: base → aligned span size. Guards double/foreign frees.
    live: BTreeMap<u64, u64>,
    /// Free spans below the frontier: base → aligned span size. Adjacent
    /// entries are always merged.
    free_list: BTreeMap<u64, u64>,
    /// Telemetry sink mirroring alloc/free/OOM activity and the in-use /
    /// high-water gauges ([`TelemetrySink::Disabled`] by default: no-ops).
    sink: TelemetrySink,
}

impl Default for DeviceMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceMemory {
    /// A fresh, effectively unbounded address space (for unit tests and
    /// host-side scratch where capacity is not the point).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(u64::MAX)
    }

    /// A fresh address space bounded at `capacity` bytes of DRAM.
    #[must_use]
    pub fn with_capacity(capacity: u64) -> Self {
        Self {
            next: GLOBAL_BASE,
            allocated: 0,
            in_use: 0,
            high_water: 0,
            capacity,
            live: BTreeMap::new(),
            free_list: BTreeMap::new(),
            sink: TelemetrySink::Disabled,
        }
    }

    /// Mirrors this allocator's activity into `sink`: successful allocations
    /// and frees bump [`Counter::DeviceAllocs`] / [`Counter::DeviceFrees`],
    /// failed requests bump [`Counter::DeviceOomEvents`], and the
    /// [`Counter::AllocInUseBytes`] / [`Counter::AllocHighWaterBytes`]
    /// gauges track the footprint.
    pub fn attach_telemetry(&mut self, sink: &TelemetrySink) {
        self.sink = sink.clone();
        self.sink.set(Counter::AllocInUseBytes, self.in_use);
        self.sink.max(Counter::AllocHighWaterBytes, self.high_water);
    }

    /// A fresh address space sized to a device's DRAM.
    #[must_use]
    pub fn for_device(device: &DeviceSpec) -> Self {
        Self::with_capacity(device.dram_bytes)
    }

    /// Allocates `bytes` of simulated global memory, 256-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the aligned span would push the in-use
    /// footprint past the DRAM capacity.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<GlobalBuffer, OomError> {
        let span = match bytes.checked_add(ALLOC_ALIGN - 1) {
            Some(v) => v / ALLOC_ALIGN * ALLOC_ALIGN,
            None => {
                self.sink.add(Counter::DeviceOomEvents, 1);
                return Err(self.oom(bytes));
            }
        };
        if span > self.capacity.saturating_sub(self.in_use) {
            self.sink.add(Counter::DeviceOomEvents, 1);
            return Err(self.oom(bytes));
        }
        if span == 0 {
            // cudaMalloc(0): a valid, unusable zero-length buffer that
            // occupies nothing and needs no bookkeeping.
            return Ok(GlobalBuffer {
                base: self.next,
                bytes: 0,
            });
        }
        // First fit from the free list, else bump the frontier.
        let reuse = self
            .free_list
            .iter()
            .find(|&(_, &size)| size >= span)
            .map(|(&base, &size)| (base, size));
        let base = match reuse {
            Some((base, size)) => {
                self.free_list.remove(&base);
                if size > span {
                    self.free_list.insert(base + span, size - span);
                }
                base
            }
            None => {
                let base = self.next;
                self.next = base + span;
                base
            }
        };
        self.live.insert(base, span);
        self.in_use += span;
        self.high_water = self.high_water.max(self.in_use);
        self.allocated += bytes;
        self.sink.add(Counter::DeviceAllocs, 1);
        self.sink.set(Counter::AllocInUseBytes, self.in_use);
        self.sink.max(Counter::AllocHighWaterBytes, self.high_water);
        Ok(GlobalBuffer { base, bytes })
    }

    /// Allocates `bytes` of simulated global memory, 256-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics on simulated OOM; capacity-aware callers use
    /// [`DeviceMemory::try_alloc`].
    #[must_use]
    pub fn alloc(&mut self, bytes: u64) -> GlobalBuffer {
        self.try_alloc(bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Releases an allocation, merging its span into the free list (or
    /// shrinking the bump frontier when it is the topmost span).
    ///
    /// # Panics
    ///
    /// Panics when `buf` was not returned by this allocator or was already
    /// freed — a simulated double-free, always a caller bug.
    pub fn free(&mut self, buf: GlobalBuffer) {
        if buf.bytes == 0 {
            return;
        }
        let span = self
            .live
            .remove(&buf.base)
            .expect("simulated double-free or foreign buffer");
        self.in_use -= span;
        self.sink.add(Counter::DeviceFrees, 1);
        self.sink.set(Counter::AllocInUseBytes, self.in_use);
        let mut base = buf.base;
        let mut size = span;
        // Merge with the free neighbor below.
        if let Some((&prev_base, &prev_size)) = self.free_list.range(..base).next_back() {
            if prev_base + prev_size == base {
                self.free_list.remove(&prev_base);
                base = prev_base;
                size += prev_size;
            }
        }
        // Merge with the free neighbor above.
        if let Some(&next_size) = self.free_list.get(&(base + size)) {
            self.free_list.remove(&(base + size));
            size += next_size;
        }
        if base + size == self.next {
            self.next = base;
        } else {
            self.free_list.insert(base, size);
        }
    }

    /// Cumulative bytes requested over the allocator's lifetime (a traffic
    /// counter — `free` never decrements it).
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Aligned bytes currently live.
    #[must_use]
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use
    }

    /// Largest in-use footprint the allocator has reached.
    #[must_use]
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water
    }

    /// DRAM capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Bytes still allocatable before hitting capacity.
    #[must_use]
    pub fn available_bytes(&self) -> u64 {
        self.capacity.saturating_sub(self.in_use)
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    fn oom(&self, requested: u64) -> OomError {
        OomError {
            requested_bytes: requested,
            in_use_bytes: self.in_use,
            capacity_bytes: self.capacity,
        }
    }
}

/// A simulated global-memory allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalBuffer {
    /// First byte address.
    pub base: u64,
    /// Allocation size in bytes.
    pub bytes: u64,
}

impl GlobalBuffer {
    /// Address of byte `offset` within the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the offset is out of bounds — a simulated segfault, which is
    /// always a kernel-authoring bug.
    #[must_use]
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(
            offset < self.bytes,
            "simulated OOB access: offset {offset} in {}-byte buffer",
            self.bytes
        );
        self.base + offset
    }

    /// Address of element `index` of an array of `elem_bytes`-sized elements.
    ///
    /// # Panics
    ///
    /// Panics if the element extends past the end of the buffer.
    #[must_use]
    pub fn elem_addr(&self, index: u64, elem_bytes: u64) -> u64 {
        let offset = index * elem_bytes;
        assert!(
            offset + elem_bytes <= self.bytes,
            "simulated OOB access: element {index} x {elem_bytes}B in {}-byte buffer",
            self.bytes
        );
        self.base + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(100);
        let b = mem.alloc(100);
        assert_eq!(a.base % 256, 0);
        assert_eq!(b.base % 256, 0);
        assert!(b.base >= a.base + a.bytes);
        assert_eq!(mem.allocated_bytes(), 200);
    }

    #[test]
    fn elem_addr_computes_strided_addresses() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(64);
        assert_eq!(buf.elem_addr(3, 4), buf.base + 12);
    }

    #[test]
    #[should_panic(expected = "simulated OOB")]
    fn oob_offset_panics() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(16);
        let _ = buf.addr(16);
    }

    #[test]
    #[should_panic(expected = "simulated OOB")]
    fn oob_elem_panics() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(16);
        let _ = buf.elem_addr(4, 4); // Bytes 16..20 are past the end.
    }

    #[test]
    fn free_returns_capacity_and_footprint() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let a = mem.alloc(1000);
        let b = mem.alloc(2000);
        assert_eq!(mem.in_use_bytes(), 1024 + 2048); // Aligned spans.
        assert_eq!(mem.live_allocations(), 2);
        mem.free(a);
        assert_eq!(mem.in_use_bytes(), 2048);
        mem.free(b);
        assert_eq!(mem.in_use_bytes(), 0);
        assert_eq!(mem.live_allocations(), 0);
        assert_eq!(mem.high_water_bytes(), 1024 + 2048);
        // Cumulative traffic is unaffected by frees.
        assert_eq!(mem.allocated_bytes(), 3000);
    }

    #[test]
    fn freed_spans_are_reused() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(4096);
        let _hold = mem.alloc(256); // Pin the frontier above `a`.
        mem.free(a);
        // An equal-or-smaller request lands in the hole, not past the
        // frontier.
        let c = mem.alloc(4096);
        assert_eq!(c.base, a.base);
        let d = mem.alloc(100);
        assert!(d.base > c.base, "small alloc must not overlap");
    }

    #[test]
    fn adjacent_free_spans_merge() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(256);
        let b = mem.alloc(256);
        let _hold = mem.alloc(256);
        mem.free(a);
        mem.free(b); // Merges with `a`'s span below.
        let c = mem.alloc(512); // Fits only if the two spans merged.
        assert_eq!(c.base, a.base);
    }

    #[test]
    fn freeing_top_span_shrinks_frontier() {
        let mut mem = DeviceMemory::new();
        let base0 = mem.alloc(512).base;
        let a = mem.alloc(512);
        mem.free(a);
        // The frontier shrank, so the next alloc reuses a's address even
        // though it is larger than a's span.
        let b = mem.alloc(4096);
        assert_eq!(b.base, a.base);
        assert_eq!(base0 % 256, 0);
    }

    #[test]
    fn steady_alloc_free_cycle_is_flat() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let forest = mem.alloc(100_000);
        for _ in 0..10_000 {
            let batch = mem.alloc(65_536);
            mem.free(batch);
        }
        // 10k batches through a 1 MiB heap: only possible if spans recycle.
        assert_eq!(mem.in_use_bytes(), 100_096); // forest span only
        assert!(mem.high_water_bytes() <= 100_096 + 65_536);
        mem.free(forest);
        assert_eq!(mem.in_use_bytes(), 0);
    }

    #[test]
    fn try_alloc_reports_oom() {
        let mut mem = DeviceMemory::with_capacity(4096);
        let a = mem.try_alloc(2048).unwrap();
        let err = mem.try_alloc(4096).unwrap_err();
        assert_eq!(err.requested_bytes, 4096);
        assert_eq!(err.in_use_bytes, 2048);
        assert_eq!(err.capacity_bytes, 4096);
        // Freeing makes the space allocatable again.
        mem.free(a);
        assert!(mem.try_alloc(4096).is_ok());
    }

    #[test]
    fn capacity_counts_aligned_spans() {
        let mut mem = DeviceMemory::with_capacity(512);
        // 300 B occupies a 512 B span: a second 1 B alloc must fail.
        let _a = mem.try_alloc(300).unwrap();
        assert!(mem.try_alloc(1).is_err());
    }

    #[test]
    #[should_panic(expected = "simulated device OOM")]
    fn alloc_panics_on_oom() {
        let mut mem = DeviceMemory::with_capacity(1024);
        let _ = mem.alloc(2048);
    }

    #[test]
    #[should_panic(expected = "double-free")]
    fn double_free_panics() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(64);
        mem.free(a);
        mem.free(a);
    }

    #[test]
    fn zero_byte_alloc_is_free() {
        let mut mem = DeviceMemory::with_capacity(0);
        let buf = mem.try_alloc(0).unwrap();
        assert_eq!(buf.bytes, 0);
        assert_eq!(mem.in_use_bytes(), 0);
        mem.free(buf); // No-op, not a double-free.
        mem.free(buf);
    }

    #[test]
    fn for_device_uses_dram_capacity() {
        let spec = DeviceSpec::tesla_k80();
        let mem = DeviceMemory::for_device(&spec);
        assert_eq!(mem.capacity_bytes(), spec.dram_bytes);
    }
}
