//! Simulated device address spaces.
//!
//! The simulator never stores data at these addresses — kernels keep their
//! functional data in ordinary Rust slices. Addresses exist purely so the
//! coalescing analyzer can reason about which accesses share a memory
//! transaction, exactly as `nvprof`'s global-load-efficiency counters do.

use serde::{Deserialize, Serialize};

/// Base of the simulated global address space (arbitrary, non-zero so that
/// address arithmetic bugs surface as wild addresses rather than plausible
/// small offsets).
pub const GLOBAL_BASE: u64 = 0x1_0000_0000;

/// A bump allocator for simulated global memory.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    next: u64,
    allocated: u64,
}

impl Default for DeviceMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceMemory {
    /// A fresh, empty address space.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: GLOBAL_BASE,
            allocated: 0,
        }
    }

    /// Allocates `bytes` of simulated global memory, 256-byte aligned
    /// (cudaMalloc guarantees at least that).
    #[must_use]
    pub fn alloc(&mut self, bytes: u64) -> GlobalBuffer {
        const ALIGN: u64 = 256;
        let base = self.next.div_ceil(ALIGN) * ALIGN;
        self.next = base + bytes;
        self.allocated += bytes;
        GlobalBuffer { base, bytes }
    }

    /// Total bytes allocated so far.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

/// A simulated global-memory allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalBuffer {
    /// First byte address.
    pub base: u64,
    /// Allocation size in bytes.
    pub bytes: u64,
}

impl GlobalBuffer {
    /// Address of byte `offset` within the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the offset is out of bounds — a simulated segfault, which is
    /// always a kernel-authoring bug.
    #[must_use]
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(
            offset < self.bytes,
            "simulated OOB access: offset {offset} in {}-byte buffer",
            self.bytes
        );
        self.base + offset
    }

    /// Address of element `index` of an array of `elem_bytes`-sized elements.
    ///
    /// # Panics
    ///
    /// Panics if the element extends past the end of the buffer.
    #[must_use]
    pub fn elem_addr(&self, index: u64, elem_bytes: u64) -> u64 {
        let offset = index * elem_bytes;
        assert!(
            offset + elem_bytes <= self.bytes,
            "simulated OOB access: element {index} x {elem_bytes}B in {}-byte buffer",
            self.bytes
        );
        self.base + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(100);
        let b = mem.alloc(100);
        assert_eq!(a.base % 256, 0);
        assert_eq!(b.base % 256, 0);
        assert!(b.base >= a.base + a.bytes);
        assert_eq!(mem.allocated_bytes(), 200);
    }

    #[test]
    fn elem_addr_computes_strided_addresses() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(64);
        assert_eq!(buf.elem_addr(3, 4), buf.base + 12);
    }

    #[test]
    #[should_panic(expected = "simulated OOB")]
    fn oob_offset_panics() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(16);
        let _ = buf.addr(16);
    }

    #[test]
    #[should_panic(expected = "simulated OOB")]
    fn oob_elem_panics() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(16);
        let _ = buf.elem_addr(4, 4); // Bytes 16..20 are past the end.
    }
}
