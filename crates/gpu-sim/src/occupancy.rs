//! Block-residency (occupancy) calculation.

use crate::device::DeviceSpec;

/// Number of blocks the whole device can run concurrently, limited by SM
/// count, per-SM thread capacity, per-SM block slots, and per-SM shared
/// memory.
///
/// # Panics
///
/// Panics if `threads_per_block` is zero or exceeds the device limit, or if
/// the block's shared-memory demand exceeds the per-block capacity.
#[must_use]
pub fn concurrent_blocks(
    device: &DeviceSpec,
    threads_per_block: usize,
    smem_per_block: usize,
) -> usize {
    assert!(threads_per_block > 0, "a block needs at least one thread");
    assert!(
        threads_per_block <= device.max_threads_per_block as usize,
        "block of {threads_per_block} threads exceeds device limit {}",
        device.max_threads_per_block
    );
    assert!(
        smem_per_block <= device.shared_mem_per_block,
        "block demands {smem_per_block} B shared memory, device allows {}",
        device.shared_mem_per_block
    );
    let by_threads = device.max_threads_per_sm as usize / threads_per_block;
    let by_slots = device.max_blocks_per_sm as usize;
    let by_smem = device
        .shared_mem_per_sm
        .checked_div(smem_per_block)
        .unwrap_or(usize::MAX);
    let per_sm = by_threads.min(by_slots).min(by_smem).max(1);
    per_sm * device.num_sms as usize
}

/// Number of scheduling waves needed to run `grid_blocks` blocks.
#[must_use]
pub fn waves(grid_blocks: usize, concurrent: usize) -> usize {
    if grid_blocks == 0 {
        0
    } else {
        grid_blocks.div_ceil(concurrent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_limited_occupancy() {
        let d = DeviceSpec::tesla_p100(); // 56 SMs, 2048 threads/SM.
        assert_eq!(concurrent_blocks(&d, 1024, 0), 2 * 56);
        assert_eq!(concurrent_blocks(&d, 256, 0), 8 * 56);
    }

    #[test]
    fn smem_limited_occupancy() {
        let d = DeviceSpec::tesla_p100(); // 64 KiB/SM, 48 KiB/block max.
        assert_eq!(concurrent_blocks(&d, 128, 40 * 1024), 56); // 1 block/SM.
        assert_eq!(concurrent_blocks(&d, 128, 16 * 1024), 4 * 56);
    }

    #[test]
    fn slot_limited_occupancy() {
        let d = DeviceSpec::tesla_p100(); // 32 blocks/SM.
        assert_eq!(concurrent_blocks(&d, 32, 0), 32 * 56);
    }

    #[test]
    fn at_least_one_block_per_sm() {
        let mut d = DeviceSpec::tesla_p100();
        d.max_threads_per_sm = 100; // Degenerate: smaller than a block.
        d.max_threads_per_block = 1024;
        assert_eq!(concurrent_blocks(&d, 512, 0), 56);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_panics() {
        let d = DeviceSpec::tesla_p100();
        let _ = concurrent_blocks(&d, 2048, 0);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn oversized_smem_panics() {
        let d = DeviceSpec::tesla_p100();
        let _ = concurrent_blocks(&d, 128, 49 * 1024);
    }

    #[test]
    fn wave_arithmetic() {
        assert_eq!(waves(0, 10), 0);
        assert_eq!(waves(1, 10), 1);
        assert_eq!(waves(10, 10), 1);
        assert_eq!(waves(11, 10), 2);
    }
}
