//! Multi-device data parallelism (paper §7.5 scaling experiments).
//!
//! The paper partitions the inference dataset across GPUs with no
//! inter-device communication during inference; total time is the slowest
//! device's time (strong scaling) and weak scaling duplicates the dataset.

use std::ops::Range;

/// Result of a data-parallel multi-device run.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiGpuRun {
    /// Simulated time per device (ns).
    pub per_device_ns: Vec<f64>,
    /// End-to-end time: the slowest device (ns).
    pub total_ns: f64,
}

impl MultiGpuRun {
    /// Parallel efficiency versus a single device taking `single_ns`.
    #[must_use]
    pub fn speedup_over(&self, single_ns: f64) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            single_ns / self.total_ns
        }
    }
}

/// Evenly partitions `n_items` across `n_devices`; partition `i` gets the
/// remainder spread over the first partitions (sizes differ by at most 1).
#[must_use]
pub fn partition(n_items: usize, n_devices: usize) -> Vec<Range<usize>> {
    assert!(n_devices > 0, "need at least one device");
    let base = n_items / n_devices;
    let rem = n_items % n_devices;
    let mut out = Vec::with_capacity(n_devices);
    let mut start = 0;
    for i in 0..n_devices {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `simulate` once per device partition and combines the times.
///
/// `simulate(device_idx, range)` returns the simulated ns for that partition
/// (0 is fine for an empty partition).
pub fn data_parallel<F>(n_devices: usize, n_items: usize, mut simulate: F) -> MultiGpuRun
where
    F: FnMut(usize, Range<usize>) -> f64,
{
    let parts = partition(n_items, n_devices);
    let per_device_ns: Vec<f64> = parts
        .into_iter()
        .enumerate()
        .map(|(i, r)| simulate(i, r))
        .collect();
    let total_ns = per_device_ns.iter().copied().fold(0.0f64, f64::max);
    MultiGpuRun {
        per_device_ns,
        total_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_once() {
        let parts = partition(103, 8);
        assert_eq!(parts.len(), 8);
        let mut next = 0;
        for p in &parts {
            assert_eq!(p.start, next);
            next = p.end;
        }
        assert_eq!(next, 103);
        let sizes: Vec<usize> = parts.iter().map(ExactSizeIterator::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_with_more_devices_than_items() {
        let parts = partition(3, 8);
        let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn total_is_slowest_device() {
        let run = data_parallel(4, 100, |i, r| (r.len() * (i + 1)) as f64);
        assert_eq!(run.per_device_ns.len(), 4);
        assert_eq!(run.total_ns, run.per_device_ns[3]);
    }

    #[test]
    fn perfect_scaling_halves_time() {
        // Linear-cost workload: doubling devices halves the max partition.
        let one = data_parallel(1, 1_000, |_, r| r.len() as f64);
        let two = data_parallel(2, 1_000, |_, r| r.len() as f64);
        assert!((two.speedup_over(one.total_ns) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = partition(10, 0);
    }
}
