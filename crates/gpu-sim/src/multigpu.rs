//! Multi-device data partitioning (paper §7.5 scaling experiments).
//!
//! The paper partitions the inference dataset across GPUs with no
//! inter-device communication during inference; total time is the slowest
//! device's time (strong scaling) and weak scaling duplicates the dataset.
//!
//! This module holds only the partitioning arithmetic. Actual multi-device
//! execution lives in `tahoe::cluster::GpuCluster`, which runs one full
//! `Engine` (own `DeviceMemory`, own simulated clock, own telemetry sink)
//! per device and merges results in device-index order.

use std::ops::Range;

/// Evenly partitions `n_items` across `n_devices`; partition `i` gets the
/// remainder spread over the first partitions (sizes differ by at most 1).
///
/// # Panics
///
/// Panics when `n_devices == 0`.
#[must_use]
pub fn partition(n_items: usize, n_devices: usize) -> Vec<Range<usize>> {
    assert!(n_devices > 0, "need at least one device");
    let base = n_items / n_devices;
    let rem = n_items % n_devices;
    let mut out = Vec::with_capacity(n_devices);
    let mut start = 0;
    for i in 0..n_devices {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_once() {
        let parts = partition(103, 8);
        assert_eq!(parts.len(), 8);
        let mut next = 0;
        for p in &parts {
            assert_eq!(p.start, next);
            next = p.end;
        }
        assert_eq!(next, 103);
        let sizes: Vec<usize> = parts.iter().map(ExactSizeIterator::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_with_more_devices_than_items() {
        let parts = partition(3, 8);
        let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = partition(10, 0);
    }
}
