//! Simulated GPU device descriptions.
//!
//! One [`DeviceSpec`] per GPU generation used in the paper's evaluation
//! (Tesla K80 / Kepler, Tesla P100 / Pascal, Tesla V100 / Volta). Structural
//! parameters (SM count, shared-memory sizes, warp and transaction sizes)
//! come from the public datasheets; timing constants (latencies, reduction
//! rates, per-node compute cost) are calibrated so the simulated kernels
//! reproduce the *relative* effects the paper measures (reduction share,
//! coalescing sensitivity, bandwidth ratios across generations).

use serde::{Deserialize, Serialize};

/// GPU microarchitecture generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Tesla K80 generation.
    Kepler,
    /// Tesla P100 generation.
    Pascal,
    /// Tesla V100 generation.
    Volta,
}

/// Parameters of a simulated GPU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"Tesla P100"`.
    pub name: &'static str,
    /// Microarchitecture generation.
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA generation).
    pub warp_size: u32,
    /// Maximum threads per thread block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory available to one block (bytes).
    pub shared_mem_per_block: usize,
    /// Shared memory per SM (bytes) — bounds block residency.
    pub shared_mem_per_sm: usize,
    /// Global-memory transaction size (bytes); accesses within one
    /// transaction are coalesced.
    pub transaction_bytes: u64,
    /// Peak global-memory bandwidth (bytes per nanosecond = GB/s ÷ 1e0).
    pub gmem_bytes_per_ns: f64,
    /// Aggregate shared-memory bandwidth (bytes per nanosecond).
    pub smem_bytes_per_ns: f64,
    /// Global-memory access latency (ns) — the per-dependent-step cost on a
    /// warp's critical path.
    pub gmem_latency_ns: f64,
    /// Memory-level parallelism: independent loads a warp keeps in flight.
    /// Dependent (pointer-chase) accesses pay full latency per step;
    /// streaming accesses pay `latency / mlp` on the critical path.
    pub mlp: f64,
    /// Shared-memory access latency (ns).
    pub smem_latency_ns: f64,
    /// Compute cost of evaluating one decision node for a warp step (ns).
    pub node_eval_ns: f64,
    /// Block-wide reduction cost: ns per participating thread
    /// (the performance models' `B_rate`, Eq. 2).
    pub block_reduce_ns_per_thread: f64,
    /// Fixed block-wide reduction overhead per invocation (ns).
    pub block_reduce_base_ns: f64,
    /// Device-wide segmented reduction cost: ns per participating block
    /// (the performance models' `G_rate`, Eq. 3).
    pub global_reduce_ns_per_block: f64,
    /// Fixed device-wide reduction overhead per invocation (ns).
    pub global_reduce_base_ns: f64,
    /// Device DRAM capacity in bytes — bounds every simulated allocation
    /// (see `memory::DeviceMemory::for_device`).
    pub dram_bytes: u64,
}

impl DeviceSpec {
    /// Tesla K80 (one GK210 die), Kepler generation.
    #[must_use]
    pub fn tesla_k80() -> Self {
        Self {
            name: "Tesla K80",
            arch: Arch::Kepler,
            num_sms: 13,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 48 * 1024,
            transaction_bytes: 128,
            gmem_bytes_per_ns: 240.0,
            smem_bytes_per_ns: 1_300.0,
            gmem_latency_ns: 600.0,
            mlp: 6.0,
            smem_latency_ns: 42.0,
            node_eval_ns: 6.0,
            block_reduce_ns_per_thread: 42.0,
            block_reduce_base_ns: 2_600.0,
            global_reduce_ns_per_block: 110.0,
            global_reduce_base_ns: 2_800.0,
            dram_bytes: 12 << 30, // One GK210 die owns half the board's 24 GB.
        }
    }

    /// Tesla P100, Pascal generation.
    #[must_use]
    pub fn tesla_p100() -> Self {
        Self {
            name: "Tesla P100",
            arch: Arch::Pascal,
            num_sms: 56,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 64 * 1024,
            transaction_bytes: 128,
            gmem_bytes_per_ns: 732.0,
            smem_bytes_per_ns: 7_700.0,
            gmem_latency_ns: 320.0,
            mlp: 8.0,
            smem_latency_ns: 26.0,
            node_eval_ns: 2.8,
            block_reduce_ns_per_thread: 26.0,
            block_reduce_base_ns: 1_500.0,
            global_reduce_ns_per_block: 55.0,
            global_reduce_base_ns: 1_600.0,
            dram_bytes: 16 << 30,
        }
    }

    /// Tesla V100, Volta generation.
    #[must_use]
    pub fn tesla_v100() -> Self {
        Self {
            name: "Tesla V100",
            arch: Arch::Volta,
            num_sms: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_block: 96 * 1024,
            shared_mem_per_sm: 96 * 1024,
            transaction_bytes: 128,
            gmem_bytes_per_ns: 900.0,
            smem_bytes_per_ns: 13_800.0,
            gmem_latency_ns: 280.0,
            mlp: 10.0,
            smem_latency_ns: 22.0,
            node_eval_ns: 2.0,
            block_reduce_ns_per_thread: 20.0,
            block_reduce_base_ns: 1_200.0,
            global_reduce_ns_per_block: 45.0,
            global_reduce_base_ns: 1_300.0,
            dram_bytes: 16 << 30,
        }
    }

    /// The three devices of the paper's evaluation, in generation order.
    #[must_use]
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![Self::tesla_k80(), Self::tesla_p100(), Self::tesla_v100()]
    }

    /// An idealized device with effectively unbounded parallelism — the
    /// "infinite-SM" ablation of `DESIGN.md` §4.2.
    #[must_use]
    pub fn infinite_sms() -> Self {
        Self {
            name: "Infinite-SM",
            num_sms: 1_000_000,
            dram_bytes: 1 << 40,
            ..Self::tesla_v100()
        }
    }

    /// A copy of the spec running `slowdown`× slower than nominal: every
    /// latency and per-step cost scales up by `slowdown`, both bandwidths
    /// scale down by it — the coherent effect of a lower boost clock, so
    /// the roofline invariant is preserved. Capacities, geometry, and
    /// memory-level parallelism are silicon, not clocks, and are unchanged.
    ///
    /// Models the "silicon lottery": nominally identical boards in one
    /// chassis sustain slightly different clocks (binning, thermals). A
    /// multi-GPU cluster uses this to give replicated devices distinct but
    /// deterministic execution speeds.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown` is finite and >= 1 (a device cannot beat
    /// its own nominal calibration).
    #[must_use]
    pub fn downclocked(&self, slowdown: f64) -> Self {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "slowdown must be finite and >= 1, got {slowdown}"
        );
        Self {
            gmem_bytes_per_ns: self.gmem_bytes_per_ns / slowdown,
            smem_bytes_per_ns: self.smem_bytes_per_ns / slowdown,
            gmem_latency_ns: self.gmem_latency_ns * slowdown,
            smem_latency_ns: self.smem_latency_ns * slowdown,
            node_eval_ns: self.node_eval_ns * slowdown,
            block_reduce_ns_per_thread: self.block_reduce_ns_per_thread * slowdown,
            block_reduce_base_ns: self.block_reduce_base_ns * slowdown,
            global_reduce_ns_per_block: self.global_reduce_ns_per_block * slowdown,
            global_reduce_base_ns: self.global_reduce_base_ns * slowdown,
            ..self.clone()
        }
    }

    /// Per-SM share of global-memory bandwidth (bytes/ns).
    #[must_use]
    pub fn gmem_bytes_per_ns_per_sm(&self) -> f64 {
        self.gmem_bytes_per_ns / f64::from(self.num_sms)
    }

    /// Per-SM share of shared-memory bandwidth (bytes/ns).
    #[must_use]
    pub fn smem_bytes_per_ns_per_sm(&self) -> f64 {
        self.smem_bytes_per_ns / f64::from(self.num_sms)
    }

    /// Validates internal consistency; returns a description of the first
    /// violated invariant.
    ///
    /// # Errors
    ///
    /// Returns `Err` when a structural parameter is degenerate (zero sizes,
    /// shared memory per block exceeding per SM, non-positive rates,
    /// negative fixed overheads, a block size that is not a whole number of
    /// warps, or zero DRAM).
    pub fn validate(&self) -> Result<(), String> {
        if self.warp_size == 0 || self.num_sms == 0 {
            return Err(format!("{}: zero warp size or SM count", self.name));
        }
        if self.max_threads_per_block == 0
            || !self.max_threads_per_block.is_multiple_of(self.warp_size)
        {
            return Err(format!(
                "{}: max threads per block must be a positive multiple of the warp size",
                self.name
            ));
        }
        if self.dram_bytes == 0 {
            return Err(format!("{}: zero DRAM capacity", self.name));
        }
        if self.shared_mem_per_block > self.shared_mem_per_sm {
            return Err(format!(
                "{}: shared mem per block exceeds per-SM capacity",
                self.name
            ));
        }
        if self.transaction_bytes == 0 || !self.transaction_bytes.is_power_of_two() {
            return Err(format!("{}: transaction size must be a power of two", self.name));
        }
        let positive = [
            self.mlp,
            self.gmem_bytes_per_ns,
            self.smem_bytes_per_ns,
            self.gmem_latency_ns,
            self.smem_latency_ns,
            self.node_eval_ns,
            self.block_reduce_ns_per_thread,
            self.global_reduce_ns_per_block,
        ];
        if positive.iter().any(|&v| v <= 0.0) {
            return Err(format!("{}: non-positive timing constant", self.name));
        }
        // Fixed overheads may be zero (an idealized device) but never
        // negative — a negative base would let big launches go back in time.
        if self.block_reduce_base_ns < 0.0 || self.global_reduce_base_ns < 0.0 {
            return Err(format!("{}: negative reduction base overhead", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_devices_are_valid_and_ordered() {
        let devs = DeviceSpec::paper_devices();
        assert_eq!(devs.len(), 3);
        for d in &devs {
            d.validate().unwrap();
        }
        // Bandwidth and latency must improve across generations.
        assert!(devs[0].gmem_bytes_per_ns < devs[1].gmem_bytes_per_ns);
        assert!(devs[1].gmem_bytes_per_ns < devs[2].gmem_bytes_per_ns);
        assert!(devs[0].gmem_latency_ns > devs[2].gmem_latency_ns);
    }

    #[test]
    fn per_sm_bandwidth_divides_total() {
        let d = DeviceSpec::tesla_p100();
        let per_sm = d.gmem_bytes_per_ns_per_sm();
        assert!((per_sm * f64::from(d.num_sms) - d.gmem_bytes_per_ns).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut d = DeviceSpec::tesla_k80();
        d.shared_mem_per_block = d.shared_mem_per_sm + 1;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.transaction_bytes = 100;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.node_eval_ns = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.block_reduce_base_ns = -1.0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.global_reduce_base_ns = -0.5;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.max_threads_per_block = 1000; // Not a multiple of 32.
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_k80();
        d.dram_bytes = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn zero_reduce_base_is_allowed() {
        let mut d = DeviceSpec::tesla_v100();
        d.block_reduce_base_ns = 0.0;
        d.global_reduce_base_ns = 0.0;
        d.validate().unwrap();
    }

    #[test]
    fn paper_devices_have_datasheet_dram() {
        assert_eq!(DeviceSpec::tesla_k80().dram_bytes, 12 << 30);
        assert_eq!(DeviceSpec::tesla_p100().dram_bytes, 16 << 30);
        assert_eq!(DeviceSpec::tesla_v100().dram_bytes, 16 << 30);
        assert!(DeviceSpec::infinite_sms().dram_bytes > 16 << 30);
    }

    #[test]
    fn infinite_sm_device_is_valid() {
        DeviceSpec::infinite_sms().validate().unwrap();
    }

    #[test]
    fn shared_memory_grows_with_generation() {
        let devs = DeviceSpec::paper_devices();
        assert!(devs[2].shared_mem_per_block > devs[0].shared_mem_per_block);
    }

    #[test]
    fn downclocked_scales_times_up_and_bandwidth_down() {
        let base = DeviceSpec::tesla_v100();
        let slow = base.downclocked(1.01);
        slow.validate().unwrap();
        assert!(slow.gmem_latency_ns > base.gmem_latency_ns);
        assert!(slow.node_eval_ns > base.node_eval_ns);
        assert!(slow.gmem_bytes_per_ns < base.gmem_bytes_per_ns);
        assert!(slow.smem_bytes_per_ns < base.smem_bytes_per_ns);
        // Silicon (capacity/geometry) is untouched by a clock change.
        assert_eq!(slow.num_sms, base.num_sms);
        assert_eq!(slow.dram_bytes, base.dram_bytes);
        assert_eq!(slow.mlp.to_bits(), base.mlp.to_bits());
        // Unit slowdown is the identity.
        assert_eq!(base.downclocked(1.0), base);
    }

    #[test]
    #[should_panic(expected = "slowdown must be finite and >= 1")]
    fn overclocking_is_rejected() {
        let _ = DeviceSpec::tesla_v100().downclocked(0.99);
    }
}
