//! Functional reductions (the numeric side of cub's primitives).
//!
//! Costs are modelled in [`crate::block::BlockSim::block_reduce`] and
//! [`crate::kernel::KernelSim::global_reduce`]; this module computes the
//! actual values with the same operation *order* as a tree reduction, so
//! engine outputs can be compared against a CPU reference with a small,
//! well-understood floating-point tolerance.

/// Tree-shaped (pairwise) sum — the order cub::BlockReduce uses.
#[must_use]
pub fn block_reduce_sum(values: &[f32]) -> f32 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let mid = n / 2;
            block_reduce_sum(&values[..mid]) + block_reduce_sum(&values[mid..])
        }
    }
}

/// Segmented sum: reduces each segment independently
/// (cub::DeviceSegmentedReduce).
///
/// # Panics
///
/// Panics if `values.len()` is not a multiple of `segment_len`, or
/// `segment_len` is zero.
#[must_use]
pub fn segmented_sum(values: &[f32], segment_len: usize) -> Vec<f32> {
    assert!(segment_len > 0, "segment length must be positive");
    assert_eq!(
        values.len() % segment_len,
        0,
        "values must divide into whole segments"
    );
    values
        .chunks_exact(segment_len)
        .map(block_reduce_sum)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential_for_exact_values() {
        let v: Vec<f32> = (1..=64).map(|i| i as f32).collect();
        assert_eq!(block_reduce_sum(&v), 64.0 * 65.0 / 2.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(block_reduce_sum(&[]), 0.0);
        assert_eq!(block_reduce_sum(&[3.5]), 3.5);
    }

    #[test]
    fn segmented_reduces_each_segment() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(segmented_sum(&v, 3), vec![6.0, 15.0]);
        assert_eq!(segmented_sum(&v, 2), vec![3.0, 7.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "whole segments")]
    fn ragged_segments_panic() {
        let _ = segmented_sum(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn pairwise_is_close_to_sequential_for_floats() {
        let v: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let seq: f32 = v.iter().sum();
        let tree = block_reduce_sum(&v);
        assert!((seq - tree).abs() < 1e-3, "seq {seq} vs tree {tree}");
    }
}
