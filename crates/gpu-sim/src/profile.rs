//! Per-kernel profiler: Nsight-style launch reports, log-bucketed latency
//! histograms, and model-vs-simulator drift records (DESIGN.md §2.10).
//!
//! The telemetry layer exposes *global* counters and raw spans; this module
//! adds the per-launch view the paper's evidence is built on — one
//! [`KernelProfile`] per simulated launch with occupancy, coalescing,
//! warp-execution efficiency, a wall-time breakdown, and roofline
//! utilization. Profiles accumulate in the [`TelemetrySink`] next to the
//! counters and export as [`TelemetrySink::profiles_json`] (the
//! `--profile <path>` payload).
//!
//! # Determinism
//!
//! Profiles and histogram samples are recorded only from
//! `KernelSim::finish` (and, for serving latencies, the serving simulator's
//! caller thread) *after* the plan-order merge — worker threads never touch
//! the profile store. Histogram bucket edges are fixed powers of two
//! computed from integer bit positions, so the export is byte-identical at
//! any `TAHOE_SIM_THREADS` (pinned by `tests/determinism.rs`).

use serde::{Deserialize, Serialize};

use crate::coalesce::AccessStats;
use crate::device::DeviceSpec;
use crate::telemetry::TelemetrySink;

/// Which hardware bound capped block residency for a launch.
///
/// The simulator does not model register pressure, so the paper's
/// register-limited case surfaces as [`OccupancyLimiter::Threads`]
/// (documented deviation, DESIGN.md §2.10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// Per-SM resident-thread capacity.
    Threads,
    /// Per-SM block-slot count.
    BlockSlots,
    /// Per-SM shared-memory capacity.
    SharedMem,
    /// The grid is smaller than the device's concurrent capacity.
    Grid,
}

impl OccupancyLimiter {
    /// Short lowercase label for tables and the CLI.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OccupancyLimiter::Threads => "threads",
            OccupancyLimiter::BlockSlots => "block-slots",
            OccupancyLimiter::SharedMem => "smem",
            OccupancyLimiter::Grid => "grid",
        }
    }
}

/// Wall-time attribution of one launch. The five components sum to the
/// launch's `total_ns` by construction (see [`KernelProfile::from_launch`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Latency-path time attributed to dependent tree traversal (ns).
    pub traversal_ns: f64,
    /// Latency-path time attributed to streamed staging loops (ns).
    pub staging_ns: f64,
    /// Block-wide reduction time across all waves (ns).
    pub block_reduction_ns: f64,
    /// Device-wide segmented-reduction time (ns).
    pub global_reduction_ns: f64,
    /// Extra wall time where a device-wide bandwidth roofline (or the
    /// slowest block) exceeded the wave-scheduled latency bound (ns).
    pub bandwidth_stall_ns: f64,
}

impl TimeBreakdown {
    /// Sum of all components — equals the launch's `total_ns`.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.traversal_ns
            + self.staging_ns
            + self.block_reduction_ns
            + self.global_reduction_ns
            + self.bandwidth_stall_ns
    }
}

/// One simulated launch's profiler report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel label (the strategy name for engine launches).
    pub label: String,
    /// Device the launch ran on.
    pub device: String,
    /// Grid size in blocks.
    pub grid_blocks: u64,
    /// Block size in threads.
    pub threads_per_block: u64,
    /// Static shared memory per block (bytes).
    pub smem_per_block: u64,
    /// Total device-image bytes per forest node for this launch (the sum of
    /// every lane's entry width); 0 when the launch has no forest image.
    pub node_bytes: u64,
    /// Blocks simulated in detail.
    pub sampled_blocks: u64,
    /// Planned blocks replayed from the launch's memo cache
    /// (DESIGN.md §2.12); 0 on the unkeyed path or with memoization off.
    pub memo_hits: u64,
    /// Planned blocks the keyed path simulated in detail (memo misses).
    pub memo_misses: u64,
    /// `memo_hits / (memo_hits + memo_misses)` in `[0, 1]`; 0 when the
    /// launch never went through the keyed path.
    pub memo_hit_rate: f64,
    /// Occupancy-limited concurrent blocks on the device.
    pub concurrent_blocks: u64,
    /// Scheduling waves (`ceil(grid / concurrent)`).
    pub waves: u64,
    /// Resident threads over the device's thread capacity, in `[0, 1]`.
    pub achieved_occupancy: f64,
    /// Which bound capped residency.
    pub occupancy_limiter: OccupancyLimiter,
    /// Active lane-steps over total lane-steps, in `[0, 1]`; the complement
    /// is divergence-stall idle time.
    pub warp_exec_efficiency: f64,
    /// Extrapolated bytes the warp lanes asked for.
    pub gmem_requested_bytes: u64,
    /// Extrapolated bytes the memory system moved.
    pub gmem_fetched_bytes: u64,
    /// Extrapolated global-memory transactions.
    pub gmem_transactions: u64,
    /// `requested / fetched` (1.0 when nothing was fetched).
    pub gmem_coalescing_efficiency: f64,
    /// Mean transactions per warp-level request (0 without requests).
    pub transactions_per_request: f64,
    /// Extrapolated shared-memory bytes moved.
    pub smem_fetched_bytes: u64,
    /// Simulated wall-clock time of the launch (ns).
    pub total_ns: f64,
    /// Where the wall time went; components sum to `total_ns`.
    pub breakdown: TimeBreakdown,
    /// Achieved global-memory throughput over the device peak, in `[0, 1]`.
    pub roofline_utilization: f64,
}

/// Raw quantities of one finished launch, handed over by
/// `KernelSim::finish` after the plan-order merge.
pub struct LaunchStats<'a> {
    /// Device the kernel ran on.
    pub device: &'a DeviceSpec,
    /// Kernel label.
    pub label: &'a str,
    /// Grid size in blocks.
    pub grid_blocks: usize,
    /// Block size in threads.
    pub threads_per_block: usize,
    /// Static shared memory per block (bytes).
    pub smem_per_block: usize,
    /// Device-image bytes per forest node (0 when not applicable).
    pub node_bytes: u64,
    /// Blocks simulated in detail.
    pub sampled_blocks: usize,
    /// Planned blocks replayed from the launch's memo cache.
    pub memo_hits: u64,
    /// Planned blocks the keyed path simulated in detail.
    pub memo_misses: u64,
    /// Occupancy-limited concurrent blocks.
    pub concurrent_blocks: usize,
    /// Scheduling waves.
    pub waves: usize,
    /// Extrapolated global-memory statistics.
    pub gmem: &'a AccessStats,
    /// Extrapolated shared-memory statistics.
    pub smem: &'a AccessStats,
    /// Lockstep steps over sampled blocks.
    pub steps: u64,
    /// Active lanes summed over those steps.
    pub active_lane_steps: u64,
    /// Wave-scheduled latency bound (`waves × mean block wall`, ns).
    pub latency_bound_ns: f64,
    /// Block-reduction wall time (`waves × mean block reduction`, ns).
    pub block_reduction_ns: f64,
    /// Scheduled kernel time before global reductions (ns).
    pub scheduled_ns: f64,
    /// Device-wide reduction time (ns).
    pub global_reduction_ns: f64,
    /// Streamed-read serial time summed over sampled warps (ns).
    pub streamed_serial_ns: f64,
    /// Total serial time summed over sampled warps (ns).
    pub total_serial_ns: f64,
}

impl KernelProfile {
    /// Derives the profiler metrics from one launch's raw quantities.
    ///
    /// Attribution rules (DESIGN.md §2.10): block reductions take
    /// `waves × mean reduction` off the latency bound; the remainder splits
    /// between staging and traversal proportionally to the sampled warps'
    /// streamed vs. dependent serial time; any scheduled time beyond the
    /// latency bound is a bandwidth stall; global reductions are exact. The
    /// five components therefore sum to `total_ns` by construction.
    #[must_use]
    pub fn from_launch(s: &LaunchStats<'_>) -> Self {
        let d = s.device;
        let resident = s.concurrent_blocks.min(s.grid_blocks).max(1);
        let thread_capacity = (u64::from(d.num_sms) * u64::from(d.max_threads_per_sm)) as f64;
        let achieved_occupancy =
            ((resident * s.threads_per_block) as f64 / thread_capacity).min(1.0);

        // Re-derive the per-SM residency bounds (same arithmetic as
        // `occupancy::concurrent_blocks`) and name the binding one.
        let by_threads = d.max_threads_per_sm as usize / s.threads_per_block.max(1);
        let by_slots = d.max_blocks_per_sm as usize;
        let by_smem = d
            .shared_mem_per_sm
            .checked_div(s.smem_per_block)
            .unwrap_or(usize::MAX);
        let occupancy_limiter = if s.grid_blocks < s.concurrent_blocks {
            OccupancyLimiter::Grid
        } else if by_threads <= by_slots && by_threads <= by_smem {
            OccupancyLimiter::Threads
        } else if by_smem <= by_slots {
            OccupancyLimiter::SharedMem
        } else {
            OccupancyLimiter::BlockSlots
        };

        let warp_exec_efficiency = if s.steps == 0 {
            1.0
        } else {
            s.active_lane_steps as f64 / (s.steps * u64::from(d.warp_size)) as f64
        };

        let transactions_per_request = if s.gmem.steps == 0 {
            0.0
        } else {
            s.gmem.transactions as f64 / s.gmem.steps as f64
        };

        // Wall-time attribution; see the method docs for the rules.
        let compute_ns = (s.latency_bound_ns - s.block_reduction_ns).max(0.0);
        let staging_frac = if s.total_serial_ns > 0.0 {
            (s.streamed_serial_ns / s.total_serial_ns).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let staging_ns = compute_ns * staging_frac;
        let breakdown = TimeBreakdown {
            traversal_ns: compute_ns - staging_ns,
            staging_ns,
            block_reduction_ns: s.block_reduction_ns,
            global_reduction_ns: s.global_reduction_ns,
            bandwidth_stall_ns: (s.scheduled_ns - s.latency_bound_ns).max(0.0),
        };

        let total_ns = s.scheduled_ns + s.global_reduction_ns;
        let roofline_utilization = if total_ns > 0.0 {
            (s.gmem.fetched_bytes as f64 / total_ns / d.gmem_bytes_per_ns).min(1.0)
        } else {
            0.0
        };

        let memo_keyed = s.memo_hits + s.memo_misses;
        let memo_hit_rate = if memo_keyed == 0 {
            0.0
        } else {
            s.memo_hits as f64 / memo_keyed as f64
        };

        KernelProfile {
            label: s.label.to_string(),
            device: d.name.to_string(),
            grid_blocks: s.grid_blocks as u64,
            threads_per_block: s.threads_per_block as u64,
            smem_per_block: s.smem_per_block as u64,
            node_bytes: s.node_bytes,
            sampled_blocks: s.sampled_blocks as u64,
            memo_hits: s.memo_hits,
            memo_misses: s.memo_misses,
            memo_hit_rate,
            concurrent_blocks: s.concurrent_blocks as u64,
            waves: s.waves as u64,
            achieved_occupancy,
            occupancy_limiter,
            warp_exec_efficiency,
            gmem_requested_bytes: s.gmem.requested_bytes,
            gmem_fetched_bytes: s.gmem.fetched_bytes,
            gmem_transactions: s.gmem.transactions,
            gmem_coalescing_efficiency: s.gmem.efficiency(),
            transactions_per_request,
            smem_fetched_bytes: s.smem.fetched_bytes,
            total_ns,
            breakdown,
            roofline_utilization,
        }
    }
}

/// Number of histogram buckets: one zero bucket plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Log-bucketed (HDR-style) latency histogram over nanosecond samples.
///
/// Bucket 0 holds zero-duration samples; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)` ns, with everything from `2^62` up merged into the last
/// bucket. Edges come from integer bit positions — no floating-point
/// arithmetic — so two runs recording the same samples produce identical
/// buckets regardless of worker count or platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Bucket index of a rounded-nanosecond sample.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// `[lo, hi)` edge of bucket `i` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 1)
        } else if i == HISTOGRAM_BUCKETS - 1 {
            (1 << (i - 1), u64::MAX)
        } else {
            (1 << (i - 1), 1 << i)
        }
    }

    /// Records one sample. Non-finite and negative durations clamp to zero.
    pub fn record(&mut self, ns: f64) {
        let v = if ns.is_finite() && ns > 0.0 {
            ns.round() as u64 // saturating cast
        } else {
            0
        };
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(v);
        self.min_ns = self.min_ns.min(v);
        self.max_ns = self.max_ns.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one. Bucket edges are fixed, so
    /// merging is a plain element-wise sum — used when a cluster absorbs a
    /// device sink's histograms into the cluster-wide store.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Flat export (non-empty buckets only).
    #[must_use]
    pub fn export(&self) -> HistogramExport {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo_ns, hi_ns) = Self::bucket_bounds(i);
                HistogramBucket { lo_ns, hi_ns, count: c }
            })
            .collect();
        HistogramExport {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            buckets,
        }
    }
}

/// One non-empty histogram bucket: `count` samples in `[lo_ns, hi_ns)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower edge (ns).
    pub lo_ns: u64,
    /// Exclusive upper edge (ns).
    pub hi_ns: u64,
    /// Samples in this bucket.
    pub count: u64,
}

/// Serialized histogram: summary statistics plus the non-empty buckets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramExport {
    /// Total samples.
    pub count: u64,
    /// Sum of rounded samples (ns); `sum_ns / count` is the mean.
    pub sum_ns: u64,
    /// Smallest rounded sample (0 when empty).
    pub min_ns: u64,
    /// Largest rounded sample.
    pub max_ns: u64,
    /// Non-empty buckets in ascending edge order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramExport {
    /// Mean sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket containing quantile `q` (clamped to
    /// `[0, 1]`); 0 when empty. Bucket-resolution approximation — fine for
    /// "p99 is in the 2–4 µs bucket" style reporting.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.hi_ns;
            }
        }
        self.max_ns
    }
}

/// Model-vs-simulator drift for one launch: the §5/§6 performance model's
/// predicted batch cost against the simulated kernel time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftRecord {
    /// Strategy the engine ran.
    pub strategy: String,
    /// Samples in the batch.
    pub n_samples: u64,
    /// Model-predicted batch cost (ns).
    pub predicted_ns: f64,
    /// Simulated kernel time (ns).
    pub simulated_ns: f64,
    /// `(predicted − simulated) / simulated` (0 when simulated is 0).
    pub relative_error: f64,
}

impl DriftRecord {
    /// Builds a record, deriving the relative error.
    #[must_use]
    pub fn new(strategy: &str, n_samples: usize, predicted_ns: f64, simulated_ns: f64) -> Self {
        let relative_error = if simulated_ns > 0.0 {
            (predicted_ns - simulated_ns) / simulated_ns
        } else {
            0.0
        };
        DriftRecord {
            strategy: strategy.to_string(),
            n_samples: n_samples as u64,
            predicted_ns,
            simulated_ns,
            relative_error,
        }
    }
}

/// Profile state shared behind a recording sink (one per
/// `telemetry::SinkInner`).
#[derive(Debug, Default)]
pub struct ProfileStore {
    kernels: Vec<KernelProfile>,
    kernel_durations: LatencyHistogram,
    serving_latencies: LatencyHistogram,
    drift: Vec<DriftRecord>,
}

impl ProfileStore {
    /// Appends another store's launch-ordered records and folds its
    /// histograms in. Callers (the cluster absorb path) must invoke this in
    /// device-index order so the merged export is deterministic.
    pub(crate) fn merge_from(&mut self, mut other: ProfileStore) {
        self.kernels.append(&mut other.kernels);
        self.kernel_durations.merge(&other.kernel_durations);
        self.serving_latencies.merge(&other.serving_latencies);
        self.drift.append(&mut other.drift);
    }

    fn export(&self) -> ProfilesExport {
        ProfilesExport {
            kernels: self.kernels.clone(),
            kernel_durations: self.kernel_durations.export(),
            serving_latencies: self.serving_latencies.export(),
            drift: self.drift.clone(),
        }
    }
}

/// The full profiler export — the `--profile <path>` payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfilesExport {
    /// One profile per traced launch, in launch order.
    pub kernels: Vec<KernelProfile>,
    /// Histogram of traced kernel durations.
    pub kernel_durations: HistogramExport,
    /// Histogram of serving request latencies.
    pub serving_latencies: HistogramExport,
    /// Model-vs-simulator drift records, in launch order.
    pub drift: Vec<DriftRecord>,
}

impl ProfilesExport {
    /// Parses an export previously written by
    /// [`TelemetrySink::profiles_json`] (e.g. a `--profile <path>` file).
    ///
    /// # Errors
    ///
    /// Returns the deserialization error message when `text` is not a valid
    /// profiler export.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl TelemetrySink {
    /// Records one launch profile (and its duration histogram sample).
    /// No-op when disabled. Called only from `KernelSim::finish`, after the
    /// plan-order merge.
    pub fn push_kernel_profile(&self, profile: KernelProfile) {
        if let TelemetrySink::Recording(inner) = self {
            let mut store = inner.profiles.lock();
            store.kernel_durations.record(profile.total_ns);
            store.kernels.push(profile);
        }
    }

    /// Records serving request latencies into the serving histogram.
    pub fn record_serving_latencies(&self, latencies_ns: &[f64]) {
        if let TelemetrySink::Recording(inner) = self {
            let mut store = inner.profiles.lock();
            for &ns in latencies_ns {
                store.serving_latencies.record(ns);
            }
        }
    }

    /// Records one model-vs-simulator drift observation.
    pub fn push_drift(&self, record: DriftRecord) {
        if let TelemetrySink::Recording(inner) = self {
            inner.profiles.lock().drift.push(record);
        }
    }

    /// Snapshot of the recorded profiles (empty when disabled).
    #[must_use]
    pub fn profiles(&self) -> ProfilesExport {
        match self {
            TelemetrySink::Disabled => ProfileStore::default().export(),
            TelemetrySink::Recording(inner) => inner.profiles.lock().export(),
        }
    }

    /// The profiler export as pretty JSON (the `--profile <path>` payload).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the export is plain data that always
    /// serializes.
    #[must_use]
    pub fn profiles_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(&self.profiles()).expect("profiles serialize");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats<'a>(
        device: &'a DeviceSpec,
        gmem: &'a AccessStats,
        smem: &'a AccessStats,
    ) -> LaunchStats<'a> {
        LaunchStats {
            device,
            label: "test",
            grid_blocks: 100,
            threads_per_block: 256,
            smem_per_block: 0,
            node_bytes: 0,
            sampled_blocks: 10,
            memo_hits: 0,
            memo_misses: 0,
            concurrent_blocks: 448,
            waves: 1,
            gmem,
            smem,
            steps: 100,
            active_lane_steps: 3200,
            latency_bound_ns: 10_000.0,
            block_reduction_ns: 1_000.0,
            scheduled_ns: 12_000.0,
            global_reduction_ns: 500.0,
            streamed_serial_ns: 3_000.0,
            total_serial_ns: 9_000.0,
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let d = DeviceSpec::tesla_p100();
        let gmem = AccessStats {
            requested_bytes: 1_000,
            fetched_bytes: 2_000,
            transactions: 16,
            steps: 8,
        };
        let smem = AccessStats::default();
        let p = KernelProfile::from_launch(&stats(&d, &gmem, &smem));
        assert!((p.breakdown.total_ns() - p.total_ns).abs() < 1e-9 * p.total_ns);
        // latency bound 10k: 1k block reduce, 9k compute split 1:2
        // staged:traversal, 2k bandwidth stall past the bound, 500 global.
        assert!((p.breakdown.block_reduction_ns - 1_000.0).abs() < 1e-9);
        assert!((p.breakdown.staging_ns - 3_000.0).abs() < 1e-9);
        assert!((p.breakdown.traversal_ns - 6_000.0).abs() < 1e-9);
        assert!((p.breakdown.bandwidth_stall_ns - 2_000.0).abs() < 1e-9);
        assert!((p.breakdown.global_reduction_ns - 500.0).abs() < 1e-9);
        assert!((p.gmem_coalescing_efficiency - 0.5).abs() < 1e-12);
        assert!((p.transactions_per_request - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_launches_produce_finite_metrics() {
        let d = DeviceSpec::tesla_p100();
        let gmem = AccessStats::default();
        let smem = AccessStats::default();
        let mut s = stats(&d, &gmem, &smem);
        s.steps = 0;
        s.active_lane_steps = 0;
        s.latency_bound_ns = 0.0;
        s.block_reduction_ns = 0.0;
        s.scheduled_ns = 0.0;
        s.global_reduction_ns = 0.0;
        s.streamed_serial_ns = 0.0;
        s.total_serial_ns = 0.0;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.warp_exec_efficiency, 1.0);
        assert_eq!(p.gmem_coalescing_efficiency, 1.0);
        assert_eq!(p.transactions_per_request, 0.0);
        assert_eq!(p.roofline_utilization, 0.0);
        assert_eq!(p.breakdown.total_ns(), 0.0);
        assert!(p.achieved_occupancy.is_finite());
    }

    #[test]
    fn occupancy_limiter_names_the_binding_bound() {
        let d = DeviceSpec::tesla_p100(); // 2048 thr/SM, 32 slots, 64 KiB/SM.
        let gmem = AccessStats::default();
        let smem = AccessStats::default();
        // 256-thread blocks: 8 by threads < 32 slots → threads-limited.
        let mut s = stats(&d, &gmem, &smem);
        s.grid_blocks = 100_000;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.occupancy_limiter, OccupancyLimiter::Threads);
        // 40 KiB smem: 1 block/SM by smem → smem-limited.
        s.smem_per_block = 40 * 1024;
        s.concurrent_blocks = 56;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.occupancy_limiter, OccupancyLimiter::SharedMem);
        // 32-thread blocks, no smem: 64 by threads > 32 slots → slot-limited.
        s.smem_per_block = 0;
        s.threads_per_block = 32;
        s.concurrent_blocks = 32 * 56;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.occupancy_limiter, OccupancyLimiter::BlockSlots);
        // Grid smaller than capacity → grid-limited.
        s.grid_blocks = 10;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.occupancy_limiter, OccupancyLimiter::Grid);
    }

    #[test]
    fn memo_hit_rate_follows_the_counters() {
        let d = DeviceSpec::tesla_p100();
        let gmem = AccessStats::default();
        let smem = AccessStats::default();
        let mut s = stats(&d, &gmem, &smem);
        // Unkeyed launch: no memo traffic, rate pinned to 0 (not NaN).
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.memo_hit_rate, 0.0);
        s.memo_hits = 30;
        s.memo_misses = 10;
        let p = KernelProfile::from_launch(&s);
        assert_eq!(p.memo_hits, 30);
        assert_eq!(p.memo_misses, 10);
        assert!((p.memo_hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(lo, 1 << (i - 1));
            assert_eq!(hi, 2 * lo);
            assert_eq!(LatencyHistogram::bucket_index(lo), i);
            assert_eq!(LatencyHistogram::bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn histogram_records_and_exports() {
        let mut h = LatencyHistogram::default();
        for ns in [0.0, 1.0, 3.0, 3.4, 1000.0, f64::NAN, -5.0] {
            h.record(ns);
        }
        let e = h.export();
        assert_eq!(e.count, 7);
        assert_eq!(e.min_ns, 0);
        assert_eq!(e.max_ns, 1000);
        // 0, NaN and -5 clamp to the zero bucket; 3.0 and 3.4 share [2, 4).
        assert_eq!(e.buckets.len(), 4);
        assert_eq!(e.buckets[0], HistogramBucket { lo_ns: 0, hi_ns: 1, count: 3 });
        assert_eq!(e.buckets[1], HistogramBucket { lo_ns: 1, hi_ns: 2, count: 1 });
        assert_eq!(e.buckets[2], HistogramBucket { lo_ns: 2, hi_ns: 4, count: 2 });
        assert_eq!(e.buckets[3], HistogramBucket { lo_ns: 512, hi_ns: 1024, count: 1 });
        assert_eq!(e.buckets.iter().map(|b| b.count).sum::<u64>(), e.count);
        assert!((e.mean_ns() - (1 + 3 + 3 + 1000) as f64 / 7.0).abs() < 1e-12);
        assert_eq!(e.quantile_upper_ns(0.0), 1);
        assert_eq!(e.quantile_upper_ns(0.5), 2);
        assert_eq!(e.quantile_upper_ns(1.0), 1024);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut combined = LatencyHistogram::default();
        for ns in [0.0, 5.0, 100.0] {
            a.record(ns);
            combined.record(ns);
        }
        for ns in [2.0, 1_000_000.0] {
            b.record(ns);
            combined.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging an empty histogram is a no-op, even on the min field.
        let before = a.clone();
        a.merge(&LatencyHistogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn empty_histogram_exports_cleanly() {
        let e = LatencyHistogram::default().export();
        assert_eq!(e.count, 0);
        assert_eq!(e.min_ns, 0);
        assert_eq!(e.max_ns, 0);
        assert!(e.buckets.is_empty());
        assert_eq!(e.mean_ns(), 0.0);
        assert_eq!(e.quantile_upper_ns(0.99), 0);
    }

    #[test]
    fn drift_record_derives_relative_error() {
        let r = DriftRecord::new("direct", 100, 1_500.0, 1_000.0);
        assert!((r.relative_error - 0.5).abs() < 1e-12);
        let zero = DriftRecord::new("direct", 100, 1_500.0, 0.0);
        assert_eq!(zero.relative_error, 0.0);
    }

    #[test]
    fn disabled_sink_stores_no_profiles() {
        let sink = TelemetrySink::Disabled;
        sink.push_kernel_profile(KernelProfile::from_launch(&stats(
            &DeviceSpec::tesla_p100(),
            &AccessStats::default(),
            &AccessStats::default(),
        )));
        sink.push_drift(DriftRecord::new("direct", 1, 1.0, 1.0));
        sink.record_serving_latencies(&[1.0, 2.0]);
        let e = sink.profiles();
        assert!(e.kernels.is_empty());
        assert!(e.drift.is_empty());
        assert_eq!(e.serving_latencies.count, 0);
    }

    #[test]
    fn recording_sink_accumulates_and_round_trips() {
        let sink = TelemetrySink::recording();
        let d = DeviceSpec::tesla_p100();
        let gmem = AccessStats {
            requested_bytes: 100,
            fetched_bytes: 200,
            transactions: 4,
            steps: 2,
        };
        let smem = AccessStats::default();
        sink.push_kernel_profile(KernelProfile::from_launch(&stats(&d, &gmem, &smem)));
        sink.push_drift(DriftRecord::new("shared data", 64, 900.0, 1_000.0));
        sink.record_serving_latencies(&[10.0, 20.0, 30.0]);
        let e = sink.profiles();
        assert_eq!(e.kernels.len(), 1);
        assert_eq!(e.kernel_durations.count, 1);
        assert_eq!(e.serving_latencies.count, 3);
        assert_eq!(e.drift.len(), 1);
        let text = sink.profiles_json();
        let back: ProfilesExport = serde_json::from_str(&text).expect("export parses");
        assert_eq!(back, e, "round-trip must be lossless");
    }
}
