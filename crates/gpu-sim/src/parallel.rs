//! Host-side parallelism for simulation workloads.
//!
//! Simulating sampled blocks (and whole per-dataset experiments) is
//! embarrassingly parallel; this module provides a dependency-light parallel
//! map built on crossbeam's scoped threads with a shared atomic work index,
//! so callers get order-preserving results without any unsafe code.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item index in `0..n`, in parallel, returning results
/// in index order.
///
/// Uses up to `available_parallelism` worker threads (capped at `n`). Falls
/// back to sequential execution for tiny inputs where thread spawn overhead
/// dominates.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    const SEQUENTIAL_CUTOFF: usize = 4;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if n <= SEQUENTIAL_CUTOFF || workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *results[i].lock() = Some(value);
            });
        }
    })
    .expect("simulation worker panicked");
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index is produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn heavy_closure_parallelizes_correctly() {
        let out = parallel_map(64, |i| {
            // Small busy work so threads actually interleave.
            let mut acc = 0u64;
            for k in 0..10_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }
}
