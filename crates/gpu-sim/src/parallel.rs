//! Host-side parallelism for simulation workloads.
//!
//! Simulating sampled blocks (and whole per-dataset experiments) is
//! embarrassingly parallel; this module provides a dependency-light parallel
//! map built on crossbeam's scoped threads, so callers get order-preserving
//! results without any unsafe code.
//!
//! Worker count resolves, in priority order: the programmatic override set
//! via [`set_sim_threads`], the `TAHOE_SIM_THREADS` environment variable,
//! then `available_parallelism`. Results are merged in index order no matter
//! how many workers ran, so anything built on [`parallel_map`] — in
//! particular [`crate::kernel::KernelSim::simulate_blocks`] — is bit-identical
//! between a 1-thread and an N-thread run.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide programmatic worker override (0 = none; falls through to
/// `TAHOE_SIM_THREADS`, then `available_parallelism`).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by [`parallel_map`] process-wide.
///
/// `Some(n)` forces `n` workers (clamped to at least 1); `None` restores the
/// default resolution (`TAHOE_SIM_THREADS`, then `available_parallelism`).
/// Used by the determinism tests and the `host_perf` benchmark to compare a
/// forced 1-thread run against a multi-worker run in one process.
pub fn set_sim_threads(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.map_or(0, |w| w.max(1)), Ordering::SeqCst);
}

/// Worker threads [`parallel_map`] uses for an `n`-item job.
#[must_use]
pub fn sim_threads(n: usize) -> usize {
    let configured = match WORKER_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }),
        w => w,
    };
    configured.min(n).max(1)
}

/// `TAHOE_SIM_THREADS`, when set to a positive integer. Unparseable values
/// (e.g. `two`, `-1`) warn once to stderr instead of being silently
/// swallowed, then fall through to `available_parallelism`.
fn env_threads() -> Option<usize> {
    let raw = std::env::var("TAHOE_SIM_THREADS").ok()?;
    match parse_worker_env(&raw) {
        Ok(v) => v,
        Err(()) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid TAHOE_SIM_THREADS={raw:?}: \
                     expected a non-negative integer; using host parallelism"
                );
            });
            None
        }
    }
}

/// Parses a `TAHOE_SIM_THREADS` value: `Ok(Some(n))` for a positive integer,
/// `Ok(None)` for "unset", `Err(())` for anything unparseable. Empty,
/// whitespace-only, and `0` all mean "unset" by design — `0` is "no
/// override", not "no workers", so wrapper scripts can clear the variable by
/// value without unsetting it.
fn parse_worker_env(raw: &str) -> Result<Option<usize>, ()> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    match t.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(()),
    }
}

/// Applies `f` to every item index in `0..n`, in parallel, returning results
/// in index order.
///
/// Workers claim *chunks* of consecutive indices from a shared atomic cursor
/// and accumulate `(index, value)` pairs privately, so there is no per-item
/// lock contention; the chunks are stitched back into index order after the
/// scope joins. Falls back to sequential execution for tiny inputs where
/// thread spawn overhead dominates.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    const SEQUENTIAL_CUTOFF: usize = 4;
    let workers = sim_threads(n);
    if workers <= 1 || n <= SEQUENTIAL_CUTOFF {
        return (0..n).map(f).collect();
    }
    // ~4 claims per worker balances cursor traffic against load imbalance
    // from uneven item costs.
    let chunk = (n / (workers * 4)).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            produced.push((i, f(i)));
                        }
                    }
                    produced
                })
            })
            .collect();
        slots.extend((0..n).map(|_| None));
        for handle in handles {
            for (i, value) in handle.join().expect("simulation worker panicked") {
                slots[i] = Some(value);
            }
        }
    })
    .expect("simulation worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn heavy_closure_parallelizes_correctly() {
        let out = parallel_map(64, |i| {
            // Small busy work so threads actually interleave.
            let mut acc = 0u64;
            for k in 0..10_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn forced_worker_counts_preserve_index_order() {
        // Worker count must never change results — only wall-clock time.
        // (Other tests may race on the global override; that is safe for the
        // same reason.)
        for workers in [1usize, 2, 3, 7, 16] {
            set_sim_threads(Some(workers));
            let out = parallel_map(37, |i| i * 3 + 1);
            assert_eq!(out, (0..37).map(|i| i * 3 + 1).collect::<Vec<_>>(), "{workers} workers");
        }
        set_sim_threads(None);
    }

    #[test]
    fn worker_env_parsing() {
        // Positive integers, whitespace tolerated.
        assert_eq!(parse_worker_env("8"), Ok(Some(8)));
        assert_eq!(parse_worker_env(" 8 "), Ok(Some(8)));
        // Empty / whitespace-only / zero mean "unset" — zero is "no
        // override", not "no workers", by design.
        assert_eq!(parse_worker_env(""), Ok(None));
        assert_eq!(parse_worker_env("   "), Ok(None));
        assert_eq!(parse_worker_env("0"), Ok(None));
        assert_eq!(parse_worker_env("00"), Ok(None));
        // Anything unparseable is an error (warned once by `env_threads`).
        assert_eq!(parse_worker_env("two"), Err(()));
        assert_eq!(parse_worker_env("-1"), Err(()));
        assert_eq!(parse_worker_env("1.5"), Err(()));
        assert_eq!(parse_worker_env("8 workers"), Err(()));
    }

    #[test]
    fn sim_threads_is_clamped_to_job_size() {
        set_sim_threads(Some(64));
        assert_eq!(sim_threads(3), 3);
        assert_eq!(sim_threads(100), 64);
        set_sim_threads(None);
        assert!(sim_threads(1) == 1);
        assert!(sim_threads(usize::MAX) >= 1);
    }
}
