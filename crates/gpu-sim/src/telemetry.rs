//! Unified telemetry: span recording, typed counters, and trace export.
//!
//! The simulator computes hardware-counter-style evidence (coalescing
//! efficiency, reduction share, imbalance) in result structs, but those are
//! per-launch aggregates — there is no way to see *one request's* timeline
//! end to end. This module adds that observability substrate:
//!
//! - [`TelemetrySink`] — a cheaply cloneable handle that layers (kernel
//!   scheduler, device allocator, engine, serving simulator) record into.
//!   The [`TelemetrySink::Disabled`] variant compiles every recording call
//!   to an enum-tag check followed by nothing, so the hot simulation path
//!   pays no locks, no allocation, and no branch-heavy bookkeeping when
//!   telemetry is off.
//! - [`Counter`] / [`CounterRegistry`] — a typed registry of monotonic
//!   counters (plus two gauge-style entries maintained with `set`/`max`),
//!   stored as a fixed array so increments are a single indexed add.
//! - [`SpanEvent`] — a flat span (name, track, start, duration) in
//!   *simulated* nanoseconds; exported as Chrome trace-event JSON
//!   ([`TelemetrySink::chrome_trace_json`]) loadable in Perfetto /
//!   `chrome://tracing`, one process per layer and one track per concurrent
//!   block slot.
//! - [`MetricsSnapshot`] — a flat, serde-round-trippable snapshot of the
//!   counters for `report_md` and regression dashboards
//!   ([`TelemetrySink::metrics_json`]).
//!
//! # Determinism
//!
//! Span and counter emission for simulated work happens in
//! `KernelSim::finish`, *after* `simulate_blocks` has merged per-block
//! results in plan order — worker threads never touch the sink. Exported
//! traces and snapshots are therefore byte-identical at any
//! `TAHOE_SIM_THREADS` (pinned by `tests/determinism.rs`). Host-measured
//! engine phases (convert/rearrange/tune) are wall-clock timed and vary
//! run to run; they live on their own process track.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Chrome-trace process id for simulated-GPU spans (kernel/block/warp).
pub const PID_GPU: u32 = 1;
/// Chrome-trace process id for host-side engine spans (convert/tune/infer).
pub const PID_ENGINE: u32 = 2;
/// Chrome-trace process id for serving-simulation spans (queue/execute).
pub const PID_SERVING: u32 = 3;

/// Pid stride between cluster devices: device `d`'s layers occupy pids
/// `d * PID_DEVICE_STRIDE + {PID_GPU, PID_ENGINE, PID_SERVING}`, so device 0
/// keeps the canonical pids and every device gets its own process group in
/// the exported trace.
pub const PID_DEVICE_STRIDE: u32 = 10;

/// Chrome-trace pid of `base_pid`'s layer on cluster device `device_idx`
/// (identity for device 0).
#[must_use]
pub const fn device_pid(base_pid: u32, device_idx: usize) -> u32 {
    base_pid + PID_DEVICE_STRIDE * device_idx as u32
}

/// Typed telemetry counters.
///
/// Discriminants index [`CounterRegistry`]'s fixed array; keep them dense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Global-memory transactions issued by sampled blocks.
    GmemTransactions,
    /// Bytes the warp lanes asked for (coalesced ideal).
    GmemRequestedBytes,
    /// Bytes the memory system actually moved.
    GmemFetchedBytes,
    /// Fetched minus requested: traffic wasted on uncoalesced access.
    GmemUncoalescedBytes,
    /// Shared-memory bytes moved by sampled blocks.
    SmemBytes,
    /// Block-wide reduction operations in sampled blocks.
    BlockReductions,
    /// Device-wide segmented reductions.
    GlobalReductions,
    /// Idle lane-steps in sampled warps (divergence stalls):
    /// `steps × warp_size − active_lane_steps`.
    DivergenceStallLaneSteps,
    /// Active lane-steps in sampled warps (warp-efficiency numerator).
    WarpActiveLaneSteps,
    /// Total simulated kernel time, rounded ns (reduction-share denominator).
    KernelTimeNs,
    /// Simulated kernel time spent in block + global reductions, rounded ns.
    ReductionTimeNs,
    /// Kernel launches traced.
    KernelLaunches,
    /// Blocks simulated in detail.
    SimulatedBlocks,
    /// Successful simulated-device allocations.
    DeviceAllocs,
    /// Simulated-device frees.
    DeviceFrees,
    /// Allocation failures (simulated OOM).
    DeviceOomEvents,
    /// Gauge: aligned device bytes currently live (maintained with `set`).
    AllocInUseBytes,
    /// Gauge: high-water in-use footprint (maintained with `max`).
    AllocHighWaterBytes,
    /// Batches the engine inferred.
    EngineBatches,
    /// Batches the engine had to chunk-split to fit device DRAM.
    EngineChunkSplits,
    /// Sampled blocks that contributed to the A.C.V. statistic.
    AcvBlocksCounted,
    /// Sampled blocks skipped by the A.C.V. statistic (< 2 busy threads).
    AcvBlocksSkipped,
    /// Batches the serving simulator dispatched.
    ServingBatches,
    /// Requests the serving simulator served.
    ServingRequests,
    /// Planned blocks replayed from a launch's memo cache instead of being
    /// simulated (DESIGN.md §2.12).
    MemoHits,
    /// Planned blocks simulated in detail by the keyed path (one per
    /// distinct block fingerprint).
    MemoMisses,
    /// Approximate bytes of cached block results held by per-launch memo
    /// caches, summed over launches.
    MemoBytes,
    /// Engine batches whose tuned plan list came from the tuning-decision
    /// cache instead of a fresh `tune_all` sweep (DESIGN.md §2.16).
    TuningCacheHits,
    /// Engine batches that ran a fresh `tune_all` sweep and populated the
    /// tuning-decision cache.
    TuningCacheMisses,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 29] = [
        Counter::GmemTransactions,
        Counter::GmemRequestedBytes,
        Counter::GmemFetchedBytes,
        Counter::GmemUncoalescedBytes,
        Counter::SmemBytes,
        Counter::BlockReductions,
        Counter::GlobalReductions,
        Counter::DivergenceStallLaneSteps,
        Counter::WarpActiveLaneSteps,
        Counter::KernelTimeNs,
        Counter::ReductionTimeNs,
        Counter::KernelLaunches,
        Counter::SimulatedBlocks,
        Counter::DeviceAllocs,
        Counter::DeviceFrees,
        Counter::DeviceOomEvents,
        Counter::AllocInUseBytes,
        Counter::AllocHighWaterBytes,
        Counter::EngineBatches,
        Counter::EngineChunkSplits,
        Counter::AcvBlocksCounted,
        Counter::AcvBlocksSkipped,
        Counter::ServingBatches,
        Counter::ServingRequests,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::MemoBytes,
        Counter::TuningCacheHits,
        Counter::TuningCacheMisses,
    ];

    /// Whether this entry is a gauge (maintained with `set`/`max`) rather
    /// than a monotonic counter. Gauges are excluded from cross-sink merges:
    /// summing point-in-time snapshots double-counts, so an aggregating
    /// layer (e.g. the cluster) recomputes them from the live allocators.
    #[must_use]
    pub fn is_gauge(self) -> bool {
        matches!(self, Counter::AllocInUseBytes | Counter::AllocHighWaterBytes)
    }

    /// Snake-case name used in the metrics snapshot.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::GmemTransactions => "gmem_transactions",
            Counter::GmemRequestedBytes => "gmem_requested_bytes",
            Counter::GmemFetchedBytes => "gmem_fetched_bytes",
            Counter::GmemUncoalescedBytes => "gmem_uncoalesced_bytes",
            Counter::SmemBytes => "smem_bytes",
            Counter::BlockReductions => "block_reductions",
            Counter::GlobalReductions => "global_reductions",
            Counter::DivergenceStallLaneSteps => "divergence_stall_lane_steps",
            Counter::WarpActiveLaneSteps => "warp_active_lane_steps",
            Counter::KernelTimeNs => "kernel_time_ns",
            Counter::ReductionTimeNs => "reduction_time_ns",
            Counter::KernelLaunches => "kernel_launches",
            Counter::SimulatedBlocks => "simulated_blocks",
            Counter::DeviceAllocs => "device_allocs",
            Counter::DeviceFrees => "device_frees",
            Counter::DeviceOomEvents => "device_oom_events",
            Counter::AllocInUseBytes => "alloc_in_use_bytes",
            Counter::AllocHighWaterBytes => "alloc_high_water_bytes",
            Counter::EngineBatches => "engine_batches",
            Counter::EngineChunkSplits => "engine_chunk_splits",
            Counter::AcvBlocksCounted => "acv_blocks_counted",
            Counter::AcvBlocksSkipped => "acv_blocks_skipped",
            Counter::ServingBatches => "serving_batches",
            Counter::ServingRequests => "serving_requests",
            Counter::MemoHits => "memo_hits",
            Counter::MemoMisses => "memo_misses",
            Counter::MemoBytes => "memo_bytes",
            Counter::TuningCacheHits => "tuning_cache_hits",
            Counter::TuningCacheMisses => "tuning_cache_misses",
        }
    }
}

/// Fixed-size registry of every [`Counter`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    values: [u64; Counter::ALL.len()],
}

impl CounterRegistry {
    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Adds `n` to a monotonic counter.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.values[c as usize] += n;
    }

    /// Overwrites a gauge-style entry.
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c as usize] = v;
    }

    /// Raises a gauge-style entry to at least `v`.
    pub fn max(&mut self, c: Counter, v: u64) {
        let slot = &mut self.values[c as usize];
        *slot = (*slot).max(v);
    }

    /// Name → value map (sorted; the snapshot's serialization order).
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, u64> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), self.get(c)))
            .collect()
    }
}

/// One completed span on the simulated (or host) timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Human-readable span name (the Chrome trace `name`).
    pub name: String,
    /// Process track (one per layer; see [`PID_GPU`] etc.).
    pub pid: u32,
    /// Thread track within the process (e.g. one per concurrent block slot).
    pub tid: u32,
    /// Start time in nanoseconds on the track's timeline.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub dur_ns: f64,
}

/// Flat metrics snapshot — the machine-readable export `report_md` digests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Spans recorded alongside the counters.
    pub span_count: usize,
}

impl MetricsSnapshot {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Global-load efficiency derived from the counters
    /// (requested / fetched; 1.0 when nothing was fetched).
    #[must_use]
    pub fn gmem_efficiency(&self) -> f64 {
        let requested = self.counter("gmem_requested_bytes");
        let fetched = self.counter("gmem_fetched_bytes");
        if fetched == 0 {
            1.0
        } else {
            requested as f64 / fetched as f64
        }
    }

    /// Warp-execution efficiency: active lane-steps over total lane-steps
    /// (active + divergence stalls); 1.0 when no lane-steps were recorded.
    #[must_use]
    pub fn warp_efficiency(&self) -> f64 {
        let active = self.counter("warp_active_lane_steps");
        let stalled = self.counter("divergence_stall_lane_steps");
        let total = active + stalled;
        if total == 0 {
            1.0
        } else {
            active as f64 / total as f64
        }
    }

    /// Share of simulated kernel time spent in block + global reductions;
    /// 0.0 when no kernel time was recorded.
    #[must_use]
    pub fn reduction_share(&self) -> f64 {
        let kernel_ns = self.counter("kernel_time_ns");
        let reduction_ns = self.counter("reduction_time_ns");
        if kernel_ns == 0 {
            0.0
        } else {
            (reduction_ns as f64 / kernel_ns as f64).min(1.0)
        }
    }

    /// Fraction of allocation attempts that hit simulated OOM
    /// (`oom / (allocs + oom)`); 0.0 when nothing was allocated.
    #[must_use]
    pub fn oom_retry_rate(&self) -> f64 {
        let oom = self.counter("device_oom_events");
        let attempts = self.counter("device_allocs") + oom;
        if attempts == 0 {
            0.0
        } else {
            oom as f64 / attempts as f64
        }
    }
}

/// Shared state behind a recording sink.
#[derive(Debug, Default)]
pub struct SinkInner {
    counters: Mutex<CounterRegistry>,
    spans: Mutex<Vec<SpanEvent>>,
    process_names: Mutex<BTreeMap<u32, String>>,
    /// Per-kernel profiles, latency histograms, and drift records; the
    /// recording methods live in [`crate::profile`].
    pub(crate) profiles: Mutex<crate::profile::ProfileStore>,
    /// Windowed time-series samples; the recording methods live in
    /// [`crate::timeseries`].
    pub(crate) timeseries: Mutex<crate::timeseries::TimeSeriesStore>,
    /// Tuning decisions and per-request critical paths; the recording
    /// methods live in [`crate::decision`].
    pub(crate) decisions: Mutex<crate::decision::DecisionStore>,
}

/// Telemetry recording handle.
///
/// Cloning is cheap (`Disabled` is a unit; `Recording` clones an [`Arc`]),
/// so every layer holds its own handle to one shared recording. All methods
/// are no-ops on [`TelemetrySink::Disabled`].
#[derive(Clone, Debug, Default)]
pub enum TelemetrySink {
    /// Record nothing; every call is a no-op.
    #[default]
    Disabled,
    /// Record into shared state.
    Recording(Arc<SinkInner>),
}

impl TelemetrySink {
    /// A fresh recording sink.
    #[must_use]
    pub fn recording() -> Self {
        TelemetrySink::Recording(Arc::new(SinkInner::default()))
    }

    /// Whether this sink records anything. Layers use this to skip building
    /// span data entirely when telemetry is off.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TelemetrySink::Recording(_))
    }

    /// Adds `n` to a monotonic counter.
    pub fn add(&self, c: Counter, n: u64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.counters.lock().add(c, n);
        }
    }

    /// Overwrites a gauge-style counter.
    pub fn set(&self, c: Counter, v: u64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.counters.lock().set(c, v);
        }
    }

    /// Raises a gauge-style counter to at least `v`.
    pub fn max(&self, c: Counter, v: u64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.counters.lock().max(c, v);
        }
    }

    /// Records one span.
    pub fn span(
        &self,
        name: impl Into<String>,
        pid: u32,
        tid: u32,
        start_ns: f64,
        dur_ns: f64,
    ) {
        if let TelemetrySink::Recording(inner) = self {
            inner.spans.lock().push(SpanEvent {
                name: name.into(),
                pid,
                tid,
                start_ns,
                dur_ns,
            });
        }
    }

    /// Appends a batch of spans under one lock acquisition.
    pub fn push_spans(&self, spans: Vec<SpanEvent>) {
        if let TelemetrySink::Recording(inner) = self {
            inner.spans.lock().extend(spans);
        }
    }

    /// Names a Chrome-trace process track (idempotent).
    pub fn name_process(&self, pid: u32, name: &str) {
        if let TelemetrySink::Recording(inner) = self {
            inner
                .process_names
                .lock()
                .entry(pid)
                .or_insert_with(|| name.to_string());
        }
    }

    /// Current value of one counter (0 when disabled).
    #[must_use]
    pub fn counter_value(&self, c: Counter) -> u64 {
        match self {
            TelemetrySink::Disabled => 0,
            TelemetrySink::Recording(inner) => inner.counters.lock().get(c),
        }
    }

    /// Drains a cluster device's private sink into this (cluster-wide) one,
    /// remapping every span's pid with [`device_pid`] so each device keeps
    /// its own process group in the exported trace.
    ///
    /// Monotonic counters are added and reset on `source`; gauges are left
    /// untouched (the caller recomputes cluster-wide footprints from the
    /// live allocators — see [`Counter::is_gauge`]). Kernel profiles,
    /// histograms, and drift records move over wholesale. Spans on the
    /// engine's *host* track ([`PID_ENGINE`] tid 0: rearrange/convert/tune)
    /// are wall-clock measured and vary run to run, so they are dropped —
    /// this is what keeps cluster exports byte-identical at any
    /// `TAHOE_SIM_THREADS`. The caller must invoke this in device-index
    /// order, from one thread, after all per-device simulation finished.
    ///
    /// No-op when either sink is disabled or both share one recording.
    pub fn absorb_device(&self, source: &TelemetrySink, device_idx: usize, device_label: &str) {
        let (TelemetrySink::Recording(dst), TelemetrySink::Recording(src)) = (self, source)
        else {
            return;
        };
        if Arc::ptr_eq(dst, src) {
            return;
        }
        let drained = std::mem::take(&mut *src.spans.lock());
        let mut remapped: Vec<SpanEvent> = drained
            .into_iter()
            .filter(|s| !(s.pid == PID_ENGINE && s.tid == 0))
            .map(|mut s| {
                s.pid = device_pid(s.pid, device_idx);
                s
            })
            .collect();
        dst.spans.lock().append(&mut remapped);
        {
            let src_names = src.process_names.lock();
            let mut dst_names = dst.process_names.lock();
            for (pid, name) in src_names.iter() {
                dst_names
                    .entry(device_pid(*pid, device_idx))
                    .or_insert_with(|| format!("{name} [gpu{device_idx}: {device_label}]"));
            }
        }
        {
            let mut src_counters = src.counters.lock();
            let mut dst_counters = dst.counters.lock();
            for c in Counter::ALL {
                if c.is_gauge() {
                    continue;
                }
                let v = src_counters.get(c);
                if v > 0 {
                    dst_counters.add(c, v);
                    src_counters.set(c, 0);
                }
            }
        }
        let store = std::mem::take(&mut *src.profiles.lock());
        dst.profiles.lock().merge_from(store);
        // Time-series samples re-tag from the device-local index 0 to the
        // cluster-wide device index; window widths agree because the cluster
        // propagates its window to device sinks at construction.
        let ts = std::mem::take(&mut *src.timeseries.lock());
        dst.timeseries.lock().merge_from(ts, device_idx);
        // Flight-recorder records re-tag the same way: a device-local engine
        // records device 0, which becomes the cluster-wide index here.
        let ds = std::mem::take(&mut *src.decisions.lock());
        dst.decisions.lock().merge_from(ds, device_idx);
    }

    /// Flat snapshot of the recorded counters (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self {
            TelemetrySink::Disabled => MetricsSnapshot {
                counters: CounterRegistry::default().to_map(),
                span_count: 0,
            },
            TelemetrySink::Recording(inner) => MetricsSnapshot {
                counters: inner.counters.lock().to_map(),
                span_count: inner.spans.lock().len(),
            },
        }
    }

    /// The metrics snapshot as pretty JSON (the `--metrics <path>` payload).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the snapshot is a map of strings to
    /// integers, which always serializes.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes");
        s.push('\n');
        s
    }

    /// Exports the recorded spans as Chrome trace-event JSON (the
    /// `--trace <path>` payload), loadable in Perfetto / `chrome://tracing`.
    ///
    /// Events are stably ordered by `(pid, tid, ts, −dur)`, so timestamps are
    /// monotone per track and enclosing spans precede enclosed ones; the
    /// output is a pure function of the recorded spans and therefore
    /// byte-identical however many worker threads simulated the blocks.
    ///
    /// Recorded time series additionally export as Perfetto counter tracks
    /// (`"ph":"C"` events, one per non-empty window) after the spans, in
    /// the export's `(device, name, kind)` order. The `memo_*` series are
    /// excluded — they are the one thing `TAHOE_SIM_MEMO` is allowed to
    /// change, and the trace must stay byte-identical across memo settings
    /// (`tests/determinism.rs`).
    ///
    /// Recorded request paths (DESIGN.md §2.15) export after the counter
    /// tracks, in record order: one Perfetto async span (`"b"`/`"e"`, id =
    /// request index) covering the request's end-to-end latency on the
    /// serving queue track, plus a flow arrow (`"s"`/`"f"`) from its arrival
    /// into the executing device's batch-execute track. Pure functions of
    /// the recorded [`crate::decision::RequestPathRecord`]s, so the same
    /// byte-identity guarantee applies.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let timeseries = self.timeseries();
        let decisions = self.decisions();
        let (mut spans, names) = match self {
            TelemetrySink::Disabled => (Vec::new(), BTreeMap::new()),
            TelemetrySink::Recording(inner) => {
                (inner.spans.lock().clone(), inner.process_names.lock().clone())
            }
        };
        spans.sort_by(|a, b| {
            (a.pid, a.tid)
                .cmp(&(b.pid, b.tid))
                .then(a.start_ns.total_cmp(&b.start_ns))
                .then(b.dur_ns.total_cmp(&a.dur_ns))
        });
        use serde_json::{Number, Value};
        let str_val = |s: &str| Value::String(s.to_string());
        let num = |x: f64| Value::Number(Number::Float(x));
        let uint = |x: u64| Value::Number(Number::PosInt(x));
        let mut events = Vec::with_capacity(spans.len() + names.len());
        for (pid, name) in &names {
            events.push(Value::Object(vec![
                ("ph".into(), str_val("M")),
                ("ts".into(), num(0.0)),
                ("pid".into(), uint(u64::from(*pid))),
                ("tid".into(), uint(0)),
                ("name".into(), str_val("process_name")),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), str_val(name))]),
                ),
            ]));
        }
        for s in &spans {
            events.push(Value::Object(vec![
                ("ph".into(), str_val("X")),
                ("ts".into(), num(s.start_ns / 1_000.0)),
                ("dur".into(), num(s.dur_ns / 1_000.0)),
                ("pid".into(), uint(u64::from(s.pid))),
                ("tid".into(), uint(u64::from(s.tid))),
                ("name".into(), str_val(&s.name)),
            ]));
        }
        for series in &timeseries.series {
            if crate::timeseries::is_memo_series(&series.name) {
                continue;
            }
            for p in &series.points {
                events.push(Value::Object(vec![
                    ("ph".into(), str_val("C")),
                    ("ts".into(), num(p.start_ns as f64 / 1_000.0)),
                    ("pid".into(), uint(u64::from(device_pid(PID_GPU, series.device as usize)))),
                    ("tid".into(), uint(0)),
                    ("name".into(), str_val(&series.name)),
                    (
                        "args".into(),
                        Value::Object(vec![("value".into(), num(p.value))]),
                    ),
                ]));
            }
        }
        for r in &decisions.requests {
            let queue_pid = u64::from(device_pid(PID_SERVING, 0));
            let exec_pid = u64::from(device_pid(PID_SERVING, r.device as usize));
            let dispatch_ns = r.arrival_ns + r.form_ns + r.queue_ns;
            let end_ns = r.arrival_ns + r.total_ns;
            let name = format!("request {}", r.request);
            events.push(Value::Object(vec![
                ("ph".into(), str_val("b")),
                ("cat".into(), str_val("request")),
                ("id".into(), uint(r.request)),
                ("ts".into(), num(r.arrival_ns / 1_000.0)),
                ("pid".into(), uint(queue_pid)),
                ("tid".into(), uint(0)),
                ("name".into(), str_val(&name)),
            ]));
            events.push(Value::Object(vec![
                ("ph".into(), str_val("e")),
                ("cat".into(), str_val("request")),
                ("id".into(), uint(r.request)),
                ("ts".into(), num(end_ns / 1_000.0)),
                ("pid".into(), uint(queue_pid)),
                ("tid".into(), uint(0)),
                ("name".into(), str_val(&name)),
            ]));
            events.push(Value::Object(vec![
                ("ph".into(), str_val("s")),
                ("id".into(), uint(r.request)),
                ("ts".into(), num(r.arrival_ns / 1_000.0)),
                ("pid".into(), uint(queue_pid)),
                ("tid".into(), uint(0)),
                ("name".into(), str_val("request path")),
            ]));
            events.push(Value::Object(vec![
                ("ph".into(), str_val("f")),
                ("bp".into(), str_val("e")),
                ("id".into(), uint(r.request)),
                ("ts".into(), num(dispatch_ns / 1_000.0)),
                ("pid".into(), uint(exec_pid)),
                ("tid".into(), uint(2)),
                ("name".into(), str_val("request path")),
            ]));
        }
        let doc = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), str_val("ns")),
        ]);
        let mut text = serde_json::to_string_pretty(&doc).expect("trace serializes");
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::Disabled;
        sink.add(Counter::KernelLaunches, 5);
        sink.span("x", PID_GPU, 0, 0.0, 1.0);
        assert!(!sink.is_enabled());
        let snap = sink.snapshot();
        assert_eq!(snap.counters["kernel_launches"], 0);
        assert_eq!(snap.span_count, 0);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let sink = TelemetrySink::recording();
        sink.add(Counter::GmemFetchedBytes, 128);
        sink.add(Counter::GmemFetchedBytes, 64);
        sink.add(Counter::GmemRequestedBytes, 96);
        sink.set(Counter::AllocInUseBytes, 1000);
        sink.max(Counter::AllocHighWaterBytes, 2000);
        sink.max(Counter::AllocHighWaterBytes, 500);
        let snap = sink.snapshot();
        assert_eq!(snap.counters["gmem_fetched_bytes"], 192);
        assert_eq!(snap.counters["alloc_in_use_bytes"], 1000);
        assert_eq!(snap.counters["alloc_high_water_bytes"], 2000);
        assert!((snap.gmem_efficiency() - 0.5).abs() < 1e-12);
        // Every declared counter appears in the snapshot.
        assert_eq!(snap.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn derived_metrics_are_nan_free_on_zero_counters() {
        // A fresh (or disabled) sink has every counter at zero; no derived
        // helper may divide by that zero.
        for sink in [TelemetrySink::Disabled, TelemetrySink::recording()] {
            let snap = sink.snapshot();
            assert_eq!(snap.gmem_efficiency(), 1.0);
            assert_eq!(snap.warp_efficiency(), 1.0);
            assert_eq!(snap.reduction_share(), 0.0);
            assert_eq!(snap.oom_retry_rate(), 0.0);
        }
        // Missing keys (e.g. a snapshot parsed from an older export) must
        // degrade the same way, not panic or return NaN.
        let empty = MetricsSnapshot { counters: BTreeMap::new(), span_count: 0 };
        for v in [
            empty.gmem_efficiency(),
            empty.warp_efficiency(),
            empty.reduction_share(),
            empty.oom_retry_rate(),
        ] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn derived_metrics_follow_their_counters() {
        let sink = TelemetrySink::recording();
        sink.add(Counter::WarpActiveLaneSteps, 75);
        sink.add(Counter::DivergenceStallLaneSteps, 25);
        sink.add(Counter::KernelTimeNs, 1_000);
        sink.add(Counter::ReductionTimeNs, 250);
        sink.add(Counter::DeviceAllocs, 9);
        sink.add(Counter::DeviceOomEvents, 1);
        let snap = sink.snapshot();
        assert!((snap.warp_efficiency() - 0.75).abs() < 1e-12);
        assert!((snap.reduction_share() - 0.25).abs() < 1e-12);
        assert!((snap.oom_retry_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clones_share_one_recording() {
        let a = TelemetrySink::recording();
        let b = a.clone();
        b.add(Counter::ServingRequests, 7);
        assert_eq!(a.snapshot().counters["serving_requests"], 7);
    }

    #[test]
    fn chrome_trace_sorts_tracks_and_nests_spans() {
        let sink = TelemetrySink::recording();
        sink.name_process(PID_GPU, "gpu-sim");
        // Inserted out of order; the child (shorter) span shares its
        // parent's start.
        sink.span("child", PID_GPU, 2, 10_000.0, 1_000.0);
        sink.span("parent", PID_GPU, 2, 10_000.0, 5_000.0);
        sink.span("earlier", PID_GPU, 1, 0.0, 2_000.0);
        let text = sink.chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 4); // 1 metadata + 3 spans
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        let spans: Vec<&serde_json::Value> =
            events.iter().filter(|e| e["ph"].as_str() == Some("X")).collect();
        assert_eq!(spans[0]["name"].as_str(), Some("earlier"));
        // Longer span first at equal ts.
        assert_eq!(spans[1]["name"].as_str(), Some("parent"));
        assert_eq!(spans[2]["name"].as_str(), Some("child"));
        // Timestamps are microseconds.
        assert!((spans[1]["ts"].as_f64().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_emits_counter_tracks_but_never_memo_series() {
        let sink = TelemetrySink::recording();
        sink.ts_gauge(0, crate::timeseries::QUEUE_DEPTH, 10.0, 3.0);
        sink.ts_gauge(1, crate::timeseries::QUEUE_DEPTH, 10.0, 4.0);
        sink.ts_add(0, crate::timeseries::MEMO_HITS, 10.0, 7.0);
        let text = sink.chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let counters: Vec<&serde_json::Value> =
            events.iter().filter(|e| e["ph"].as_str() == Some("C")).collect();
        assert_eq!(counters.len(), 2, "memo series must be excluded");
        assert_eq!(counters[0]["name"].as_str(), Some("queue_depth"));
        assert_eq!(counters[0]["pid"].as_u64(), Some(u64::from(PID_GPU)));
        assert_eq!(counters[0]["args"]["value"].as_f64(), Some(3.0));
        // Device 1's series lands in its own pid group.
        assert_eq!(
            counters[1]["pid"].as_u64(),
            Some(u64::from(device_pid(PID_GPU, 1)))
        );
        assert!(!text.contains("memo_hits"));
    }

    #[test]
    fn metrics_snapshot_round_trips_through_serde() {
        let sink = TelemetrySink::recording();
        sink.add(Counter::EngineBatches, 3);
        sink.span("s", PID_ENGINE, 0, 1.0, 2.0);
        let snap = sink.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
