//! Offline hardware-parameter measurement (paper Algorithm 1, line 4).
//!
//! The paper measures Table 1's hardware parameters once per platform with
//! microbenchmarks; Tahoe's performance models then consume them. We do the
//! same against the simulator: tiny synthetic kernels measure *effective*
//! bandwidths and reduction rates, and the fitted values feed the `tahoe`
//! crate's Eq. 4–7 models. The models are analytic while the simulator is
//! trace-driven, so agreement between them is a meaningful (tested) property,
//! not a tautology.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::kernel::KernelSim;

/// Measured hardware parameters (the "Hardware parameters" rows of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasuredParams {
    /// Effective shared-memory read bandwidth, device-wide (bytes/ns).
    pub bw_r_smem: f64,
    /// Effective shared-memory write bandwidth, device-wide (bytes/ns).
    pub bw_w_smem: f64,
    /// Effective global read bandwidth under coalesced access (bytes/ns).
    pub bw_r_gmem_coa: f64,
    /// Effective global read bandwidth under uncoalesced access (bytes/ns),
    /// in *requested* bytes per ns (the wasted transaction bytes are the
    /// difference from `bw_r_gmem_coa`).
    pub bw_r_gmem_ncoa: f64,
    /// Block-reduction cost slope (ns per participating thread).
    pub b_rate: f64,
    /// Block-reduction fixed cost (ns per invocation).
    pub b_base: f64,
    /// Global-reduction cost slope (ns per participating block).
    pub g_rate: f64,
    /// Global-reduction fixed cost (ns per invocation).
    pub g_base: f64,
    /// Measured global-memory access latency (ns per dependent step).
    pub lat_gmem: f64,
    /// Measured shared-memory access latency (ns per dependent step).
    pub lat_smem: f64,
}

/// Number of warp steps per microbenchmark warp.
const STREAM_STEPS: usize = 64;

/// Measures all parameters on `device`.
#[must_use]
pub fn measure(device: &DeviceSpec) -> MeasuredParams {
    let (b_base, b_rate) = fit_block_reduce(device);
    let (g_base, g_rate) = fit_global_reduce(device);
    MeasuredParams {
        bw_r_smem: smem_stream_bandwidth(device),
        // The simulator does not distinguish shared read/write costs; real
        // hardware is near-symmetric too. Measured separately anyway so the
        // models keep the paper's two symbols.
        bw_w_smem: smem_stream_bandwidth(device),
        bw_r_gmem_coa: gmem_stream_bandwidth(device, 4),
        bw_r_gmem_ncoa: gmem_stream_bandwidth(device, 4096),
        b_rate,
        b_base,
        g_rate,
        g_base,
        lat_gmem: pointer_chase_latency(device, false),
        lat_smem: pointer_chase_latency(device, true),
    }
}

/// Measures per-dependent-step latency with a single-warp pointer chase.
fn pointer_chase_latency(device: &DeviceSpec, shared: bool) -> f64 {
    const STEPS: usize = 512;
    let mut k = KernelSim::new(device, 1, 32, if shared { 1024 } else { 0 });
    k.simulate_blocks(&[0], |_, mut b| {
        let mut w = b.warp();
        for s in 0..STEPS {
            if shared {
                w.smem_access(&[0], 4);
            } else {
                // Strided single-lane chain: every step its own transaction.
                w.gmem_read(&[(0, 0x1000_0000 + (s as u64) * 4096)], 4, None);
            }
        }
        b.push_warp(w.finish());
        b.finish()
    });
    k.finish().total_ns / STEPS as f64
}

/// Runs a bandwidth-saturating global-read kernel with the given inter-lane
/// stride; returns requested bytes per ns.
fn gmem_stream_bandwidth(device: &DeviceSpec, lane_stride: u64) -> f64 {
    let threads = 256usize;
    let warps = threads / device.warp_size as usize;
    // Enough blocks for two full waves so the wave model is exercised.
    let grid = (crate::occupancy::concurrent_blocks(device, threads, 0) * 2).max(1);
    let mut k = KernelSim::new(device, grid, threads, 0);
    // All blocks are identical; simulate one and extrapolate.
    k.simulate_blocks(&[0], |_, mut b| {
        for w_idx in 0..warps {
            let mut w = b.warp();
            for s in 0..STREAM_STEPS {
                let base = 0x1000_0000u64 + (w_idx * STREAM_STEPS + s) as u64 * lane_stride * 32;
                let accesses: Vec<(u8, u64)> = (0..device.warp_size as u64)
                    .map(|i| (i as u8, base + i * lane_stride))
                    .collect();
                w.gmem_read(&accesses, 4, None);
            }
            b.push_warp(w.finish());
        }
        b.finish()
    });
    let r = k.finish();
    r.gmem.requested_bytes as f64 / r.total_ns
}

/// Runs a shared-memory streaming kernel; returns bytes per ns.
fn smem_stream_bandwidth(device: &DeviceSpec) -> f64 {
    let threads = 256usize;
    let warps = threads / device.warp_size as usize;
    let grid = crate::occupancy::concurrent_blocks(device, threads, 16 * 1024).max(1);
    let mut k = KernelSim::new(device, grid, threads, 16 * 1024);
    let lanes: Vec<u8> = (0..device.warp_size as u8).collect();
    k.simulate_blocks(&[0], |_, mut b| {
        for _ in 0..warps {
            let mut w = b.warp();
            for _ in 0..STREAM_STEPS {
                w.smem_access(&lanes, 4);
            }
            b.push_warp(w.finish());
        }
        b.finish()
    });
    let r = k.finish();
    r.smem.requested_bytes as f64 / r.total_ns
}

/// Measures block-reduce cost at two thread counts and fits a line.
fn fit_block_reduce(device: &DeviceSpec) -> (f64, f64) {
    let cost = |threads: usize| -> f64 {
        let mut k = KernelSim::new(device, 1, threads, 0);
        k.simulate_blocks(&[0], |_, mut b| {
            // A reduction needs at least a token warp so the block is
            // non-empty.
            let mut w = b.warp();
            w.compute(&[0], 0.0);
            b.push_warp(w.finish());
            b.block_reduce(threads);
            b.finish()
        });
        k.finish().total_ns
    };
    let (t1, t2) = (128usize, 512usize);
    let (c1, c2) = (cost(t1), cost(t2));
    let rate = (c2 - c1) / (t2 - t1) as f64;
    let base = c1 - rate * t1 as f64;
    (base, rate)
}

/// Measures global-reduce cost at two block counts and fits a line.
fn fit_global_reduce(device: &DeviceSpec) -> (f64, f64) {
    let cost = |blocks: usize| -> f64 {
        let mut k = KernelSim::new(device, blocks, 32, 0);
        k.simulate_blocks(&[0], |_, mut b| {
            let mut w = b.warp();
            w.compute(&[0], 0.0);
            b.push_warp(w.finish());
            b.finish()
        });
        k.global_reduce(blocks);
        k.finish().global_reduction_ns
    };
    let (n1, n2) = (64usize, 512usize);
    let (c1, c2) = (cost(n1), cost(n2));
    let rate = (c2 - c1) / (n2 - n1) as f64;
    let base = c1 - rate * n1 as f64;
    (base, rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_fits_recover_device_constants() {
        for d in DeviceSpec::paper_devices() {
            let p = measure(&d);
            assert!(
                (p.b_rate - d.block_reduce_ns_per_thread).abs() < 1e-6,
                "{}: fitted B_rate {} vs spec {}",
                d.name,
                p.b_rate,
                d.block_reduce_ns_per_thread
            );
            assert!((p.g_rate - d.global_reduce_ns_per_block).abs() < 1e-6);
            assert!((p.b_base - d.block_reduce_base_ns).abs() < 1e-3);
            assert!((p.g_base - d.global_reduce_base_ns).abs() < 1e-3);
        }
    }

    #[test]
    fn coalesced_bandwidth_exceeds_uncoalesced() {
        for d in DeviceSpec::paper_devices() {
            let p = measure(&d);
            assert!(
                p.bw_r_gmem_coa > 3.0 * p.bw_r_gmem_ncoa,
                "{}: coalesced {} vs uncoalesced {}",
                d.name,
                p.bw_r_gmem_coa,
                p.bw_r_gmem_ncoa
            );
        }
    }

    #[test]
    fn effective_bandwidth_is_below_peak() {
        for d in DeviceSpec::paper_devices() {
            let p = measure(&d);
            assert!(p.bw_r_gmem_coa <= d.gmem_bytes_per_ns * 1.001);
            assert!(p.bw_r_smem <= d.smem_bytes_per_ns * 1.001);
            assert!(p.bw_r_gmem_coa > 0.1 * d.gmem_bytes_per_ns);
        }
    }

    #[test]
    fn newer_generations_measure_faster() {
        let k80 = measure(&DeviceSpec::tesla_k80());
        let v100 = measure(&DeviceSpec::tesla_v100());
        assert!(v100.bw_r_gmem_coa > k80.bw_r_gmem_coa);
        assert!(v100.b_rate < k80.b_rate);
    }

    #[test]
    fn pointer_chase_recovers_latencies() {
        for d in DeviceSpec::paper_devices() {
            let p = measure(&d);
            assert!(
                (p.lat_gmem - d.gmem_latency_ns).abs() / d.gmem_latency_ns < 0.05,
                "{}: measured {} vs spec {}",
                d.name,
                p.lat_gmem,
                d.gmem_latency_ns
            );
            assert!((p.lat_smem - d.smem_latency_ns).abs() / d.smem_latency_ns < 0.05);
            assert!(p.lat_gmem > p.lat_smem);
        }
    }
}
