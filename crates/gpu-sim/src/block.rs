//! Thread-block aggregation.
//!
//! A block tracer collects its warps' traces into raw quantities — critical
//! path, reduction work, bytes moved per address space — but does *not*
//! decide the block's wall-clock time. Bandwidth is a shared resource whose
//! per-block share depends on how many blocks are resident per SM, which only
//! the kernel-level scheduler knows; see [`crate::kernel`] for the roofline
//! combination.

use std::collections::BTreeMap;

use crate::coalesce::AccessStats;
use crate::device::DeviceSpec;
use crate::warp::{LevelStats, WarpResult, WarpSim};

/// Completed-block summary (raw quantities; timing resolved by the kernel).
#[derive(Clone, Debug, Default)]
pub struct BlockResult {
    /// Critical path: serial time of the slowest warp (ns). Warps in a block
    /// run concurrently on one SM, and block-wide operations (reductions,
    /// `__syncthreads`) wait for the slowest — this is where tree-depth
    /// imbalance costs appear.
    pub critical_ns: f64,
    /// Time spent in block-wide reductions (ns).
    pub reduction_ns: f64,
    /// Number of block-wide reduction operations recorded.
    pub reductions: u64,
    /// Aggregated global-memory statistics.
    pub gmem: AccessStats,
    /// Aggregated shared-memory statistics.
    pub smem: AccessStats,
    /// Per-thread busy time, warp-major order.
    pub thread_busy_ns: Vec<f64>,
    /// Serial (critical-path) time of each warp, push order (ns). Feeds the
    /// telemetry span exporter's warp tracks; negligible next to
    /// `thread_busy_ns`, which is `warp_size` times larger.
    pub warp_serial_ns: Vec<f64>,
    /// Sum of the warps' serial times (ns) — the profiler's time-attribution
    /// denominator.
    pub serial_sum_ns: f64,
    /// Sum of the warps' streamed-read time (ns) — the profiler's staging
    /// numerator.
    pub streamed_ns: f64,
    /// Per-level statistics merged over warps.
    pub levels: BTreeMap<u32, LevelStats>,
    /// Number of warps simulated.
    pub n_warps: usize,
    /// Total lockstep steps over all warps.
    pub steps: u64,
    /// Sum of active lanes over all steps (SIMT-efficiency numerator).
    pub active_lane_steps: u64,
}

impl BlockResult {
    /// Approximate in-memory footprint of this result (struct plus heap),
    /// used for the memo cache's `memo_bytes` accounting. Based on lengths,
    /// not capacities, so the number is independent of allocation history.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let heap = self.thread_busy_ns.len() * std::mem::size_of::<f64>()
            + self.warp_serial_ns.len() * std::mem::size_of::<f64>()
            + self.levels.len()
                * (std::mem::size_of::<u32>() + std::mem::size_of::<LevelStats>());
        (std::mem::size_of::<Self>() + heap) as u64
    }
}

/// Tracer for one thread block.
pub struct BlockSim<'d> {
    device: &'d DeviceSpec,
    warps: Vec<WarpResult>,
    reduction_ns: f64,
    reductions: u64,
}

impl<'d> BlockSim<'d> {
    /// Starts tracing a block on `device`.
    #[must_use]
    pub fn new(device: &'d DeviceSpec) -> Self {
        Self {
            device,
            warps: Vec::new(),
            reduction_ns: 0.0,
            reductions: 0,
        }
    }

    /// The device this block runs on.
    #[must_use]
    pub fn device(&self) -> &'d DeviceSpec {
        self.device
    }

    /// Creates a warp tracer for this block's device.
    #[must_use]
    pub fn warp(&self) -> WarpSim<'d> {
        WarpSim::new(self.device)
    }

    /// Records a finished warp.
    pub fn push_warp(&mut self, warp: WarpResult) {
        self.warps.push(warp);
    }

    /// Records one block-wide reduction over `n_threads` partial values
    /// (cub::BlockReduce-style). Returns the cost charged.
    pub fn block_reduce(&mut self, n_threads: usize) -> f64 {
        let cost = self.device.block_reduce_base_ns
            + self.device.block_reduce_ns_per_thread * n_threads as f64;
        self.reduction_ns += cost;
        self.reductions += 1;
        cost
    }

    /// Finalizes the block.
    #[must_use]
    pub fn finish(self) -> BlockResult {
        let mut gmem = AccessStats::default();
        let mut smem = AccessStats::default();
        let mut levels: BTreeMap<u32, LevelStats> = BTreeMap::new();
        let mut critical_ns = 0.0f64;
        let mut steps = 0u64;
        let mut active_lane_steps = 0u64;
        let mut thread_busy_ns =
            Vec::with_capacity(self.warps.len() * self.device.warp_size as usize);
        let mut warp_serial_ns = Vec::with_capacity(self.warps.len());
        let mut serial_sum_ns = 0.0f64;
        let mut streamed_ns = 0.0f64;
        for w in &self.warps {
            gmem.merge(&w.gmem);
            smem.merge(&w.smem);
            critical_ns = critical_ns.max(w.serial_ns);
            serial_sum_ns += w.serial_ns;
            streamed_ns += w.streamed_ns;
            steps += w.steps;
            active_lane_steps += w.active_lane_steps;
            thread_busy_ns.extend_from_slice(&w.lane_busy_ns);
            warp_serial_ns.push(w.serial_ns);
            for (lvl, stats) in &w.levels {
                levels.entry(*lvl).or_default().merge(stats);
            }
        }
        BlockResult {
            critical_ns,
            reduction_ns: self.reduction_ns,
            reductions: self.reductions,
            gmem,
            smem,
            thread_busy_ns,
            warp_serial_ns,
            serial_sum_ns,
            streamed_ns,
            levels,
            n_warps: self.warps.len(),
            steps,
            active_lane_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_block(warp_serials: &[usize]) -> BlockResult {
        let d = DeviceSpec::tesla_p100();
        let mut b = BlockSim::new(&d);
        for &steps in warp_serials {
            let mut w = b.warp();
            for s in 0..steps {
                let accesses: Vec<(u8, u64)> =
                    (0..32).map(|i| (i as u8, 0x1000 + (s as u64) * 128 + i * 4)).collect();
                w.gmem_read(&accesses, 4, None);
            }
            b.push_warp(w.finish());
        }
        b.finish()
    }

    #[test]
    fn critical_path_is_longest_warp() {
        let d = DeviceSpec::tesla_p100();
        let r = traced_block(&[1, 4, 2]);
        assert!((r.critical_ns - 4.0 * d.gmem_latency_ns).abs() < 1e-9);
        assert_eq!(r.n_warps, 3);
    }

    #[test]
    fn bytes_accumulate_across_warps() {
        let r = traced_block(&[2, 3]);
        // 5 coalesced steps x 128 B.
        assert_eq!(r.gmem.fetched_bytes, 5 * 128);
        assert_eq!(r.gmem.requested_bytes, 5 * 128);
        assert_eq!(r.gmem.transactions, 5);
    }

    #[test]
    fn reduction_cost_follows_device_rates() {
        let d = DeviceSpec::tesla_p100();
        let mut b = BlockSim::new(&d);
        let mut w = b.warp();
        w.gmem_read(&[(0, 0x1000)], 4, None);
        b.push_warp(w.finish());
        let cost = b.block_reduce(256);
        let expected = d.block_reduce_base_ns + 256.0 * d.block_reduce_ns_per_thread;
        assert!((cost - expected).abs() < 1e-9);
        let r = b.finish();
        assert!((r.reduction_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn thread_busy_times_are_collected_per_lane() {
        let r = traced_block(&[2, 3]);
        assert_eq!(r.thread_busy_ns.len(), 64);
        // Warp 0 lanes did 2 steps, warp 1 lanes did 3.
        assert!(r.thread_busy_ns[0] < r.thread_busy_ns[32]);
    }

    #[test]
    fn empty_block_is_all_zero() {
        let d = DeviceSpec::tesla_v100();
        let r = BlockSim::new(&d).finish();
        assert_eq!(r.critical_ns, 0.0);
        assert_eq!(r.n_warps, 0);
        assert_eq!(r.gmem, AccessStats::default());
    }

    #[test]
    fn level_stats_merge_across_warps() {
        let d = DeviceSpec::tesla_p100();
        let mut b = BlockSim::new(&d);
        for _ in 0..2 {
            let mut w = b.warp();
            w.gmem_read(&[(0, 0x1000), (1, 0x1004)], 4, Some(1));
            b.push_warp(w.finish());
        }
        let r = b.finish();
        assert_eq!(r.levels[&1].access.steps, 2);
        assert_eq!(r.levels[&1].distance_steps, 2);
    }
}
