//! Windowed time-series sampler: counter deltas, gauges, and latency
//! percentiles on fixed simulated-clock window boundaries (DESIGN.md §2.14).
//!
//! The telemetry counters (§2.9) and kernel profiles (§2.10) are end-of-run
//! aggregates — queue build-up, device utilization, and tail-latency
//! excursions *over time* are invisible in them. This module adds that view:
//! a [`TimeSeriesStore`] behind every recording [`TelemetrySink`] that bins
//! samples into fixed-width windows of the simulated clock
//! ([`DEFAULT_WINDOW_NS`] = 1 ms simulated) and exports them as
//! [`TelemetrySink::timeseries_json`] (the `--timeseries <path>` payload)
//! plus Perfetto counter tracks (`"ph":"C"`) inside the Chrome trace.
//!
//! Three sample shapes:
//!
//! - **sums** ([`TelemetrySink::ts_add`] / [`TelemetrySink::ts_add_interval`])
//!   — per-window deltas (dispatched batches, queue-wait ns, gmem bytes,
//!   busy ns apportioned across the windows an interval overlaps);
//! - **gauges** ([`TelemetrySink::ts_gauge`]) — instantaneous values where
//!   the last sample in a window wins (queue depth, inflight batches, DRAM
//!   in-use/high-water, roofline utilization);
//! - **latency/SLO windows** ([`TelemetrySink::record_latency_window`] /
//!   [`TelemetrySink::record_slo_window`]) — per-window request-latency
//!   histograms (the same fixed log2 edges as [`LatencyHistogram`], sliced
//!   into p50/p95/p99 on export) and deadline-attainment fractions.
//!
//! # Determinism
//!
//! Samples are recorded only from deterministic points — `KernelSim::finish`
//! after the plan-order merge, and the engine/serving caller thread — never
//! from simulation workers. Window edges are fixed multiples of `window_ns`,
//! never sample-dependent, and every export iterates `BTreeMap`s, so
//! `timeseries_json()` is byte-identical at any `TAHOE_SIM_THREADS`. Across
//! `TAHOE_SIM_MEMO` settings only the `memo_*` series may differ (the same
//! carve-out as the profile's `memo_*` fields); those series are therefore
//! excluded from the Chrome-trace counter tracks, which
//! `tests/determinism.rs` byte-compares across the full memo × workers
//! cross-product.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::profile::LatencyHistogram;
use crate::telemetry::TelemetrySink;

/// Default sampling window: 1 ms of simulated time.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

/// Sum series: simulated-kernel busy nanoseconds (apportioned per window).
pub const BUSY_NS: &str = "busy_ns";
/// Sum series: global-memory bytes fetched by traced launches.
pub const GMEM_FETCHED_BYTES: &str = "gmem_fetched_bytes";
/// Gauge series: per-launch roofline utilization (last launch in window).
pub const ROOFLINE_UTILIZATION: &str = "roofline_utilization";
/// Sum series: planned blocks replayed from the memo cache.
pub const MEMO_HITS: &str = "memo_hits";
/// Sum series: planned blocks the keyed path simulated in detail.
pub const MEMO_MISSES: &str = "memo_misses";
/// Gauge series: device DRAM bytes in use after a batch.
pub const MEM_IN_USE_BYTES: &str = "mem_in_use_bytes";
/// Gauge series: device DRAM high-water footprint after a batch.
pub const MEM_HIGH_WATER_BYTES: &str = "mem_high_water_bytes";
/// Gauge series: requests arrived but not yet dispatched.
pub const QUEUE_DEPTH: &str = "queue_depth";
/// Sum series: nanoseconds batches spent waiting for a free device.
pub const QUEUE_WAIT_NS: &str = "queue_wait_ns";
/// Sum series: batches dispatched to a device.
pub const DISPATCHED_BATCHES: &str = "dispatched_batches";
/// Gauge series: batches in flight on the device(s).
pub const INFLIGHT_BATCHES: &str = "inflight_batches";

/// Whether a series is memo-accounting — the one thing memoization is
/// allowed to change (DESIGN.md §2.12), so these series are stripped from
/// the Chrome-trace counter tracks and normalized away by the cross-memo
/// determinism diff.
#[must_use]
pub fn is_memo_series(name: &str) -> bool {
    name.starts_with("memo_")
}

/// Window state shared behind a recording sink (one per
/// `telemetry::SinkInner`).
#[derive(Debug)]
pub struct TimeSeriesStore {
    window_ns: u64,
    /// Per-window accumulated deltas, keyed by `(device, series name)`.
    sums: BTreeMap<(u32, String), BTreeMap<u64, f64>>,
    /// Per-window last-wins samples, keyed by `(device, series name)`.
    gauges: BTreeMap<(u32, String), BTreeMap<u64, f64>>,
    /// Per-window request-latency histograms.
    latency: BTreeMap<u64, LatencyHistogram>,
    /// Per-window `(total, met)` deadline outcomes.
    slo: BTreeMap<u64, (u64, u64)>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        TimeSeriesStore {
            window_ns: DEFAULT_WINDOW_NS,
            sums: BTreeMap::new(),
            gauges: BTreeMap::new(),
            latency: BTreeMap::new(),
            slo: BTreeMap::new(),
        }
    }
}

impl TimeSeriesStore {
    /// Window index of a simulated timestamp. Non-finite and negative times
    /// clamp to window 0, mirroring `LatencyHistogram::record`.
    fn window_of(&self, t_ns: f64) -> u64 {
        if t_ns.is_finite() && t_ns > 0.0 {
            (t_ns as u64) / self.window_ns // saturating cast
        } else {
            0
        }
    }

    fn add(&mut self, device: u32, name: &str, t_ns: f64, value: f64) {
        let w = self.window_of(t_ns);
        *self
            .sums
            .entry((device, name.to_string()))
            .or_default()
            .entry(w)
            .or_insert(0.0) += value;
    }

    /// Apportions `value` across the windows `[start_ns, end_ns)` overlaps,
    /// proportional to overlap. Degenerate intervals collapse to a point
    /// sample at `start_ns`.
    fn add_interval(&mut self, device: u32, name: &str, start_ns: f64, end_ns: f64, value: f64) {
        let span = end_ns - start_ns;
        if !(span.is_finite() && span > 0.0) {
            self.add(device, name, start_ns, value);
            return;
        }
        let w0 = self.window_of(start_ns);
        let w1 = self.window_of(end_ns);
        let points = self.sums.entry((device, name.to_string())).or_default();
        for w in w0..=w1 {
            let lo = (w * self.window_ns) as f64;
            let hi = lo + self.window_ns as f64;
            let overlap = end_ns.min(hi) - start_ns.max(lo);
            if overlap > 0.0 {
                *points.entry(w).or_insert(0.0) += value * overlap / span;
            }
        }
    }

    fn gauge(&mut self, device: u32, name: &str, t_ns: f64, value: f64) {
        let w = self.window_of(t_ns);
        self.gauges
            .entry((device, name.to_string()))
            .or_default()
            .insert(w, value);
    }

    fn record_latency(&mut self, t_ns: f64, latency_ns: f64) {
        let w = self.window_of(t_ns);
        self.latency.entry(w).or_default().record(latency_ns);
    }

    fn record_slo(&mut self, t_ns: f64, met: bool) {
        let w = self.window_of(t_ns);
        let slot = self.slo.entry(w).or_insert((0, 0));
        slot.0 += 1;
        if met {
            slot.1 += 1;
        }
    }

    /// Folds a cluster device's store into this one, re-tagging its series
    /// from the device-local index (always 0) to `device_idx`. Latency and
    /// SLO windows merge element-wise (fixed edges, plain sums). Callers
    /// (the cluster absorb path) must invoke this in device-index order so
    /// the merged export is deterministic. The destination's `window_ns`
    /// wins; `GpuCluster` propagates its window to device sinks at
    /// construction so the two always agree.
    pub(crate) fn merge_from(&mut self, other: TimeSeriesStore, device_idx: usize) {
        for ((dev, name), points) in other.sums {
            let dst = self
                .sums
                .entry((dev + device_idx as u32, name))
                .or_default();
            for (w, v) in points {
                *dst.entry(w).or_insert(0.0) += v;
            }
        }
        for ((dev, name), points) in other.gauges {
            let dst = self
                .gauges
                .entry((dev + device_idx as u32, name))
                .or_default();
            for (w, v) in points {
                dst.insert(w, v);
            }
        }
        for (w, h) in other.latency {
            self.latency.entry(w).or_default().merge(&h);
        }
        for (w, (total, met)) in other.slo {
            let slot = self.slo.entry(w).or_insert((0, 0));
            slot.0 += total;
            slot.1 += met;
        }
    }

    fn export(&self) -> TimeSeriesExport {
        let point = |w: u64, v: f64| SeriesPoint {
            window: w,
            start_ns: w.saturating_mul(self.window_ns),
            value: v,
        };
        let mut series: Vec<SeriesExport> = Vec::with_capacity(self.sums.len() + self.gauges.len());
        for (kind, map) in [("sum", &self.sums), ("gauge", &self.gauges)] {
            for ((device, name), points) in map {
                series.push(SeriesExport {
                    device: *device,
                    name: name.clone(),
                    kind: kind.to_string(),
                    points: points.iter().map(|(&w, &v)| point(w, v)).collect(),
                });
            }
        }
        series.sort_by(|a, b| {
            (a.device, &a.name, &a.kind).cmp(&(b.device, &b.name, &b.kind))
        });
        let latency_windows = self
            .latency
            .iter()
            .map(|(&w, h)| {
                let e = h.export();
                LatencyWindowExport {
                    window: w,
                    start_ns: w.saturating_mul(self.window_ns),
                    count: e.count,
                    mean_ns: e.mean_ns(),
                    p50_ns: e.quantile_upper_ns(0.50),
                    p95_ns: e.quantile_upper_ns(0.95),
                    p99_ns: e.quantile_upper_ns(0.99),
                    max_ns: e.max_ns,
                }
            })
            .collect();
        let slo_windows = self
            .slo
            .iter()
            .map(|(&w, &(total, met))| SloWindowExport {
                window: w,
                start_ns: w.saturating_mul(self.window_ns),
                total,
                met,
                attainment: if total == 0 { 1.0 } else { met as f64 / total as f64 },
            })
            .collect();
        TimeSeriesExport {
            window_ns: self.window_ns,
            series,
            latency_windows,
            slo_windows,
        }
    }
}

/// One windowed sample of a sum or gauge series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Window index (`start_ns / window_ns`).
    pub window: u64,
    /// Window start on the simulated clock (`window × window_ns`).
    pub start_ns: u64,
    /// Accumulated delta (sums) or last sample (gauges) in the window.
    pub value: f64,
}

/// One named series of windowed samples.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesExport {
    /// Cluster device index (0 for a bare engine).
    pub device: u32,
    /// Series name (one of the constants in this module).
    pub name: String,
    /// `"sum"` (per-window deltas) or `"gauge"` (last sample wins).
    pub kind: String,
    /// Non-empty windows in ascending window order.
    pub points: Vec<SeriesPoint>,
}

/// Latency percentiles of one window, sliced from its fixed-edge log2
/// histogram (`quantile_upper_ns`, bucket-resolution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyWindowExport {
    /// Window index.
    pub window: u64,
    /// Window start on the simulated clock.
    pub start_ns: u64,
    /// Requests that completed in this window.
    pub count: u64,
    /// Mean request latency (ns).
    pub mean_ns: f64,
    /// Upper bucket edge containing the median (ns).
    pub p50_ns: u64,
    /// Upper bucket edge containing the 95th percentile (ns).
    pub p95_ns: u64,
    /// Upper bucket edge containing the 99th percentile (ns).
    pub p99_ns: u64,
    /// Largest rounded latency in the window (ns).
    pub max_ns: u64,
}

/// Deadline outcomes of one window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloWindowExport {
    /// Window index.
    pub window: u64,
    /// Window start on the simulated clock.
    pub start_ns: u64,
    /// Requests that completed in this window.
    pub total: u64,
    /// Of those, requests that met their deadline.
    pub met: u64,
    /// `met / total` (1.0 when the window is empty).
    pub attainment: f64,
}

/// The full time-series export — the `--timeseries <path>` payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesExport {
    /// Sampling window width (simulated ns).
    pub window_ns: u64,
    /// Every recorded series, sorted by `(device, name, kind)`.
    pub series: Vec<SeriesExport>,
    /// Per-window latency percentiles, in ascending window order.
    pub latency_windows: Vec<LatencyWindowExport>,
    /// Per-window SLO attainment, in ascending window order.
    pub slo_windows: Vec<SloWindowExport>,
}

impl TimeSeriesExport {
    /// Looks up a series by device, name, and kind.
    #[must_use]
    pub fn series(&self, device: u32, name: &str, kind: &str) -> Option<&SeriesExport> {
        self.series
            .iter()
            .find(|s| s.device == device && s.name == name && s.kind == kind)
    }

    /// Parses an export previously written by
    /// [`TelemetrySink::timeseries_json`] (e.g. a `--timeseries <path>`
    /// file).
    ///
    /// # Errors
    ///
    /// Returns the deserialization error message when `text` is not a valid
    /// time-series export.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl TelemetrySink {
    /// Adds `value` to a sum series at simulated time `t_ns`. No-op when
    /// disabled; only deterministic caller-thread code paths may call this
    /// (never simulation workers).
    pub fn ts_add(&self, device: u32, name: &str, t_ns: f64, value: f64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.timeseries.lock().add(device, name, t_ns, value);
        }
    }

    /// Adds `value` to a sum series, apportioned across the windows
    /// `[start_ns, end_ns)` overlaps. No-op when disabled.
    pub fn ts_add_interval(
        &self,
        device: u32,
        name: &str,
        start_ns: f64,
        end_ns: f64,
        value: f64,
    ) {
        if let TelemetrySink::Recording(inner) = self {
            inner
                .timeseries
                .lock()
                .add_interval(device, name, start_ns, end_ns, value);
        }
    }

    /// Records a gauge sample at simulated time `t_ns`; the last sample in
    /// a window wins. No-op when disabled.
    pub fn ts_gauge(&self, device: u32, name: &str, t_ns: f64, value: f64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.timeseries.lock().gauge(device, name, t_ns, value);
        }
    }

    /// Records one request latency into the histogram of the window its
    /// completion time `t_ns` falls in. No-op when disabled.
    pub fn record_latency_window(&self, t_ns: f64, latency_ns: f64) {
        if let TelemetrySink::Recording(inner) = self {
            inner.timeseries.lock().record_latency(t_ns, latency_ns);
        }
    }

    /// Records one request's deadline outcome into the window its completion
    /// time `t_ns` falls in. No-op when disabled.
    pub fn record_slo_window(&self, t_ns: f64, met: bool) {
        if let TelemetrySink::Recording(inner) = self {
            inner.timeseries.lock().record_slo(t_ns, met);
        }
    }

    /// Overrides the sampling window width. Call before recording any
    /// samples — existing windows are *not* re-bucketed.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width window.
    pub fn set_timeseries_window_ns(&self, window_ns: u64) {
        assert!(window_ns > 0, "time-series window must be positive");
        if let TelemetrySink::Recording(inner) = self {
            inner.timeseries.lock().window_ns = window_ns;
        }
    }

    /// The current sampling window width ([`DEFAULT_WINDOW_NS`] when
    /// disabled).
    #[must_use]
    pub fn timeseries_window_ns(&self) -> u64 {
        match self {
            TelemetrySink::Disabled => DEFAULT_WINDOW_NS,
            TelemetrySink::Recording(inner) => inner.timeseries.lock().window_ns,
        }
    }

    /// Snapshot of the recorded time series (empty when disabled).
    #[must_use]
    pub fn timeseries(&self) -> TimeSeriesExport {
        match self {
            TelemetrySink::Disabled => TimeSeriesStore::default().export(),
            TelemetrySink::Recording(inner) => inner.timeseries.lock().export(),
        }
    }

    /// The time-series export as pretty JSON (the `--timeseries <path>`
    /// payload).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the export is plain data that always
    /// serializes.
    #[must_use]
    pub fn timeseries_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(&self.timeseries()).expect("timeseries serialize");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_stores_no_samples() {
        let sink = TelemetrySink::Disabled;
        sink.ts_add(0, DISPATCHED_BATCHES, 0.0, 1.0);
        sink.ts_add_interval(0, BUSY_NS, 0.0, 5e6, 5e6);
        sink.ts_gauge(0, QUEUE_DEPTH, 0.0, 3.0);
        sink.record_latency_window(0.0, 100.0);
        sink.record_slo_window(0.0, true);
        let e = sink.timeseries();
        assert_eq!(e.window_ns, DEFAULT_WINDOW_NS);
        assert!(e.series.is_empty());
        assert!(e.latency_windows.is_empty());
        assert!(e.slo_windows.is_empty());
    }

    #[test]
    fn sums_accumulate_within_a_window() {
        let sink = TelemetrySink::recording();
        sink.ts_add(0, DISPATCHED_BATCHES, 10.0, 1.0);
        sink.ts_add(0, DISPATCHED_BATCHES, 999_999.0, 1.0);
        sink.ts_add(0, DISPATCHED_BATCHES, 1_000_000.0, 1.0);
        let e = sink.timeseries();
        let s = e.series(0, DISPATCHED_BATCHES, "sum").expect("series");
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0], SeriesPoint { window: 0, start_ns: 0, value: 2.0 });
        assert_eq!(
            s.points[1],
            SeriesPoint { window: 1, start_ns: 1_000_000, value: 1.0 }
        );
    }

    #[test]
    fn gauges_keep_the_last_sample_per_window() {
        let sink = TelemetrySink::recording();
        sink.ts_gauge(0, QUEUE_DEPTH, 100.0, 5.0);
        sink.ts_gauge(0, QUEUE_DEPTH, 200.0, 2.0);
        sink.ts_gauge(0, QUEUE_DEPTH, 1_500_000.0, 7.0);
        let e = sink.timeseries();
        let s = e.series(0, QUEUE_DEPTH, "gauge").expect("series");
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].value, 2.0);
        assert_eq!(s.points[1].value, 7.0);
    }

    #[test]
    fn intervals_apportion_by_overlap() {
        let sink = TelemetrySink::recording();
        // 2 ms of busy time from 0.5 ms to 2.5 ms: ¼ + ½ + ¼ of the value.
        sink.ts_add_interval(0, BUSY_NS, 500_000.0, 2_500_000.0, 2_000_000.0);
        let e = sink.timeseries();
        let s = e.series(0, BUSY_NS, "sum").expect("series");
        assert_eq!(s.points.len(), 3);
        assert!((s.points[0].value - 500_000.0).abs() < 1e-6);
        assert!((s.points[1].value - 1_000_000.0).abs() < 1e-6);
        assert!((s.points[2].value - 500_000.0).abs() < 1e-6);
        let total: f64 = s.points.iter().map(|p| p.value).sum();
        assert!((total - 2_000_000.0).abs() < 1e-6, "apportioning conserves the value");
    }

    #[test]
    fn degenerate_intervals_collapse_to_point_samples() {
        let sink = TelemetrySink::recording();
        sink.ts_add_interval(0, BUSY_NS, 100.0, 100.0, 42.0);
        sink.ts_add_interval(0, BUSY_NS, f64::NAN, f64::NAN, 1.0);
        let e = sink.timeseries();
        let s = e.series(0, BUSY_NS, "sum").expect("series");
        assert_eq!(s.points.len(), 1);
        assert!((s.points[0].value - 43.0).abs() < 1e-12);
    }

    #[test]
    fn latency_windows_slice_percentiles_from_log2_buckets() {
        let sink = TelemetrySink::recording();
        for lat in [100.0, 200.0, 400.0, 100_000.0] {
            sink.record_latency_window(10.0, lat);
        }
        sink.record_latency_window(2_000_000.0, 50.0);
        let e = sink.timeseries();
        assert_eq!(e.latency_windows.len(), 2);
        let w0 = &e.latency_windows[0];
        assert_eq!((w0.window, w0.count), (0, 4));
        // Rounded samples land in buckets [64,128), [128,256), [256,512),
        // [65536,131072): p50 is the 2nd sample's bucket edge.
        assert_eq!(w0.p50_ns, 256);
        assert_eq!(w0.p99_ns, 131_072);
        assert_eq!(w0.max_ns, 100_000);
        assert!(w0.p50_ns <= w0.p95_ns && w0.p95_ns <= w0.p99_ns);
        let w1 = &e.latency_windows[1];
        assert_eq!((w1.window, w1.count, w1.start_ns), (2, 1, 2_000_000));
    }

    #[test]
    fn slo_windows_report_attainment() {
        let sink = TelemetrySink::recording();
        sink.record_slo_window(10.0, true);
        sink.record_slo_window(20.0, true);
        sink.record_slo_window(30.0, false);
        sink.record_slo_window(1_500_000.0, true);
        let e = sink.timeseries();
        assert_eq!(e.slo_windows.len(), 2);
        assert_eq!(e.slo_windows[0].total, 3);
        assert_eq!(e.slo_windows[0].met, 2);
        assert!((e.slo_windows[0].attainment - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.slo_windows[1].attainment, 1.0);
    }

    #[test]
    fn merge_retags_devices_and_folds_windows() {
        let cluster = TelemetrySink::recording();
        let dev = TelemetrySink::recording();
        cluster.ts_add(0, DISPATCHED_BATCHES, 10.0, 1.0);
        dev.ts_add(0, DISPATCHED_BATCHES, 10.0, 2.0);
        dev.ts_gauge(0, MEM_IN_USE_BYTES, 10.0, 4096.0);
        dev.record_latency_window(10.0, 500.0);
        dev.record_slo_window(10.0, false);
        let (TelemetrySink::Recording(dst), TelemetrySink::Recording(src)) = (&cluster, &dev)
        else {
            unreachable!()
        };
        let store = std::mem::take(&mut *src.timeseries.lock());
        dst.timeseries.lock().merge_from(store, 2);
        let e = cluster.timeseries();
        // The cluster's own device-0 series is untouched; the absorbed
        // store's series re-tag to device 2.
        assert_eq!(e.series(0, DISPATCHED_BATCHES, "sum").unwrap().points[0].value, 1.0);
        assert_eq!(e.series(2, DISPATCHED_BATCHES, "sum").unwrap().points[0].value, 2.0);
        assert_eq!(e.series(2, MEM_IN_USE_BYTES, "gauge").unwrap().points[0].value, 4096.0);
        assert_eq!(e.latency_windows[0].count, 1);
        assert_eq!(e.slo_windows[0].total, 1);
        // The drained source is empty; a second absorb is a no-op.
        assert!(dev.timeseries().series.is_empty());
    }

    #[test]
    fn custom_windows_rebucket_future_samples() {
        let sink = TelemetrySink::recording();
        sink.set_timeseries_window_ns(1_000);
        assert_eq!(sink.timeseries_window_ns(), 1_000);
        sink.ts_add(0, DISPATCHED_BATCHES, 2_500.0, 1.0);
        let e = sink.timeseries();
        assert_eq!(e.window_ns, 1_000);
        let s = e.series(0, DISPATCHED_BATCHES, "sum").expect("series");
        assert_eq!(s.points[0].window, 2);
        assert_eq!(s.points[0].start_ns, 2_000);
    }

    #[test]
    fn export_round_trips_through_serde() {
        let sink = TelemetrySink::recording();
        sink.ts_add_interval(1, BUSY_NS, 0.0, 3_000_000.0, 3_000_000.0);
        sink.ts_gauge(0, ROOFLINE_UTILIZATION, 10.0, 0.42);
        sink.record_latency_window(10.0, 1234.0);
        sink.record_slo_window(10.0, true);
        let e = sink.timeseries();
        let text = sink.timeseries_json();
        let back = TimeSeriesExport::from_json(&text).expect("export parses");
        assert_eq!(back, e, "round-trip must be lossless");
    }

    #[test]
    fn memo_series_are_flagged() {
        assert!(is_memo_series(MEMO_HITS));
        assert!(is_memo_series(MEMO_MISSES));
        assert!(!is_memo_series(BUSY_NS));
        assert!(!is_memo_series(QUEUE_DEPTH));
    }
}
