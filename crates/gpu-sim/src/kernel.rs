//! Kernel-level scheduling: occupancy waves, bandwidth rooflines, and
//! device-time extrapolation from sampled blocks.
//!
//! Launch grids in the paper's experiments reach hundreds of thousands of
//! blocks; simulating every block in detail would make the reproduction
//! unusable. [`KernelSim`] therefore simulates a deterministic, evenly-spaced
//! subset of blocks in detail and extrapolates: traversal statistics scale by
//! `grid / sampled`, and device time schedules `grid` blocks of the sampled
//! mean cost across the occupancy-limited concurrency.
//!
//! # Timing model
//!
//! Each sampled block's wall time is a per-block roofline:
//!
//! ```text
//! block_wall = max(critical_path,
//!                  gmem_bytes / (device_gmem_bw / resident_blocks),
//!                  smem_bytes / (device_smem_bw / resident_blocks))
//!              + block_reductions
//! ```
//!
//! where `resident_blocks = min(grid, concurrent)` blocks share the device's
//! bandwidth. Kernel time then takes the worst of the wave-scheduled latency
//! bound and the device-wide bandwidth bounds, so aggregate throughput can
//! never exceed the device's peak:
//!
//! ```text
//! kernel = max(waves × mean(block_wall),
//!              total_gmem_bytes / device_gmem_bw,
//!              total_smem_bytes / device_smem_bw,
//!              max(block_wall))
//!          + global_reductions
//! ```

use std::collections::{BTreeMap, HashMap};

use crate::block::{BlockResult, BlockSim};
use crate::coalesce::AccessStats;
use crate::device::DeviceSpec;
use crate::memo::{sim_memo, BlockKey, MemoStats};
use crate::occupancy::{concurrent_blocks, waves};
use crate::parallel::parallel_map;
use crate::profile::{KernelProfile, LaunchStats};
use crate::telemetry::{Counter, SpanEvent, TelemetrySink, PID_GPU};
use crate::warp::LevelStats;

/// How many blocks to simulate in detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detail {
    /// Simulate every block.
    Full,
    /// Simulate at most this many, evenly spaced across the grid.
    Sampled(usize),
}

impl Detail {
    /// Default cap used by the experiment harness.
    pub const DEFAULT_SAMPLED: Detail = Detail::Sampled(48);
}

/// Deterministic, evenly-spaced sample of block indices.
#[must_use]
pub fn sample_plan(grid_blocks: usize, detail: Detail) -> Vec<usize> {
    match detail {
        Detail::Full => (0..grid_blocks).collect(),
        Detail::Sampled(cap) => {
            let cap = cap.max(1);
            if grid_blocks <= cap {
                (0..grid_blocks).collect()
            } else {
                (0..cap).map(|i| i * grid_blocks / cap).collect()
            }
        }
    }
}

/// Telemetry attachment of one traced launch (absent when telemetry is
/// disabled, so the untraced path carries no extra state).
struct TraceConfig {
    sink: TelemetrySink,
    label: String,
    t0_ns: f64,
}

/// Kernel launch description + accumulated sampled blocks.
pub struct KernelSim<'d> {
    device: &'d DeviceSpec,
    grid_blocks: usize,
    threads_per_block: usize,
    smem_per_block: usize,
    sampled: Vec<BlockResult>,
    global_reduction_ns: f64,
    global_reductions: u64,
    trace: Option<TraceConfig>,
    /// Grid indices of the sampled blocks, recorded by `simulate_blocks`
    /// when tracing (parallel to `sampled`; positions fall back to the
    /// sample index for blocks pushed directly).
    plan_idx: Vec<usize>,
    /// Memoization accounting of the keyed simulation path (DESIGN.md
    /// §2.12); all zero on the unkeyed path or with memoization off.
    memo: MemoStats,
    /// Device-image bytes per forest node, carried into the kernel profile
    /// (0 when the launch has no forest image).
    node_bytes: u64,
}

impl<'d> KernelSim<'d> {
    /// Describes a kernel launch.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid or a block shape the device cannot run
    /// (delegated to the occupancy calculator).
    #[must_use]
    pub fn new(
        device: &'d DeviceSpec,
        grid_blocks: usize,
        threads_per_block: usize,
        smem_per_block: usize,
    ) -> Self {
        assert!(grid_blocks > 0, "kernel launched with an empty grid");
        // Validate the shape eagerly (panics on impossible configurations).
        let _ = concurrent_blocks(device, threads_per_block, smem_per_block);
        Self {
            device,
            grid_blocks,
            threads_per_block,
            smem_per_block,
            sampled: Vec::new(),
            global_reduction_ns: 0.0,
            global_reductions: 0,
            trace: None,
            plan_idx: Vec::new(),
            memo: MemoStats::default(),
            node_bytes: 0,
        }
    }

    /// Records the per-node image width for the kernel profile. Set once at
    /// launch from the forest's format — metadata only, never timing.
    pub fn set_node_bytes(&mut self, bytes: u64) {
        self.node_bytes = bytes;
    }

    /// Attaches a telemetry sink: [`Self::finish`] will emit this launch's
    /// counters and a kernel → block → warp span tree starting at `t0_ns` on
    /// the simulated timeline. A disabled sink is not stored, so the
    /// untraced simulation path is unchanged. Emission happens entirely in
    /// `finish`, in plan order — worker threads never touch the sink, so
    /// traced output is bit-identical at any worker count.
    pub fn set_trace(&mut self, sink: &TelemetrySink, label: impl Into<String>, t0_ns: f64) {
        if sink.is_enabled() {
            self.trace = Some(TraceConfig {
                sink: sink.clone(),
                label: label.into(),
                t0_ns,
            });
        }
    }

    /// The device of this launch.
    #[must_use]
    pub fn device(&self) -> &'d DeviceSpec {
        self.device
    }

    /// Grid size in blocks.
    #[must_use]
    pub fn grid_blocks(&self) -> usize {
        self.grid_blocks
    }

    /// Block size in threads.
    #[must_use]
    pub fn threads_per_block(&self) -> usize {
        self.threads_per_block
    }

    /// Starts tracing one block.
    #[must_use]
    pub fn block(&self) -> BlockSim<'d> {
        BlockSim::new(self.device)
    }

    /// Records a finished sampled block.
    pub fn push_block(&mut self, block: BlockResult) {
        self.sampled.push(block);
    }

    /// Simulates the planned blocks in parallel and records their results in
    /// plan order.
    ///
    /// `sim` receives each plan entry (the block's grid index) and a fresh
    /// [`BlockSim`], and returns the finished [`BlockResult`]. Sampled blocks
    /// are independent by construction, so they fan out across host worker
    /// threads via [`crate::parallel::parallel_map`] (worker count
    /// overridable through `TAHOE_SIM_THREADS` or
    /// [`crate::parallel::set_sim_threads`]). Results are merged back in plan
    /// order, so [`Self::finish`] accumulates floating-point sums in the same
    /// sequence regardless of worker count: a 1-thread and an N-thread run
    /// produce bit-identical [`KernelResult`]s.
    pub fn simulate_blocks<F>(&mut self, plan: &[usize], sim: F)
    where
        F: Fn(usize, BlockSim<'d>) -> BlockResult + Sync,
    {
        let device = self.device;
        if self.trace.is_some() {
            self.plan_idx.extend_from_slice(plan);
        }
        self.sampled
            .extend(parallel_map(plan.len(), |i| sim(plan[i], BlockSim::new(device))));
    }

    /// As [`Self::simulate_blocks`], but memoizes identical blocks within
    /// this launch (DESIGN.md §2.12).
    ///
    /// `key` maps each plan entry to a [`BlockKey`] fingerprinting
    /// *everything* `sim`'s result depends on for that block — block shape
    /// and tree slice (a salt), window length, alignment relative to the
    /// coalescing grain, and the exact sample-window content bits. Blocks
    /// with equal keys must produce bit-identical [`BlockResult`]s; only one
    /// representative per distinct key is simulated (fanned out via
    /// [`crate::parallel::parallel_map`] like the unkeyed path) and the rest
    /// replay its cached result. Replay happens on the caller thread in plan
    /// order, so [`Self::finish`] sees exactly the sequence a full
    /// simulation would have produced: results are bit-identical with
    /// memoization on or off and at any worker count.
    ///
    /// Keys are computed on the caller thread, one at a time; the cache
    /// lives only for this call. With memoization disabled
    /// ([`crate::memo::set_sim_memo`] / `TAHOE_SIM_MEMO`) this is exactly
    /// `simulate_blocks` — no keys are computed at all.
    pub fn simulate_blocks_keyed<K, F>(&mut self, plan: &[usize], key: K, sim: F)
    where
        K: Fn(usize) -> BlockKey,
        F: Fn(usize, BlockSim<'d>) -> BlockResult + Sync,
    {
        if !sim_memo() {
            self.simulate_blocks(plan, sim);
            return;
        }
        let device = self.device;
        if self.trace.is_some() {
            self.plan_idx.extend_from_slice(plan);
        }
        // Fingerprint the plan and deduplicate. `assignment[i]` is the slot
        // (index into `unique_pos`) whose representative covers plan entry
        // `i`; `uses` counts entries per slot so replay can move the last
        // use instead of cloning it.
        let mut first_of: HashMap<BlockKey, usize> = HashMap::with_capacity(plan.len());
        let mut unique_pos: Vec<usize> = Vec::new();
        let mut uses: Vec<usize> = Vec::new();
        let mut assignment: Vec<usize> = Vec::with_capacity(plan.len());
        for (i, &block_idx) in plan.iter().enumerate() {
            let slot = *first_of.entry(key(block_idx)).or_insert_with(|| {
                unique_pos.push(i);
                uses.push(0);
                unique_pos.len() - 1
            });
            uses[slot] += 1;
            assignment.push(slot);
        }
        // Only the distinct blocks fan out across workers.
        let mut results: Vec<Option<BlockResult>> =
            parallel_map(unique_pos.len(), |u| sim(plan[unique_pos[u]], BlockSim::new(device)))
                .into_iter()
                .map(Some)
                .collect();
        self.memo.hits += (plan.len() - unique_pos.len()) as u64;
        self.memo.misses += unique_pos.len() as u64;
        for r in results.iter().flatten() {
            self.memo.bytes += r.approx_bytes();
        }
        // Replay in plan order on the caller thread — the merge `finish`
        // consumes is untouched by memoization.
        self.sampled.reserve(plan.len());
        for slot in assignment {
            uses[slot] -= 1;
            let r = if uses[slot] == 0 {
                results[slot].take().expect("each slot is taken once, on its last use")
            } else {
                results[slot].as_ref().expect("slot is live until its last use").clone()
            };
            self.sampled.push(r);
        }
    }

    /// Records one device-wide segmented reduction over `n_blocks` partial
    /// results (cub::DeviceSegmentedReduce-style). Returns the cost charged.
    pub fn global_reduce(&mut self, n_blocks: usize) -> f64 {
        let cost = self.device.global_reduce_base_ns
            + self.device.global_reduce_ns_per_block * n_blocks as f64;
        self.global_reduction_ns += cost;
        self.global_reductions += 1;
        cost
    }

    /// As [`Self::global_reduce`], additionally charging the bandwidth cost
    /// of streaming `n_values` partial values of `value_bytes` each through
    /// global memory (a segmented reduce is a full pass over its inputs).
    pub fn global_reduce_values(
        &mut self,
        n_blocks: usize,
        n_values: u64,
        value_bytes: u64,
    ) -> f64 {
        let fixed = self.global_reduce(n_blocks);
        let stream = (n_values * value_bytes) as f64 / self.device.gmem_bytes_per_ns;
        self.global_reduction_ns += stream;
        fixed + stream
    }

    /// Finalizes the launch, extrapolating from the sampled blocks.
    ///
    /// # Panics
    ///
    /// Panics if no block was simulated.
    #[must_use]
    pub fn finish(self) -> KernelResult {
        let Self {
            device,
            grid_blocks,
            threads_per_block,
            smem_per_block,
            sampled,
            global_reduction_ns,
            global_reductions,
            trace,
            plan_idx,
            memo,
            node_bytes,
        } = self;
        assert!(!sampled.is_empty(), "no blocks were simulated");
        let n_sampled = sampled.len();
        let scale = grid_blocks as f64 / n_sampled as f64;
        let concurrent = concurrent_blocks(device, threads_per_block, smem_per_block);
        let resident = concurrent.min(grid_blocks).max(1);
        let gmem_share = device.gmem_bytes_per_ns / resident as f64;
        let smem_share = device.smem_bytes_per_ns / resident as f64;

        let mut gmem = AccessStats::default();
        let mut smem = AccessStats::default();
        let mut levels: BTreeMap<u32, LevelStats> = BTreeMap::new();
        let mut thread_busy_per_block: Vec<Vec<f64>> = Vec::with_capacity(n_sampled);
        let mut sum_wall = 0.0f64;
        let mut max_wall = 0.0f64;
        let mut sum_reduction = 0.0f64;
        let mut sum_critical = 0.0f64;
        let mut sum_serial = 0.0f64;
        let mut sum_streamed = 0.0f64;
        let mut steps = 0u64;
        let mut active_lane_steps = 0u64;
        let mut block_reductions = 0u64;
        // Per-block (wall, reduction, warp serials) retained for span
        // emission; only populated when this launch is traced.
        let mut span_data: Vec<(f64, f64, Vec<f64>)> = Vec::new();
        // Blocks are consumed in index order; the floating-point sums below
        // therefore accumulate in the same sequence however many worker
        // threads simulated the blocks (the determinism guarantee of
        // `simulate_blocks`).
        for mut b in sampled {
            gmem.merge(&b.gmem);
            smem.merge(&b.smem);
            let bw_ns = (b.gmem.fetched_bytes as f64 / gmem_share)
                .max(b.smem.fetched_bytes as f64 / smem_share);
            let wall = b.critical_ns.max(bw_ns) + b.reduction_ns;
            sum_wall += wall;
            max_wall = max_wall.max(wall);
            sum_reduction += b.reduction_ns;
            sum_critical += b.critical_ns;
            sum_serial += b.serial_sum_ns;
            sum_streamed += b.streamed_ns;
            steps += b.steps;
            active_lane_steps += b.active_lane_steps;
            block_reductions += b.reductions;
            if trace.is_some() {
                span_data.push((wall, b.reduction_ns, std::mem::take(&mut b.warp_serial_ns)));
            }
            thread_busy_per_block.push(b.thread_busy_ns);
            for (lvl, stats) in &b.levels {
                levels.entry(*lvl).or_default().merge(stats);
            }
        }
        let mean_wall = sum_wall / n_sampled as f64;
        let mean_reduction = sum_reduction / n_sampled as f64;
        let mean_critical = sum_critical / n_sampled as f64;
        let n_waves = waves(grid_blocks, concurrent);
        let gmem_total = gmem.scaled(scale);
        let smem_total = smem.scaled(scale);
        let latency_bound = n_waves as f64 * mean_wall;
        let gmem_bound = gmem_total.fetched_bytes as f64 / device.gmem_bytes_per_ns;
        let smem_bound = smem_total.fetched_bytes as f64 / device.smem_bytes_per_ns;
        let scheduled = latency_bound.max(gmem_bound).max(smem_bound).max(max_wall);
        let block_reduction_wall = n_waves as f64 * mean_reduction;
        if let Some(tr) = &trace {
            emit_launch_telemetry(LaunchTelemetry {
                trace: tr,
                span_data: &span_data,
                plan_idx: &plan_idx,
                resident,
                mean_wall,
                scheduled,
                total_ns: scheduled + global_reduction_ns,
                block_reduction_wall,
                global_reduction_ns,
                global_reductions,
                gmem: &gmem_total,
                smem: &smem_total,
                n_sampled,
                block_reductions,
                steps,
                active_lane_steps,
                warp_size: device.warp_size,
                memo,
            });
            let profile = KernelProfile::from_launch(&LaunchStats {
                device,
                label: &tr.label,
                grid_blocks,
                threads_per_block,
                smem_per_block,
                node_bytes,
                sampled_blocks: n_sampled,
                memo_hits: memo.hits,
                memo_misses: memo.misses,
                concurrent_blocks: concurrent,
                waves: n_waves,
                gmem: &gmem_total,
                smem: &smem_total,
                steps,
                active_lane_steps,
                latency_bound_ns: latency_bound,
                block_reduction_ns: block_reduction_wall,
                scheduled_ns: scheduled,
                global_reduction_ns,
                streamed_serial_ns: sum_streamed,
                total_serial_ns: sum_serial,
            });
            // Windowed samples, still on the caller thread after the
            // plan-order merge (DESIGN.md §2.14): busy time and fetched
            // bytes apportioned over the launch's simulated-clock interval,
            // the roofline as a gauge at launch start, and the launch's memo
            // accounting (the one series pair allowed to differ across
            // `TAHOE_SIM_MEMO` settings).
            let total_ns = scheduled + global_reduction_ns;
            let sink = &tr.sink;
            sink.ts_add_interval(
                0,
                crate::timeseries::BUSY_NS,
                tr.t0_ns,
                tr.t0_ns + total_ns,
                total_ns,
            );
            sink.ts_add_interval(
                0,
                crate::timeseries::GMEM_FETCHED_BYTES,
                tr.t0_ns,
                tr.t0_ns + total_ns,
                gmem_total.fetched_bytes as f64,
            );
            sink.ts_gauge(
                0,
                crate::timeseries::ROOFLINE_UTILIZATION,
                tr.t0_ns,
                profile.roofline_utilization,
            );
            if memo.hits + memo.misses > 0 {
                sink.ts_add(0, crate::timeseries::MEMO_HITS, tr.t0_ns, memo.hits as f64);
                sink.ts_add(0, crate::timeseries::MEMO_MISSES, tr.t0_ns, memo.misses as f64);
            }
            sink.push_kernel_profile(profile);
        }
        KernelResult {
            grid_blocks,
            threads_per_block,
            sampled_blocks: n_sampled,
            concurrent_blocks: concurrent,
            total_ns: scheduled + global_reduction_ns,
            block_reduction_wall_ns: block_reduction_wall,
            global_reduction_ns,
            mean_block_wall_ns: mean_wall,
            mean_block_critical_ns: mean_critical,
            max_block_wall_ns: max_wall,
            gmem: gmem_total,
            smem: smem_total,
            thread_busy_per_block,
            levels,
            steps,
            active_lane_steps,
            warp_size: device.warp_size,
        }
    }
}

/// Everything [`emit_launch_telemetry`] needs from a finished launch.
struct LaunchTelemetry<'a> {
    trace: &'a TraceConfig,
    span_data: &'a [(f64, f64, Vec<f64>)],
    plan_idx: &'a [usize],
    resident: usize,
    mean_wall: f64,
    scheduled: f64,
    total_ns: f64,
    block_reduction_wall: f64,
    global_reduction_ns: f64,
    global_reductions: u64,
    gmem: &'a AccessStats,
    smem: &'a AccessStats,
    n_sampled: usize,
    block_reductions: u64,
    steps: u64,
    active_lane_steps: u64,
    warp_size: u32,
    memo: MemoStats,
}

/// Emits one traced launch's counters and spans.
///
/// Runs on the caller thread after the plan-order merge, so everything it
/// records is a pure function of the (worker-count-invariant) merged
/// results. Sampled block `k` with grid index `g` is placed at wave
/// `g / resident` on track `g % resident` — the same wave-scheduling model
/// `finish` uses for kernel time — with its warps stacked flame-style under
/// it and the trailing block reduction marked separately.
fn emit_launch_telemetry(t: LaunchTelemetry<'_>) {
    let sink = &t.trace.sink;
    sink.name_process(PID_GPU, "gpu-sim");
    sink.add(Counter::KernelLaunches, 1);
    sink.add(Counter::SimulatedBlocks, t.n_sampled as u64);
    sink.add(Counter::GmemTransactions, t.gmem.transactions);
    sink.add(Counter::GmemRequestedBytes, t.gmem.requested_bytes);
    sink.add(Counter::GmemFetchedBytes, t.gmem.fetched_bytes);
    sink.add(
        Counter::GmemUncoalescedBytes,
        t.gmem.fetched_bytes.saturating_sub(t.gmem.requested_bytes),
    );
    sink.add(Counter::SmemBytes, t.smem.fetched_bytes);
    sink.add(Counter::BlockReductions, t.block_reductions);
    sink.add(Counter::GlobalReductions, t.global_reductions);
    sink.add(
        Counter::DivergenceStallLaneSteps,
        (t.steps * u64::from(t.warp_size)).saturating_sub(t.active_lane_steps),
    );
    sink.add(Counter::WarpActiveLaneSteps, t.active_lane_steps);
    sink.add(Counter::KernelTimeNs, t.total_ns.round() as u64);
    sink.add(
        Counter::ReductionTimeNs,
        (t.block_reduction_wall + t.global_reduction_ns).round() as u64,
    );
    sink.add(Counter::MemoHits, t.memo.hits);
    sink.add(Counter::MemoMisses, t.memo.misses);
    sink.add(Counter::MemoBytes, t.memo.bytes);
    let t0 = t.trace.t0_ns;
    let n_events: usize = 2 + t.span_data.iter().map(|(_, _, w)| w.len() + 2).sum::<usize>();
    let mut events = Vec::with_capacity(n_events);
    events.push(SpanEvent {
        name: t.trace.label.clone(),
        pid: PID_GPU,
        tid: 0,
        start_ns: t0,
        dur_ns: t.total_ns,
    });
    if t.global_reduction_ns > 0.0 {
        events.push(SpanEvent {
            name: format!("{}: global reduce", t.trace.label),
            pid: PID_GPU,
            tid: 0,
            start_ns: t0 + t.scheduled,
            dur_ns: t.global_reduction_ns,
        });
    }
    let resident = t.resident.max(1);
    for (k, (wall, reduction_ns, warp_serials)) in t.span_data.iter().enumerate() {
        let g = t.plan_idx.get(k).copied().unwrap_or(k);
        let wave = g / resident;
        // Track 0 is the kernel's own; block slots start at 1.
        let tid = (g % resident) as u32 + 1;
        let start = t0 + wave as f64 * t.mean_wall;
        events.push(SpanEvent {
            name: format!("block {g}"),
            pid: PID_GPU,
            tid,
            start_ns: start,
            dur_ns: *wall,
        });
        for (w, serial) in warp_serials.iter().enumerate() {
            events.push(SpanEvent {
                name: format!("block {g} warp {w}"),
                pid: PID_GPU,
                tid,
                start_ns: start,
                dur_ns: *serial,
            });
        }
        if *reduction_ns > 0.0 {
            events.push(SpanEvent {
                name: format!("block {g} reduce"),
                pid: PID_GPU,
                tid,
                start_ns: start + wall - reduction_ns,
                dur_ns: *reduction_ns,
            });
        }
    }
    sink.push_spans(events);
}

/// Completed-kernel summary.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Grid size in blocks.
    pub grid_blocks: usize,
    /// Block size in threads.
    pub threads_per_block: usize,
    /// Number of blocks simulated in detail.
    pub sampled_blocks: usize,
    /// Occupancy-limited concurrent blocks on the device.
    pub concurrent_blocks: usize,
    /// Simulated wall-clock time of the launch (ns), including reductions.
    pub total_ns: f64,
    /// Wall-clock time attributable to block-wide reductions
    /// (waves × mean per-block reduction).
    pub block_reduction_wall_ns: f64,
    /// Wall-clock time of device-wide reductions (ns).
    pub global_reduction_ns: f64,
    /// Mean sampled per-block wall time (ns).
    pub mean_block_wall_ns: f64,
    /// Mean sampled per-block critical path (ns), before bandwidth bounds.
    pub mean_block_critical_ns: f64,
    /// Max sampled per-block wall time (ns).
    pub max_block_wall_ns: f64,
    /// Extrapolated global-memory statistics.
    pub gmem: AccessStats,
    /// Extrapolated shared-memory statistics.
    pub smem: AccessStats,
    /// Per-thread busy times of each sampled block (imbalance metrics; the
    /// paper's A.C.V. averages the coefficient of variation per block).
    pub thread_busy_per_block: Vec<Vec<f64>>,
    /// Per-level statistics merged over sampled blocks.
    pub levels: BTreeMap<u32, LevelStats>,
    /// Total lockstep steps over sampled blocks.
    pub steps: u64,
    /// Sum of active lanes over those steps.
    pub active_lane_steps: u64,
    /// Warp width of the device (SIMT-efficiency denominator).
    pub warp_size: u32,
}

impl KernelResult {
    /// Fraction of wall-clock time spent reducing.
    #[must_use]
    pub fn reduction_fraction(&self) -> f64 {
        if self.total_ns == 0.0 {
            return 0.0;
        }
        ((self.block_reduction_wall_ns + self.global_reduction_ns) / self.total_ns).min(1.0)
    }

    /// SIMT efficiency: mean fraction of warp lanes active per step.
    ///
    /// Warp divergence — lanes idling because their tree finished earlier or
    /// their branch diverged — shows up here; the tree-similarity
    /// rearrangement's within-warp benefit is exactly raising this number.
    #[must_use]
    pub fn simt_efficiency(&self) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        self.active_lane_steps as f64 / (self.steps * u64::from(self.warp_size)) as f64
    }

    /// Simulated global-memory throughput in bytes/ns (≈ GB/s).
    #[must_use]
    pub fn gmem_throughput(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.gmem.fetched_bytes as f64 / self.total_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_plan_full_covers_grid() {
        assert_eq!(sample_plan(5, Detail::Full), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_plan_sampled_is_evenly_spaced_and_capped() {
        let plan = sample_plan(100, Detail::Sampled(4));
        assert_eq!(plan, vec![0, 25, 50, 75]);
        let small = sample_plan(3, Detail::Sampled(10));
        assert_eq!(small, vec![0, 1, 2]);
    }

    fn run_kernel(device: &DeviceSpec, grid: usize, detail: Detail) -> KernelResult {
        let mut k = KernelSim::new(device, grid, 64, 0);
        for _idx in sample_plan(grid, detail) {
            let mut b = k.block();
            let mut w = b.warp();
            let accesses: Vec<(u8, u64)> = (0..32).map(|i| (i as u8, 0x1000 + i * 4)).collect();
            for _ in 0..10 {
                w.gmem_read(&accesses, 4, None);
            }
            b.push_warp(w.finish());
            b.block_reduce(64);
            k.push_block(b.finish());
        }
        k.finish()
    }

    #[test]
    fn sampled_extrapolation_matches_full_for_uniform_blocks() {
        let d = DeviceSpec::tesla_p100();
        let full = run_kernel(&d, 64, Detail::Full);
        let sampled = run_kernel(&d, 64, Detail::Sampled(8));
        assert!((full.total_ns - sampled.total_ns).abs() / full.total_ns < 1e-9);
        assert_eq!(full.gmem.fetched_bytes, sampled.gmem.fetched_bytes);
        assert!(
            (full.block_reduction_wall_ns - sampled.block_reduction_wall_ns).abs()
                / full.block_reduction_wall_ns
                < 1e-9
        );
    }

    #[test]
    fn more_blocks_than_concurrency_adds_waves() {
        let d = DeviceSpec::tesla_p100();
        let concurrent = concurrent_blocks(&d, 64, 0);
        let one_wave = run_kernel(&d, concurrent, Detail::Sampled(4));
        let two_waves = run_kernel(&d, concurrent + 1, Detail::Sampled(4));
        assert!(two_waves.total_ns > 1.9 * one_wave.total_ns);
    }

    #[test]
    fn aggregate_throughput_never_exceeds_device_bandwidth() {
        // A bandwidth-saturating uncoalesced kernel must be bounded by peak.
        for d in DeviceSpec::paper_devices() {
            let threads = 256usize;
            let grid = concurrent_blocks(&d, threads, 0) * 3;
            let mut k = KernelSim::new(&d, grid, threads, 0);
            let mut b = k.block();
            for w_idx in 0..threads / 32 {
                let mut w = b.warp();
                for s in 0..32u64 {
                    let base = 0x1000_0000 + (w_idx as u64 * 32 + s) * 4096 * 32;
                    let accesses: Vec<(u8, u64)> =
                        (0..32).map(|i| (i as u8, base + i * 4096)).collect();
                    w.gmem_read(&accesses, 4, None);
                }
                b.push_warp(w.finish());
            }
            k.push_block(b.finish());
            let r = k.finish();
            assert!(
                r.gmem_throughput() <= d.gmem_bytes_per_ns * 1.001,
                "{}: throughput {} exceeds peak {}",
                d.name,
                r.gmem_throughput(),
                d.gmem_bytes_per_ns
            );
        }
    }

    #[test]
    fn single_block_cannot_use_whole_device_bandwidth() {
        let d = DeviceSpec::tesla_p100();
        let mut k = KernelSim::new(&d, 1, 64, 0);
        let mut b = k.block();
        let mut w = b.warp();
        for s in 0..1_000u64 {
            let accesses: Vec<(u8, u64)> =
                (0..32).map(|i| (i as u8, 0x1000_0000 + s * 128 * 32 + i * 4)).collect();
            w.gmem_read(&accesses, 4, None);
        }
        b.push_warp(w.finish());
        k.push_block(b.finish());
        let r = k.finish();
        // One resident block gets the full bandwidth share in this model, but
        // the latency-dominated critical path keeps throughput far below it.
        assert!(r.gmem_throughput() < 0.2 * d.gmem_bytes_per_ns);
    }

    #[test]
    fn global_reduce_adds_wall_clock_time() {
        let d = DeviceSpec::tesla_v100();
        let mut k = KernelSim::new(&d, 4, 32, 0);
        let mut b = k.block();
        let mut w = b.warp();
        w.gmem_read(&[(0, 0x1000)], 4, None);
        b.push_warp(w.finish());
        k.push_block(b.finish());
        let cost = k.global_reduce(4);
        let r = k.finish();
        assert!((r.global_reduction_ns - cost).abs() < 1e-9);
        assert!(r.total_ns >= cost);
    }

    #[test]
    fn reduction_fraction_is_bounded_and_positive() {
        let d = DeviceSpec::tesla_k80();
        let r = run_kernel(&d, 16, Detail::Full);
        let f = r.reduction_fraction();
        assert!(f > 0.0 && f <= 1.0, "fraction {f}");
    }

    /// One deterministic but block-dependent block workload: the step count
    /// depends on `block_idx % 7`, and addresses shift per block by 4096 — a
    /// whole number of transaction lines — so blocks with equal residues
    /// produce bit-identical results (the property the keyed test exploits).
    fn lumpy_trace(block_idx: usize, mut b: BlockSim<'_>) -> BlockResult {
        let mut w = b.warp();
        for s in 0..(4 + block_idx % 7) as u64 {
            let accesses: Vec<(u8, u64)> = (0..32)
                .map(|i| (i as u8, 0x1000 + (block_idx as u64) * 4096 + s * 128 + i * 4))
                .collect();
            w.gmem_read(&accesses, 4, Some((s % 3) as u32));
        }
        b.push_warp(w.finish());
        b.block_reduce(64);
        b.finish()
    }

    /// The lumpy workload, built either through the sequential `push_block`
    /// path or the parallel driver.
    fn lumpy_kernel(device: &DeviceSpec, parallel: bool) -> KernelResult {
        let grid = 96usize;
        let plan = sample_plan(grid, Detail::Sampled(24));
        let mut k = KernelSim::new(device, grid, 64, 0);
        if parallel {
            k.simulate_blocks(&plan, lumpy_trace);
        } else {
            for idx in plan {
                k.push_block(lumpy_trace(idx, k.block()));
            }
        }
        k.finish()
    }

    #[test]
    fn simulate_blocks_is_bit_identical_to_sequential_push() {
        let d = DeviceSpec::tesla_p100();
        for workers in [1usize, 2, 8] {
            crate::parallel::set_sim_threads(Some(workers));
            let par = lumpy_kernel(&d, true);
            crate::parallel::set_sim_threads(None);
            let seq = lumpy_kernel(&d, false);
            assert_eq!(par.total_ns.to_bits(), seq.total_ns.to_bits(), "{workers} workers");
            assert_eq!(par.mean_block_wall_ns.to_bits(), seq.mean_block_wall_ns.to_bits());
            assert_eq!(par.gmem, seq.gmem);
            assert_eq!(par.levels, seq.levels);
            assert_eq!(par.thread_busy_per_block, seq.thread_busy_per_block);
            assert_eq!(par.steps, seq.steps);
            assert_eq!(par.active_lane_steps, seq.active_lane_steps);
        }
    }

    /// Memo key of the lumpy workload's true content class: results depend
    /// only on `block_idx % 7` (see `lumpy_trace`).
    fn lumpy_key(block_idx: usize) -> crate::memo::BlockKey {
        let mut h = crate::memo::KeyHasher::new();
        h.write_u64((block_idx % 7) as u64);
        h.finish()
    }

    /// The keyed path with memoization on vs. forced off: bit-identical
    /// results, with hits/misses surfaced through the telemetry counters and
    /// the kernel profile. The only test in this binary that writes the
    /// process-global memo override, so the forced phases cannot interleave
    /// with another writer.
    #[test]
    fn keyed_simulation_is_bit_identical_and_counts_hits() {
        let d = DeviceSpec::tesla_p100();
        let grid = 96usize;
        // Plan entries 0, 4, 8, …, 92: 24 blocks whose residues mod 7 cover
        // all 7 classes (gcd(4, 7) = 1) → 7 misses, 17 hits.
        let plan = sample_plan(grid, Detail::Sampled(24));

        crate::memo::set_sim_memo(Some(true));
        let sink = TelemetrySink::recording();
        let mut k = KernelSim::new(&d, grid, 64, 0);
        k.set_trace(&sink, "lumpy", 0.0);
        k.simulate_blocks_keyed(&plan, lumpy_key, lumpy_trace);
        let memoized = k.finish();

        crate::memo::set_sim_memo(Some(false));
        let mut k = KernelSim::new(&d, grid, 64, 0);
        k.simulate_blocks_keyed(&plan, lumpy_key, lumpy_trace);
        let full = k.finish();
        crate::memo::set_sim_memo(None);

        assert_eq!(memoized.total_ns.to_bits(), full.total_ns.to_bits());
        assert_eq!(
            memoized.mean_block_wall_ns.to_bits(),
            full.mean_block_wall_ns.to_bits()
        );
        assert_eq!(memoized.gmem, full.gmem);
        assert_eq!(memoized.levels, full.levels);
        assert_eq!(memoized.thread_busy_per_block, full.thread_busy_per_block);
        assert_eq!(memoized.steps, full.steps);
        assert_eq!(memoized.active_lane_steps, full.active_lane_steps);
        // And against the plain unkeyed paths, sequential and parallel.
        let pushed = lumpy_kernel(&d, false);
        assert_eq!(memoized.total_ns.to_bits(), pushed.total_ns.to_bits());

        assert_eq!(sink.counter_value(Counter::MemoHits), 17);
        assert_eq!(sink.counter_value(Counter::MemoMisses), 7);
        assert!(sink.counter_value(Counter::MemoBytes) > 0);
        let profiles = sink.profiles();
        assert_eq!(profiles.kernels.len(), 1);
        assert_eq!(profiles.kernels[0].memo_hits, 17);
        assert_eq!(profiles.kernels[0].memo_misses, 7);
        assert!((profiles.kernels[0].memo_hit_rate - 17.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no blocks were simulated")]
    fn finishing_without_blocks_panics() {
        let d = DeviceSpec::tesla_k80();
        let k = KernelSim::new(&d, 4, 32, 0);
        let _ = k.finish();
    }
}
