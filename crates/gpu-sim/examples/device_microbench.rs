//! Prints the measured hardware parameters of the three paper GPUs —
//! the "offline" step of the paper's Algorithm 1 (line 4).
//!
//! ```text
//! cargo run --release -p tahoe-gpu-sim --example device_microbench
//! ```

use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::measure;

fn main() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "device", "gmem coa", "gmem nco", "smem r", "smem w", "lat g", "lat s", "B_rate", "G_rate"
    );
    for device in DeviceSpec::paper_devices() {
        let p = measure(&device);
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>9.0} {:>9.0} {:>8.0} {:>8.0} {:>8.1} {:>8.1}",
            device.name,
            p.bw_r_gmem_coa,
            p.bw_r_gmem_ncoa,
            p.bw_r_smem,
            p.bw_w_smem,
            p.lat_gmem,
            p.lat_smem,
            p.b_rate,
            p.g_rate,
        );
    }
    println!("\nbandwidths in bytes/ns (≈ GB/s); latencies and rates in ns");
    println!("these are the Table 1 'hardware parameters' the performance models consume");
}
