//! Degenerate-input edge cases: the engine must handle pathological forests
//! and batches without panicking or producing wrong answers.

use tahoe::engine::{Engine, EngineOptions};
use tahoe::strategy::Strategy;
use tahoe_datasets::{ForestKind, SampleMatrix, Task};
use tahoe_forest::{Forest, Node, Tree};
use tahoe_gpu_sim::device::DeviceSpec;

fn stump(attr: u32, threshold: f32, left: f32, right: f32, prob: f32) -> Tree {
    Tree::new(vec![
        Node::Decision {
            attribute: attr,
            threshold,
            default_left: true,
            left: 1,
            right: 2,
            left_prob: prob,
        },
        Node::Leaf { value: left },
        Node::Leaf { value: right },
    ])
}

#[test]
fn single_leaf_forest_runs_every_strategy() {
    let forest = Forest::new(
        vec![Tree::leaf(2.5)],
        1,
        ForestKind::Gbdt,
        Task::Regression,
        0.5,
    );
    let samples = SampleMatrix::from_vec(10, 1, (0..10).map(|i| i as f32).collect());
    let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
    for s in Strategy::ALL {
        if !engine.feasible(s, &samples) {
            continue;
        }
        let r = engine.infer_with(&samples, Some(s));
        for p in &r.predictions {
            assert!((p - 3.0).abs() < 1e-6, "leaf 2.5 + base 0.5 = 3.0, got {p}");
        }
    }
}

#[test]
fn one_sample_batch() {
    let forest = Forest::new(
        vec![stump(0, 0.0, 1.0, -1.0, 0.6)],
        1,
        ForestKind::Gbdt,
        Task::Regression,
        0.0,
    );
    let samples = SampleMatrix::from_vec(1, 1, vec![-0.5]);
    let mut engine = Engine::tahoe(DeviceSpec::tesla_k80(), forest);
    let r = engine.infer(&samples);
    assert_eq!(r.predictions, vec![1.0]);
    assert!(r.run.kernel.total_ns > 0.0);
}

#[test]
fn one_tree_forest_with_all_strategies() {
    let forest = Forest::new(
        vec![stump(0, 0.5, 10.0, 20.0, 0.4)],
        2,
        ForestKind::RandomForest,
        Task::Regression,
        0.0,
    );
    let samples = SampleMatrix::from_vec(
        4,
        2,
        vec![0.0, 9.0, 1.0, 9.0, 0.4, 9.0, 0.6, 9.0],
    );
    let mut engine = Engine::tahoe(DeviceSpec::tesla_v100(), forest);
    for s in Strategy::ALL {
        if !engine.feasible(s, &samples) {
            continue;
        }
        let r = engine.infer_with(&samples, Some(s));
        assert_eq!(r.predictions, vec![10.0, 20.0, 10.0, 20.0], "{s}");
    }
}

#[test]
fn forest_with_more_trees_than_threads() {
    // 600 identical stumps exceed the 256-thread block: multiple rounds per
    // thread in shared data; splitting must partition.
    let trees: Vec<Tree> = (0..600)
        .map(|i| stump(0, 0.0, 0.01, -0.01, 0.3 + (i % 5) as f32 / 10.0))
        .collect();
    let forest = Forest::new(trees, 1, ForestKind::Gbdt, Task::Regression, 0.0);
    let samples = SampleMatrix::from_vec(64, 1, vec![-1.0; 64]);
    let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
    let r = engine.infer(&samples);
    for p in &r.predictions {
        assert!((p - 6.0).abs() < 1e-3, "600 x 0.01 = 6.0, got {p}");
    }
}

#[test]
fn all_missing_sample_follows_default_paths() {
    let forest = Forest::new(
        vec![stump(0, 0.0, 7.0, -7.0, 0.5)],
        1,
        ForestKind::Gbdt,
        Task::Regression,
        0.0,
    );
    let samples = SampleMatrix::from_vec(2, 1, vec![f32::NAN, f32::NAN]);
    let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
    let r = engine.infer(&samples);
    // default_left = true → leaf 7.0.
    assert_eq!(r.predictions, vec![7.0, 7.0]);
}

#[test]
fn extreme_probabilities_still_layout_correctly() {
    // left_prob 0.0 and 1.0 exercise both swap decisions at the boundary.
    let trees = vec![
        stump(0, 0.0, 1.0, 2.0, 0.0),
        stump(0, 0.0, 4.0, 8.0, 1.0),
    ];
    let forest = Forest::new(trees, 1, ForestKind::Gbdt, Task::Regression, 0.0);
    let samples = SampleMatrix::from_vec(2, 1, vec![-1.0, 1.0]);
    let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
    let r = engine.infer(&samples);
    assert_eq!(r.predictions, vec![5.0, 10.0]);
}

#[test]
fn fil_options_handle_the_same_edge_cases() {
    let forest = Forest::new(
        vec![Tree::leaf(-1.0), stump(0, 0.0, 1.0, 2.0, 0.7)],
        1,
        ForestKind::Gbdt,
        Task::Regression,
        0.0,
    );
    let samples = SampleMatrix::from_vec(3, 1, vec![-1.0, 0.0, f32::NAN]);
    let mut engine = Engine::new(
        DeviceSpec::tesla_k80(),
        forest,
        EngineOptions::fil(),
    );
    let r = engine.infer(&samples);
    assert_eq!(r.predictions, vec![0.0, 1.0, 0.0]);
    assert_eq!(r.strategy, Strategy::SharedData);
}
