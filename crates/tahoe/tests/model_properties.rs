//! Property-based tests of the performance models: Eq. 4–7 plus the latency
//! extension must behave sanely over the whole input space, not just the 15
//! Table 2 points.

use proptest::prelude::*;

use tahoe::perfmodel::{predict, ModelInputs};
use tahoe::strategy::{Geometry, Strategy};
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::measure;

fn inputs(n_trees: f64, d_tree: f64, n_batch: f64, s_sample: f64) -> ModelInputs {
    ModelInputs {
        s_sample,
        n_batch,
        d_tree,
        n_trees,
        s_node: 14.0,
        s_att: 4.0,
        n_nodes: (2.0f64).powf(d_tree + 1.0) - 1.0,
        s_forest: n_trees * ((2.0f64).powf(d_tree + 1.0) - 1.0) * 14.0,
    }
}

fn geometry(threads: usize, grid: usize, smem: usize, parts: usize) -> Geometry {
    Geometry {
        threads_per_block: threads,
        grid_blocks: grid,
        smem_per_block: smem,
        parts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_are_finite_and_positive(
        n_trees in 1.0f64..4000.0,
        d_tree in 1.0f64..20.0,
        n_batch in 1.0f64..1_000_000.0,
        s_sample in 8.0f64..20_000.0,
        threads in prop::sample::select(vec![64usize, 128, 256, 512]),
        parts in 1usize..64,
    ) {
        let device = DeviceSpec::tesla_p100();
        let hw = measure(&device);
        let i = inputs(n_trees, d_tree, n_batch, s_sample);
        for s in Strategy::ALL {
            let grid = (n_batch / threads as f64).ceil().max(1.0) as usize;
            let geo = match s {
                Strategy::SplittingSharedForest => geometry(threads, grid.max(parts), 32 << 10, parts),
                Strategy::SharedForest => geometry(threads, grid, 32 << 10, 1),
                _ => geometry(threads, grid, 0, 1),
            };
            let p = predict(s, &i, &hw, &geo, &device);
            prop_assert!(p.total().is_finite(), "{s}: total not finite");
            prop_assert!(p.total() > 0.0, "{s}: total {} <= 0", p.total());
            prop_assert!(p.t_smem >= 0.0 && p.t_gmem >= 0.0 && p.t_serial >= 0.0);
        }
    }

    #[test]
    fn cost_is_monotone_in_forest_size(
        n_trees in 1.0f64..1000.0,
        factor in 1.1f64..8.0,
        d_tree in 1.0f64..15.0,
    ) {
        // More trees must never be predicted cheaper (same geometry).
        let device = DeviceSpec::tesla_v100();
        let hw = measure(&device);
        let geo = geometry(256, 64, 0, 1);
        for s in [Strategy::SharedData, Strategy::Direct] {
            let small = predict(s, &inputs(n_trees, d_tree, 10_000.0, 256.0), &hw, &geo, &device);
            let big = predict(
                s,
                &inputs(n_trees * factor, d_tree, 10_000.0, 256.0),
                &hw,
                &geo,
                &device,
            );
            prop_assert!(
                big.total() >= small.total() * 0.999,
                "{s}: {} trees {} > {} trees {}",
                n_trees, small.total(), n_trees * factor, big.total()
            );
        }
    }

    #[test]
    fn splitting_reductions_amortize_monotonically(
        n_batch in 10.0f64..100_000.0,
        factor in 2.0f64..50.0,
    ) {
        let device = DeviceSpec::tesla_k80();
        let hw = measure(&device);
        let geo = geometry(256, 32, 32 << 10, 8);
        let i_small = inputs(500.0, 8.0, n_batch, 112.0);
        let i_large = inputs(500.0, 8.0, n_batch * factor, 112.0);
        let small = predict(Strategy::SplittingSharedForest, &i_small, &hw, &geo, &device);
        let large = predict(Strategy::SplittingSharedForest, &i_large, &hw, &geo, &device);
        prop_assert!(large.t_g_redu <= small.t_g_redu * 1.0001);
    }

    #[test]
    fn deeper_trees_cost_more(
        d_tree in 1.0f64..18.0,
        extra in 0.5f64..6.0,
    ) {
        let device = DeviceSpec::tesla_p100();
        let hw = measure(&device);
        let geo = geometry(256, 128, 0, 1);
        let shallow = predict(
            Strategy::Direct,
            &inputs(200.0, d_tree, 50_000.0, 112.0),
            &hw,
            &geo,
            &device,
        );
        let deep = predict(
            Strategy::Direct,
            &inputs(200.0, d_tree + extra, 50_000.0, 112.0),
            &hw,
            &geo,
            &device,
        );
        prop_assert!(deep.total() >= shallow.total() * 0.999);
    }
}
