//! Tahoe: tree structure-aware high performance inference engine for decision
//! tree ensembles — a full reproduction of the EuroSys '21 paper on top of a
//! simulated GPU substrate.
//!
//! The crate mirrors the paper's architecture:
//!
//! - [`mod@format`] — the reorg storage format (FIL's baseline, §2) and Tahoe's
//!   adaptive forest format (§4.3): interleaved node layout, variable-length
//!   attribute indices, dense/sparse storage.
//! - [`rearrange`] — probability-based node rearrangement (§4.1) and
//!   SimHash/LSH similarity-based tree rearrangement (§4.2).
//! - [`strategy`] — the four inference strategies of §5 (shared data, direct,
//!   shared forest, splitting shared forest) as simulated GPU kernels.
//! - [`perfmodel`] — the performance models of §6.1 (Eq. 1–7) and
//!   model-guided strategy selection.
//! - [`engine`] — the adaptive engine (Algorithm 1) and the FIL-equivalent
//!   baseline.
//! - [`cluster`] — the multi-GPU layer (§7.5): one engine per device with
//!   private memory, clock, and telemetry, merged deterministically.
//! - [`metrics`] — throughput / imbalance metrics used by the evaluation.
//! - [`telemetry`] — span/counter recording across all layers, exported as
//!   Chrome trace JSON and flat metrics snapshots (see `gpu-sim`'s
//!   `telemetry` module for the substrate).
//! - [`profile`] — per-kernel profiler reports, latency histograms, and the
//!   model-vs-simulator drift auditor (substrate in `gpu-sim`'s `profile`).
//! - [`telemetry::decision`] — the request-path flight recorder: per-request
//!   critical-path records and per-tuning-event decision audits (substrate
//!   in `gpu-sim`'s `decision`).
//!
//! # Examples
//!
//! ```
//! use tahoe_datasets::{DatasetSpec, Scale};
//! use tahoe_forest::train_for_spec;
//! use tahoe::format::{DeviceForest, FormatConfig, LayoutPlan};
//! use tahoe_gpu_sim::memory::DeviceMemory;
//!
//! let spec = DatasetSpec::by_name("letter").unwrap();
//! let data = spec.generate(Scale::Smoke);
//! let (train, infer) = data.split_train_infer();
//! let forest = train_for_spec(&spec, &train, Scale::Smoke);
//! let plan = tahoe::rearrange::adaptive_plan(&forest, &Default::default());
//! let mut mem = DeviceMemory::new();
//! let device_forest = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
//! let predictions = device_forest.predict_batch(&infer.samples);
//! assert_eq!(predictions.len(), infer.len());
//! ```

pub mod cluster;
pub mod engine;
pub mod format;
pub mod metrics;
pub mod perfmodel;
pub mod profile;
pub mod rearrange;
pub mod serving;
pub mod strategy;
pub mod telemetry;
pub mod tune;

pub use cluster::{ClusterRun, DeviceRun, GpuCluster};
pub use engine::{Engine, EngineOptions, InferenceResult, NodeEncodingChoice};
pub use format::{DeviceForest, FormatConfig, LayoutPlan, NodeEncoding, PackedWidth};
pub use perfmodel::{Calibrator, ModelInputs, Prediction};
pub use profile::{DriftRecord, KernelProfile, ProfilesExport};
pub use rearrange::{adaptive_plan, similarity_order, SimilarityParams};
pub use strategy::{LaunchContext, Strategy, StrategyRun};
pub use telemetry::decision::{DecisionRecord, DecisionsExport, RequestPathRecord};
pub use telemetry::timeseries::TimeSeriesExport;
pub use telemetry::{Counter, MetricsSnapshot, TelemetryCtx, TelemetrySink};
