//! Telemetry re-exports and the strategy-launch telemetry context.
//!
//! The recording substrate (sink, counters, spans, exporters) lives in
//! [`tahoe_gpu_sim::telemetry`]; this module re-exports it so engine-level
//! code has one import path, and adds [`TelemetryCtx`] — the borrowed handle
//! a [`crate::strategy::LaunchContext`] carries into every kernel launch.

pub use tahoe_gpu_sim::telemetry::{
    device_pid, Counter, CounterRegistry, MetricsSnapshot, SpanEvent, TelemetrySink,
    PID_DEVICE_STRIDE, PID_ENGINE, PID_GPU, PID_SERVING,
};
/// Windowed time-series sampler (series constants, export types, and the
/// sink's `ts_*` recording methods) — see DESIGN.md §2.14.
pub use tahoe_gpu_sim::timeseries;
/// Request-path flight recorder and decision audit (record types, export,
/// and the sink's `push_decision`/`push_request_path` methods) — see
/// DESIGN.md §2.15.
pub use tahoe_gpu_sim::decision;

/// A disabled sink with `'static` lifetime, so contexts without telemetry
/// can borrow one without owning a sink.
static DISABLED_SINK: TelemetrySink = TelemetrySink::Disabled;

/// Telemetry handle for one strategy launch: where to record, and where the
/// launch sits on the simulated timeline (the engine advances `t0_ns` by each
/// kernel's simulated duration so consecutive batches lay out end to end in
/// the exported trace).
#[derive(Clone, Copy, Debug)]
pub struct TelemetryCtx<'a> {
    /// Sink launches record into.
    pub sink: &'a TelemetrySink,
    /// Simulated-timeline origin of the launch (ns).
    pub t0_ns: f64,
}

impl TelemetryCtx<'static> {
    /// A context that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        TelemetryCtx { sink: &DISABLED_SINK, t0_ns: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_is_off() {
        let ctx = TelemetryCtx::disabled();
        assert!(!ctx.sink.is_enabled());
        assert_eq!(ctx.t0_ns, 0.0);
    }
}
