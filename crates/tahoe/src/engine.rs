//! The adaptive inference engine (paper Algorithm 1) and the FIL baseline.
//!
//! Construction runs the *offline* part (hardware microbenchmarks, line 4)
//! and the *online* CPU part (node rearrangement, similarity detection,
//! format conversion, lines 5–7). Each batch then runs the *GPU* part:
//! performance-model evaluation (lines 8–13) and the selected strategy
//! (line 15). [`Engine::update_forest`] is the incremental-learning path:
//! a forest update re-triggers probability counting and format conversion.

use std::time::Instant;

use tahoe_datasets::SampleMatrix;
use tahoe_forest::probability::EdgeCounter;
use tahoe_forest::{Forest, ForestStats};
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::Detail;
use tahoe_gpu_sim::memory::{DeviceMemory, OomError, ALLOC_ALIGN, GLOBAL_BASE};
use tahoe_gpu_sim::{measure, GlobalBuffer, MeasuredParams};

use crate::format::{DeviceForest, FormatConfig, LayoutPlan, NodeEncoding};
use crate::perfmodel::{self, Calibrator, ModelInputs, Prediction};
use crate::profile::DriftRecord;
use crate::rearrange::{self, RearrangeReport, SimilarityParams};
use crate::strategy::common::THREADS_PER_BLOCK;
use crate::strategy::{self, LaunchContext, Strategy, StrategyRun};
use crate::telemetry::decision::{DecisionCandidate, DecisionRecord};
use crate::telemetry::{timeseries, Counter, TelemetryCtx, TelemetrySink, PID_ENGINE};
use crate::tune;

/// How the engine picks the device-node encoding (DESIGN.md §2.13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeEncodingChoice {
    /// Whole-node records — the historical layout and the default, so the
    /// presets stay bit-identical to what they always produced.
    #[default]
    Classic,
    /// Packed struct-of-arrays lanes; falls back to classic when the
    /// attribute count exceeds [`crate::format::PackedWidth`]'s 29-bit cap.
    Packed,
    /// Packed whenever the attribute count is representable (same fallback
    /// rule as `Packed` — the format layer decides).
    Auto,
}

impl NodeEncodingChoice {
    /// The concrete encoding to request from the format layer.
    #[must_use]
    pub fn resolve(self) -> NodeEncoding {
        match self {
            Self::Classic => NodeEncoding::Classic,
            Self::Packed | Self::Auto => NodeEncoding::Packed,
        }
    }
}

/// Which of Tahoe's techniques an engine applies (the knobs behind the
/// paper's Fig. 8 breakdown).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Probability-based node rearrangement (§4.1).
    pub node_rearrange: bool,
    /// Similarity-based tree rearrangement (§4.2).
    pub tree_rearrange: bool,
    /// Performance-model-guided strategy selection (§6); when off, the
    /// engine always uses FIL's shared-data strategy.
    pub model_selection: bool,
    /// Variable-length attribute index (§4.3).
    pub varlen_attr: bool,
    /// Simulation detail (sampled blocks per kernel).
    pub detail: Detail,
    /// Similarity-pipeline parameters.
    pub similarity: SimilarityParams,
    /// Compute functional predictions on [`Engine::infer`]. Throughput
    /// sweeps over tiled mega-batches disable this: the simulated timing
    /// comes from the trace simulator either way, and correctness is covered
    /// by the (always-functional) validation tests.
    pub functional: bool,
    /// Count edge probabilities during inference (Algorithm 1 line 16).
    /// Accumulated counts feed [`Engine::refresh_probabilities`], which
    /// re-annotates the forest and rebuilds the layout. Off by default: it
    /// costs an extra traversal pass per batch.
    pub track_probabilities: bool,
    /// Device-node encoding (DESIGN.md §2.13). The presets keep the classic
    /// whole-node layout so their simulated traces stay byte-identical;
    /// `tahoe-cli` defaults to `Auto`.
    pub node_encoding: NodeEncodingChoice,
    /// Online recalibration of the §6 constants from the engine's own drift
    /// stream (DESIGN.md §2.16). Off in the presets so their selections and
    /// exports stay bit-identical to the historical engine; `tahoe-cli`
    /// enables it with `--calibrate`. Calibration consumes only
    /// simulated-clock values, so turning it on keeps every export
    /// byte-identical at any worker count and across memo settings.
    pub calibration: bool,
}

impl EngineOptions {
    /// Full Tahoe: everything on.
    #[must_use]
    pub fn tahoe() -> Self {
        Self {
            node_rearrange: true,
            tree_rearrange: true,
            model_selection: true,
            varlen_attr: true,
            detail: Detail::DEFAULT_SAMPLED,
            similarity: SimilarityParams::default(),
            functional: true,
            track_probabilities: false,
            node_encoding: NodeEncodingChoice::Classic,
            calibration: false,
        }
    }

    /// FIL baseline: reorg format, fixed-width attributes, shared-data
    /// strategy only.
    #[must_use]
    pub fn fil() -> Self {
        Self {
            node_rearrange: false,
            tree_rearrange: false,
            model_selection: false,
            varlen_attr: false,
            detail: Detail::DEFAULT_SAMPLED,
            similarity: SimilarityParams::default(),
            functional: true,
            track_probabilities: false,
            node_encoding: NodeEncodingChoice::Classic,
            calibration: false,
        }
    }
}

/// CPU-side conversion cost (paper §7.4's overhead analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConversionReport {
    /// Rearrangement stage timings.
    pub rearrange: RearrangeReport,
    /// Device-format build time.
    pub convert_ns: u64,
}

impl ConversionReport {
    /// Total CPU-part time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.rearrange.total_ns() + self.convert_ns
    }
}

/// Result of one inference batch.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Final predictions (aggregated ensemble outputs).
    pub predictions: Vec<f32>,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Simulated kernel outcome.
    pub run: StrategyRun,
    /// Model predictions for every feasible strategy, cheapest first.
    pub ranked: Vec<Prediction>,
    /// Model inputs used for the ranking.
    pub inputs: ModelInputs,
    /// Host-side model-evaluation time (§7.4's "runtime overhead").
    pub model_eval_ns: u64,
    /// Sequential chunks the batch was split into because its staging
    /// buffer exceeded the remaining device DRAM (1 = ran unsplit).
    pub chunks: usize,
    /// Simulated device memory live after this batch (bytes).
    pub mem_in_use_bytes: u64,
    /// High-water in-use footprint over the engine's lifetime (bytes).
    pub mem_high_water_bytes: u64,
}

/// A configured inference engine bound to one device and one forest.
pub struct Engine {
    device: DeviceSpec,
    hw: MeasuredParams,
    options: EngineOptions,
    forest: Forest,
    stats: ForestStats,
    device_forest: DeviceForest,
    mem: DeviceMemory,
    /// Live allocations holding the forest image — one per node lane (the
    /// classic encoding has one, packed two or three); freed on
    /// reconversion.
    forest_bufs: Vec<GlobalBuffer>,
    /// Cached per-batch staging buffer, reused (or grown) across batches.
    sample_buf: Option<GlobalBuffer>,
    conversion: ConversionReport,
    counter: Option<EdgeCounter>,
    /// Telemetry recording handle ([`TelemetrySink::Disabled`] via
    /// [`Engine::new`]; a live sink via [`Engine::with_telemetry`]).
    sink: TelemetrySink,
    /// Simulated-timeline cursor: each batch's kernel spans start here, and
    /// the cursor advances by the kernel's simulated duration so consecutive
    /// batches lay out end to end in the exported trace. The serving
    /// simulator overrides it per dispatch via [`Engine::set_sim_clock_ns`].
    clock_ns: f64,
    /// Host-phase cursor for the engine track's wall-clock-measured spans
    /// (rearrange/convert/tune), laid out sequentially.
    host_cursor_ns: f64,
    /// Online §6-constant recalibration state (DESIGN.md §2.16). Always
    /// present; folded into and applied to selections only when
    /// `options.calibration` is on.
    calibrator: Calibrator,
    /// Memoized `tune_all` plan lists keyed by everything selection depends
    /// on (`tune::cache_key`); cleared on reconversion and on
    /// calibration-generation bumps.
    tuning_cache: tune::TuningCache,
}

impl Engine {
    /// Builds an engine: offline microbenchmarks + online format conversion.
    ///
    /// # Panics
    ///
    /// Panics if the device spec fails validation.
    #[must_use]
    pub fn new(device: DeviceSpec, forest: Forest, options: EngineOptions) -> Self {
        Self::with_telemetry(device, forest, options, TelemetrySink::Disabled)
    }

    /// As [`Engine::new`], recording spans and counters into `sink` — the
    /// construction-time conversion, the simulated allocator, every kernel
    /// launch, and the per-batch engine phases all report into it.
    ///
    /// # Panics
    ///
    /// Panics if the device spec fails validation.
    #[must_use]
    pub fn with_telemetry(
        device: DeviceSpec,
        forest: Forest,
        options: EngineOptions,
        sink: TelemetrySink,
    ) -> Self {
        device.validate().expect("valid device spec");
        let hw = measure(&device);
        let mut mem = DeviceMemory::for_device(&device);
        mem.attach_telemetry(&sink);
        let mut engine = Self {
            stats: forest.stats(),
            device,
            hw,
            options,
            forest,
            device_forest: placeholder_device_forest(),
            mem,
            forest_bufs: Vec::new(),
            sample_buf: None,
            conversion: ConversionReport::default(),
            counter: None,
            sink,
            clock_ns: 0.0,
            host_cursor_ns: 0.0,
            calibrator: Calibrator::new(),
            tuning_cache: tune::TuningCache::new(),
        };
        if engine.options.track_probabilities {
            engine.counter = Some(EdgeCounter::new(&engine.forest));
        }
        engine.convert();
        engine
    }

    /// Clones a fully converted engine for another device slot of the same
    /// device model, executing on `device` (the slot's possibly
    /// clock-perturbed spec), attaching `sink` as its telemetry handle and
    /// zeroing the simulated clocks. The template's calibration (`hw`,
    /// conversion, strategy stats) carries over — fleets calibrate once per
    /// SKU, not per board.
    ///
    /// The clone shares nothing mutable with `self`: the capacity-modeled
    /// `DeviceMemory` (with the forest image and any cached staging buffer
    /// still resident) is copied wholesale, so each replica has independent
    /// in-use/high-water accounting. Used by the multi-GPU cluster to avoid
    /// re-running the CPU-side rearrange/convert/microbench pipeline once
    /// per device on homogeneous clusters.
    #[must_use]
    pub fn replicate(&self, device: DeviceSpec, sink: TelemetrySink) -> Self {
        let mut mem = self.mem.clone();
        mem.attach_telemetry(&sink);
        Self {
            device,
            hw: self.hw,
            options: self.options,
            forest: self.forest.clone(),
            stats: self.stats,
            device_forest: self.device_forest.clone(),
            mem,
            forest_bufs: self.forest_bufs.clone(),
            sample_buf: self.sample_buf,
            conversion: self.conversion,
            counter: self.counter.clone(),
            sink,
            clock_ns: 0.0,
            host_cursor_ns: 0.0,
            // Fitted scales carry over with the rest of the calibration;
            // the tuning cache does not — replica slots run downclocked
            // specs, so the template's keys would never match anyway.
            calibrator: self.calibrator.clone(),
            tuning_cache: tune::TuningCache::new(),
        }
    }

    /// Full Tahoe on `device`.
    #[must_use]
    pub fn tahoe(device: DeviceSpec, forest: Forest) -> Self {
        Self::new(device, forest, EngineOptions::tahoe())
    }

    /// FIL-equivalent baseline on `device`.
    #[must_use]
    pub fn fil(device: DeviceSpec, forest: Forest) -> Self {
        Self::new(device, forest, EngineOptions::fil())
    }

    /// (Re)builds the device forest from the current host forest.
    fn convert(&mut self) {
        // The cache keys per-forest statistics but not the per-tree layout;
        // its validity contract is that the forest image is fixed within one
        // cache lifetime, so a rebuild drops every entry (DESIGN.md §2.16).
        self.tuning_cache.clear();
        let mut report = ConversionReport::default();
        let plan = match (self.options.node_rearrange, self.options.tree_rearrange) {
            (true, true) => {
                let (plan, r) =
                    rearrange::adaptive_plan_timed(&self.forest, &self.options.similarity);
                report.rearrange = r;
                plan
            }
            (true, false) => {
                let t0 = Instant::now();
                let swaps = rearrange::node_swap::forest_swaps(&self.forest);
                report.rearrange.node_swap_ns = t0.elapsed().as_nanos() as u64;
                LayoutPlan {
                    tree_order: (0..self.forest.n_trees()).collect(),
                    swaps,
                }
            }
            (false, true) => {
                let (order, r) =
                    rearrange::similarity_order_timed(&self.forest, &self.options.similarity);
                report.rearrange = r;
                LayoutPlan {
                    tree_order: order,
                    swaps: LayoutPlan::identity(&self.forest).swaps,
                }
            }
            (false, false) => LayoutPlan::identity(&self.forest),
        };
        let config = FormatConfig {
            varlen_attr: self.options.varlen_attr,
            mode: None,
            encoding: self.options.node_encoding.resolve(),
        };
        let t0 = Instant::now();
        // Release the previous image before building the replacement —
        // without this, every `update_forest`/`refresh_probabilities` cycle
        // leaked a full forest image of simulated DRAM.
        for old in std::mem::take(&mut self.forest_bufs) {
            self.mem.free(old);
        }
        self.device_forest = DeviceForest::try_build(&self.forest, &plan, config, &mut self.mem)
            .unwrap_or_else(|e| panic!("forest image exceeds device DRAM: {e}"));
        self.forest_bufs = self.device_forest.buffers();
        report.convert_ns = t0.elapsed().as_nanos() as u64;
        self.stats = self.forest.stats();
        if self.sink.is_enabled() {
            self.sink.name_process(PID_ENGINE, "engine");
            let rearrange_ns = report.rearrange.total_ns() as f64;
            if rearrange_ns > 0.0 {
                self.host_span("rearrange", rearrange_ns);
            }
            self.host_span("convert", report.convert_ns as f64);
        }
        self.conversion = report;
    }

    /// Emits one wall-clock-measured engine-phase span and advances the host
    /// cursor so phases tile the engine track in execution order.
    fn host_span(&mut self, name: &str, dur_ns: f64) {
        self.sink.span(name, PID_ENGINE, 0, self.host_cursor_ns, dur_ns);
        self.host_cursor_ns += dur_ns;
    }

    /// Runs inference on a batch, selecting the strategy via the performance
    /// models (Algorithm 1 lines 8–15).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or an attribute-count mismatch.
    pub fn infer(&mut self, samples: &SampleMatrix) -> InferenceResult {
        self.infer_with(samples, None)
    }

    /// As [`Engine::infer`], optionally forcing a strategy (used by the
    /// Fig. 5/6 strategy sweeps). Forcing an infeasible strategy panics;
    /// callers check feasibility first via [`Engine::feasible`] or
    /// [`strategy::geometry`].
    ///
    /// A batch whose staging buffer does not fit in the remaining device
    /// DRAM is split into chunks inferred sequentially and merged;
    /// [`InferenceResult::chunks`] reports how many.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, attribute mismatch, or an infeasible forced
    /// strategy.
    pub fn infer_with(
        &mut self,
        samples: &SampleMatrix,
        force: Option<Strategy>,
    ) -> InferenceResult {
        assert!(samples.n_samples() > 0, "cannot infer an empty batch");
        assert_eq!(
            samples.n_attributes() as u32,
            self.forest.n_attributes(),
            "attribute count mismatch"
        );
        match self.ensure_sample_buf(sample_bytes(samples)) {
            Ok(buf) => self.infer_batch(samples, force, buf),
            Err(_) => self.infer_chunked(samples, force),
        }
    }

    /// Secures a staging buffer of at least `bytes`, reusing the cached one
    /// when it is large enough (the fix for the per-batch leak: the old code
    /// bump-allocated a fresh buffer every call and never freed it).
    fn ensure_sample_buf(&mut self, bytes: u64) -> Result<GlobalBuffer, OomError> {
        if let Some(buf) = self.sample_buf {
            if buf.bytes >= bytes {
                return Ok(buf);
            }
            self.mem.free(buf);
            self.sample_buf = None;
        }
        let buf = self.mem.try_alloc(bytes)?;
        self.sample_buf = Some(buf);
        Ok(buf)
    }

    /// One unsplit batch through model selection and the chosen strategy.
    fn infer_batch(
        &mut self,
        samples: &SampleMatrix,
        force: Option<Strategy>,
        sample_buf: GlobalBuffer,
    ) -> InferenceResult {
        let ctx = LaunchContext {
            device: &self.device,
            forest: &self.device_forest,
            samples,
            sample_buf,
            detail: self.options.detail,
            block_threads: THREADS_PER_BLOCK,
            telemetry: TelemetryCtx { sink: &self.sink, t0_ns: self.clock_ns },
        };
        let inputs = ModelInputs::gather(&self.device_forest, &self.stats, samples);
        let cal_enabled = self.options.calibration;
        let cal = cal_enabled.then_some(&self.calibrator);
        // Model evaluation: consult the tuning-decision cache (DESIGN.md
        // §2.16), falling back to tuning each feasible strategy's block size
        // (Algorithm 1 line 14) and ranking the tuned predictions (lines
        // 8-13). The cached value is a pure function of its key material, so
        // warm and cold runs select identically — only this host span and
        // the cache accounting differ.
        let t0 = Instant::now();
        let (tuned, cache_hit) = if tune::tune_cache_enabled() {
            let key = tune::cache_key(
                &self.device_forest,
                &self.device,
                &inputs,
                self.options.detail,
                self.calibrator.generation(),
            );
            match self.tuning_cache.get(&key) {
                Some(cached) => (cached.clone(), true),
                None => {
                    let fresh = tune::tune_all_with(&ctx, &inputs, &self.hw, cal);
                    self.tuning_cache.insert(key, fresh.clone());
                    (fresh, false)
                }
            }
        } else {
            (tune::tune_all_with(&ctx, &inputs, &self.hw, cal), false)
        };
        let model_eval_ns = t0.elapsed().as_nanos() as u64;
        // Cache accounting only when the cache was consulted, mirroring the
        // block-memo counters: turning the cache off zeroes these counters
        // but must change nothing else.
        if tune::tune_cache_enabled() {
            self.sink.add(
                if cache_hit {
                    Counter::TuningCacheHits
                } else {
                    Counter::TuningCacheMisses
                },
                1,
            );
        }
        let ranked: Vec<Prediction> = tuned.iter().map(|&(_, _, p)| p).collect();
        // Decision audit (DESIGN.md §2.15): replay the tuner's sweep keeping
        // rejected candidates and their reasons, under the same calibration
        // the selection used. Recording-only, and outside the timed section
        // above, so selection and `model_eval_ns` are untouched when
        // telemetry is off.
        let audit_candidates: Option<Vec<DecisionCandidate>> =
            self.sink.is_enabled().then(|| {
                let n = samples.n_samples() as f64;
                tune::sweep_candidates_with(&ctx, &inputs, &self.hw, cal)
                    .into_iter()
                    .map(|c| DecisionCandidate {
                        strategy: c.strategy.name().to_string(),
                        block_threads: c.block_threads as u64,
                        predicted_ns: c.outcome.as_ref().ok().map(|p| p.total() * n),
                        rejection: c.outcome.err().map(str::to_string),
                    })
                    .collect()
            });
        let strategy = force.unwrap_or_else(|| {
            if self.options.model_selection {
                tuned
                    .first()
                    .expect("shared data and direct are always feasible")
                    .0
            } else {
                Strategy::SharedData
            }
        });
        // Launch with the tuned block size (FIL's fixed default when the
        // model is disabled, matching the baseline).
        let block_threads = if self.options.model_selection {
            tuned
                .iter()
                .find(|(s, _, _)| *s == strategy)
                .map_or(THREADS_PER_BLOCK, |&(_, t, _)| t)
        } else {
            THREADS_PER_BLOCK
        };
        let run_ctx = LaunchContext {
            block_threads,
            ..ctx
        };
        let run = strategy::run(strategy, &run_ctx)
            .unwrap_or_else(|| panic!("strategy {strategy} infeasible for this forest/device"));
        self.sink.add(Counter::EngineBatches, 1);
        // Drift replay (DESIGN.md §2.10): the launch through the §6 model
        // with the geometry actually launched. The calibrator folds the
        // *raw* prediction (the fit is always against the uncalibrated
        // model); telemetry records the *applied* one — the cost selection
        // actually compared.
        let replay = (cal_enabled || self.sink.is_enabled()).then(|| {
            let n = samples.n_samples() as f64;
            let raw = perfmodel::predict(strategy, &inputs, &self.hw, &run.geometry, &self.device);
            let applied = cal.map_or(raw, |c| c.apply(raw));
            debug_assert!(
                applied.total().is_finite(),
                "non-finite drift-replay prediction for {strategy} ({n} samples)"
            );
            (raw.total() * n, applied.total() * n)
        });
        if self.sink.is_enabled() {
            self.sink.name_process(PID_ENGINE, "engine");
            self.host_span("tune", model_eval_ns as f64);
            self.sink.span(
                format!("infer: {} ({} samples)", strategy.name(), samples.n_samples()),
                PID_ENGINE,
                1,
                self.clock_ns,
                run.kernel.total_ns,
            );
            let (_, applied_ns) = replay.expect("replayed when the sink records");
            let drift = DriftRecord::new(
                strategy.name(),
                samples.n_samples(),
                applied_ns,
                run.kernel.total_ns,
            );
            // The decision record joins the sweep to the launch it produced;
            // its predicted/simulated/error fields are the drift record's,
            // so the two exports always agree (`tests/decision_schema.rs`).
            self.sink.push_decision(DecisionRecord {
                device: 0,
                batch: self.sink.counter_value(Counter::EngineBatches),
                n_samples: samples.n_samples() as u64,
                forced: force.is_some(),
                chosen_strategy: strategy.name().to_string(),
                chosen_block_threads: block_threads as u64,
                predicted_ns: drift.predicted_ns,
                simulated_ns: drift.simulated_ns,
                relative_error: drift.relative_error,
                calibration_generation: self.calibrator.generation(),
                cache_hit,
                candidates: audit_candidates.unwrap_or_default(),
            });
            self.sink.push_drift(drift);
            // DRAM footprint gauges at the batch's simulated completion time
            // (DESIGN.md §2.14), still on the caller thread.
            let done_ns = self.clock_ns + run.kernel.total_ns;
            self.sink.ts_gauge(
                0,
                timeseries::MEM_IN_USE_BYTES,
                done_ns,
                self.mem.in_use_bytes() as f64,
            );
            self.sink.ts_gauge(
                0,
                timeseries::MEM_HIGH_WATER_BYTES,
                done_ns,
                self.mem.high_water_bytes() as f64,
            );
        }
        self.clock_ns += run.kernel.total_ns;
        // Close the tuning loop (DESIGN.md §2.16): fold this launch's drift
        // observation and refit on cadence. Both inputs derive from the
        // simulated clock, so calibration cannot perturb byte-identity. A
        // generation bump invalidates the tuning cache — by dropping
        // entries, never by mutating them.
        if cal_enabled {
            let (raw_ns, _) = replay.expect("replayed when calibration is on");
            self.calibrator.observe(strategy, raw_ns, run.kernel.total_ns);
            if self.calibrator.maybe_recalibrate() {
                self.tuning_cache.clear();
            }
        }
        let predictions = if self.options.functional {
            self.device_forest.predict_batch(samples)
        } else {
            Vec::new()
        };
        // Algorithm 1 line 16: count edge probabilities during inference.
        if let Some(counter) = self.counter.as_mut() {
            counter.observe(&self.forest, samples);
        }
        InferenceResult {
            predictions,
            strategy,
            run,
            ranked,
            inputs,
            model_eval_ns,
            chunks: 1,
            mem_in_use_bytes: self.mem.in_use_bytes(),
            mem_high_water_bytes: self.mem.high_water_bytes(),
        }
    }

    /// Degraded-mode inference for a batch whose staging buffer exceeds the
    /// remaining DRAM: split into the largest chunks that fit, infer them
    /// sequentially (later chunks pinned to the first chunk's strategy so
    /// the merged result is coherent), and merge predictions and simulated
    /// kernel time.
    fn infer_chunked(
        &mut self,
        samples: &SampleMatrix,
        force: Option<Strategy>,
    ) -> InferenceResult {
        let bytes_per_sample = (samples.n_attributes() * 4) as u64;
        // Largest chunk whose 256-byte-aligned span fits what is left
        // (`ensure_sample_buf` already released any cached buffer when it
        // failed, so `available_bytes` is exact).
        let usable = self.mem.available_bytes() / ALLOC_ALIGN * ALLOC_ALIGN;
        let max_samples = (usable / bytes_per_sample) as usize;
        assert!(
            max_samples > 0,
            "device DRAM cannot hold even one sample alongside the forest image"
        );
        let n = samples.n_samples();
        let split_t0 = self.clock_ns;
        let mut merged: Option<InferenceResult> = None;
        let mut chunks = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + max_samples).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let chunk = samples.select(&idx);
            let buf = self
                .ensure_sample_buf(sample_bytes(&chunk))
                .expect("chunk was sized to fit the remaining DRAM");
            let force_now = force.or_else(|| merged.as_ref().map(|m| m.strategy));
            let r = self.infer_batch(&chunk, force_now, buf);
            merged = Some(match merged {
                None => r,
                Some(m) => merge_chunk_results(m, r),
            });
            chunks += 1;
            start = end;
        }
        let mut out = merged.expect("non-empty batch");
        out.chunks = chunks;
        out.mem_in_use_bytes = self.mem.in_use_bytes();
        out.mem_high_water_bytes = self.mem.high_water_bytes();
        self.sink.add(Counter::EngineChunkSplits, 1);
        // Guard the format!: span() is a no-op when disabled, but the label
        // would still allocate on the hot path (CLAUDE.md invariant).
        if self.sink.is_enabled() {
            self.sink.span(
                format!("chunked infer ({chunks} chunks, OOM retry)"),
                PID_ENGINE,
                2,
                split_t0,
                self.clock_ns - split_t0,
            );
        }
        out
    }

    /// Whether a strategy is feasible for this engine's forest/device on a
    /// given batch: launch-geometry (shared-memory) checks plus device
    /// DRAM — the batch must be stageable *unsplit* next to the live forest
    /// image.
    #[must_use]
    pub fn feasible(&self, strategy: Strategy, samples: &SampleMatrix) -> bool {
        let needed = sample_bytes(samples);
        // The cached staging buffer would be recycled for this batch, so its
        // span counts as available.
        let reusable = self.sample_buf.map_or(0, |b| aligned_span(b.bytes));
        if aligned_span(needed) > self.mem.available_bytes().saturating_add(reusable) {
            return false;
        }
        let ctx = LaunchContext {
            device: &self.device,
            forest: &self.device_forest,
            samples,
            // Geometry only inspects sizes, never dereferences — a
            // phantom buffer avoids touching the real allocator.
            sample_buf: GlobalBuffer {
                base: GLOBAL_BASE,
                bytes: needed,
            },
            detail: Detail::Sampled(1),
            block_threads: THREADS_PER_BLOCK,
            telemetry: TelemetryCtx::disabled(),
        };
        strategy::geometry(strategy, &ctx).is_some()
    }

    /// The engine's telemetry sink (disabled unless constructed via
    /// [`Engine::with_telemetry`]).
    #[must_use]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Current position on the simulated timeline (ns): the sum of every
    /// inferred batch's simulated kernel time, unless overridden.
    #[must_use]
    pub fn sim_clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Repositions the simulated-timeline cursor. The serving simulator sets
    /// this to each batch's dispatch time so kernel spans land where the
    /// batch actually ran.
    pub fn set_sim_clock_ns(&mut self, t_ns: f64) {
        self.clock_ns = t_ns;
    }

    /// Replaces the forest (incremental learning, §4.2/§6.2): re-measures
    /// edge probabilities on `recount` when given, then reconverts the
    /// format. Any probability-tracking counts are reset (the structure
    /// changed).
    pub fn update_forest(&mut self, forest: Forest, recount: Option<&SampleMatrix>) {
        self.forest = match recount {
            Some(samples) => tahoe_forest::probability::annotate_edge_probabilities(
                &forest, samples,
            ),
            None => forest,
        };
        if self.options.track_probabilities {
            self.counter = Some(EdgeCounter::new(&self.forest));
        }
        self.convert();
    }

    /// Samples observed by the inference-time probability counter (0 when
    /// tracking is off).
    #[must_use]
    pub fn observed_samples(&self) -> u64 {
        self.counter.as_ref().map_or(0, EdgeCounter::observations)
    }

    /// Re-annotates the forest from the probabilities observed during
    /// inference and rebuilds the adaptive layout (the refresh step of the
    /// paper's incremental-learning workflow). No-op without tracked
    /// observations.
    pub fn refresh_probabilities(&mut self) {
        let Some(counter) = self.counter.as_ref() else {
            return;
        };
        if counter.observations() == 0 {
            return;
        }
        self.forest = counter.annotate(&self.forest);
        self.convert();
    }

    /// The device this engine targets.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Measured hardware parameters (Algorithm 1 line 4).
    #[must_use]
    pub fn hardware_params(&self) -> &MeasuredParams {
        &self.hw
    }

    /// The engine's simulated device-memory heap (capacity, in-use and
    /// high-water accounting).
    #[must_use]
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// The device-formatted forest.
    #[must_use]
    pub fn device_forest(&self) -> &DeviceForest {
        &self.device_forest
    }

    /// The host forest currently loaded.
    #[must_use]
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// CPU-side conversion report (§7.4).
    #[must_use]
    pub fn conversion(&self) -> &ConversionReport {
        &self.conversion
    }

    /// Engine options.
    #[must_use]
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Online recalibration state (identity scales, generation 0 unless
    /// [`EngineOptions::calibration`] is on and drift has accumulated).
    #[must_use]
    pub fn calibrator(&self) -> &Calibrator {
        &self.calibrator
    }

    /// Distinct batch shapes currently memoized in the tuning-decision
    /// cache.
    #[must_use]
    pub fn tuning_cache_len(&self) -> usize {
        self.tuning_cache.len()
    }
}

/// Bytes a batch's staging buffer needs (row-major f32).
fn sample_bytes(samples: &SampleMatrix) -> u64 {
    (samples.n_samples() * samples.n_attributes() * 4) as u64
}

/// The 256-byte-aligned span `bytes` occupies in simulated DRAM.
fn aligned_span(bytes: u64) -> u64 {
    bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN
}

/// Merges a later chunk's result into the accumulated one: predictions
/// concatenate (chunks are consecutive sample ranges), host-side model time
/// adds up, and the simulated runs merge as sequential launches. The
/// ranking and model inputs of the first chunk are kept as representative.
fn merge_chunk_results(mut acc: InferenceResult, next: InferenceResult) -> InferenceResult {
    acc.predictions.extend(next.predictions);
    acc.model_eval_ns += next.model_eval_ns;
    acc.run = merge_runs(acc.run, next.run);
    acc
}

/// Merges two sequential launches of the same strategy: additive totals,
/// sample-count-weighted means, elementwise-summed memory statistics.
fn merge_runs(mut acc: StrategyRun, next: StrategyRun) -> StrategyRun {
    debug_assert_eq!(acc.strategy, next.strategy, "chunks pin one strategy");
    acc.n_samples += next.n_samples;
    let a = &mut acc.kernel;
    let b = next.kernel;
    let (wa, wb) = (a.sampled_blocks as f64, b.sampled_blocks as f64);
    if wa + wb > 0.0 {
        a.mean_block_wall_ns =
            (a.mean_block_wall_ns * wa + b.mean_block_wall_ns * wb) / (wa + wb);
        a.mean_block_critical_ns =
            (a.mean_block_critical_ns * wa + b.mean_block_critical_ns * wb) / (wa + wb);
    }
    a.grid_blocks += b.grid_blocks;
    a.sampled_blocks += b.sampled_blocks;
    a.total_ns += b.total_ns;
    a.block_reduction_wall_ns += b.block_reduction_wall_ns;
    a.global_reduction_ns += b.global_reduction_ns;
    a.max_block_wall_ns = a.max_block_wall_ns.max(b.max_block_wall_ns);
    a.gmem.requested_bytes += b.gmem.requested_bytes;
    a.gmem.fetched_bytes += b.gmem.fetched_bytes;
    a.gmem.transactions += b.gmem.transactions;
    a.gmem.steps += b.gmem.steps;
    a.smem.requested_bytes += b.smem.requested_bytes;
    a.smem.fetched_bytes += b.smem.fetched_bytes;
    a.smem.transactions += b.smem.transactions;
    a.smem.steps += b.smem.steps;
    a.thread_busy_per_block.extend(b.thread_busy_per_block);
    for (level, stats) in b.levels {
        let entry = a.levels.entry(level).or_default();
        entry.distance_sum += stats.distance_sum;
        entry.distance_steps += stats.distance_steps;
        entry.access.requested_bytes += stats.access.requested_bytes;
        entry.access.fetched_bytes += stats.access.fetched_bytes;
        entry.access.transactions += stats.access.transactions;
        entry.access.steps += stats.access.steps;
    }
    a.steps += b.steps;
    a.active_lane_steps += b.active_lane_steps;
    acc
}

/// A 1-tree placeholder replaced by `convert()` during construction.
fn placeholder_device_forest() -> DeviceForest {
    use tahoe_datasets::{ForestKind, Task};
    use tahoe_forest::Tree;
    let forest = Forest::new(
        vec![Tree::leaf(0.0)],
        1,
        ForestKind::Gbdt,
        Task::Regression,
        0.0,
    );
    let plan = LayoutPlan::identity(&forest);
    DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut DeviceMemory::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::{predict_dataset, train_for_spec};

    fn setup(name: &str) -> (Forest, SampleMatrix) {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        (forest, infer.samples)
    }

    #[test]
    fn tahoe_predictions_match_cpu_reference() {
        let (forest, samples) = setup("letter");
        let reference = predict_dataset(&forest, &samples);
        let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let result = engine.infer(&samples);
        assert_eq!(result.predictions.len(), reference.len());
        for (a, b) in result.predictions.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fil_and_tahoe_agree_on_predictions() {
        let (forest, samples) = setup("ijcnn1");
        let mut fil = Engine::fil(DeviceSpec::tesla_p100(), forest.clone());
        let mut tahoe = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let a = fil.infer(&samples);
        let b = tahoe.infer(&samples);
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert!((x - y).abs() < 1e-4);
        }
        assert_eq!(a.strategy, Strategy::SharedData, "FIL always uses shared data");
    }

    #[test]
    fn tahoe_is_no_slower_than_fil_and_moves_fewer_bytes() {
        // At Smoke scale blocks can be latency-bound, where layout cannot
        // change the step count — Tahoe then ties FIL on time but must still
        // fetch fewer bytes (better coalescing + smaller nodes). The
        // bandwidth-bound speedups are covered by the Ci-scale experiments.
        let (forest, samples) = setup("higgs");
        let mut fil = Engine::fil(DeviceSpec::tesla_p100(), forest.clone());
        let mut tahoe = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let a = fil.infer(&samples);
        let b = tahoe.infer(&samples);
        assert!(
            b.run.kernel.total_ns <= a.run.kernel.total_ns * 1.001,
            "tahoe {} > fil {}",
            b.run.kernel.total_ns,
            a.run.kernel.total_ns
        );
        assert!(
            b.run.kernel.gmem.fetched_bytes < a.run.kernel.gmem.fetched_bytes,
            "tahoe fetched {} !< fil fetched {}",
            b.run.kernel.gmem.fetched_bytes,
            a.run.kernel.gmem.fetched_bytes
        );
    }

    #[test]
    fn packed_encoding_matches_reference_and_shrinks_image() {
        let (forest, samples) = setup("letter");
        let reference = predict_dataset(&forest, &samples);
        let classic = Engine::tahoe(DeviceSpec::tesla_p100(), forest.clone());
        let options = EngineOptions {
            node_encoding: NodeEncodingChoice::Auto,
            ..EngineOptions::tahoe()
        };
        let mut packed = Engine::new(DeviceSpec::tesla_p100(), forest, options);
        assert_eq!(packed.device_forest().encoding(), NodeEncoding::Packed);
        assert!(
            packed.device_forest().image_bytes() < classic.device_forest().image_bytes(),
            "packed {} !< classic {}",
            packed.device_forest().image_bytes(),
            classic.device_forest().image_bytes()
        );
        let result = packed.infer(&samples);
        assert_eq!(result.predictions.len(), reference.len());
        for (a, b) in result.predictions.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn forced_strategy_is_used() {
        let (forest, samples) = setup("letter");
        let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let r = engine.infer_with(&samples, Some(Strategy::Direct));
        assert_eq!(r.strategy, Strategy::Direct);
    }

    #[test]
    fn conversion_report_is_populated_for_tahoe_only() {
        let (forest, _) = setup("ijcnn1");
        let tahoe = Engine::tahoe(DeviceSpec::tesla_v100(), forest.clone());
        assert!(tahoe.conversion().rearrange.simhash_ns > 0);
        assert!(tahoe.conversion().convert_ns > 0);
        let fil = Engine::fil(DeviceSpec::tesla_v100(), forest);
        assert_eq!(fil.conversion().rearrange.simhash_ns, 0);
    }

    #[test]
    fn update_forest_keeps_predictions_consistent() {
        let (forest, samples) = setup("letter");
        let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let before = engine.infer(&samples);
        // Incremental learning: retrain on the inference split and update.
        let (forest2, _) = setup("letter");
        engine.update_forest(forest2, Some(&samples));
        let after = engine.infer(&samples);
        assert_eq!(before.predictions.len(), after.predictions.len());
        // Probabilities changed, but predictions must still match reference.
        let reference = predict_dataset(engine.forest(), &samples);
        for (a, b) in after.predictions.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn probability_tracking_accumulates_and_refreshes() {
        let (forest, samples) = setup("letter");
        let options = EngineOptions {
            track_probabilities: true,
            ..EngineOptions::tahoe()
        };
        let mut engine = Engine::new(DeviceSpec::tesla_p100(), forest, options);
        assert_eq!(engine.observed_samples(), 0);
        let before = engine.infer(&samples);
        assert_eq!(engine.observed_samples(), samples.n_samples() as u64);
        let _ = engine.infer(&samples);
        assert_eq!(engine.observed_samples(), 2 * samples.n_samples() as u64);
        engine.refresh_probabilities();
        // Predictions are invariant under the probability refresh.
        let after = engine.infer(&samples);
        for (a, b) in before.predictions.iter().zip(&after.predictions) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn refresh_without_tracking_is_a_noop() {
        let (forest, samples) = setup("letter");
        let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let _ = engine.infer(&samples);
        assert_eq!(engine.observed_samples(), 0);
        let image_before = engine.device_forest().image_bytes();
        engine.refresh_probabilities();
        assert_eq!(engine.device_forest().image_bytes(), image_before);
    }

    #[test]
    fn tuning_cache_hits_on_repeated_batches_without_changing_selection() {
        // Default cache state (on, no override) — safe alongside parallel
        // in-crate tests, which never flip the process-wide toggle.
        let (forest, samples) = setup("letter");
        let sink = TelemetrySink::recording();
        let mut engine = Engine::with_telemetry(
            DeviceSpec::tesla_p100(),
            forest,
            EngineOptions::tahoe(),
            sink.clone(),
        );
        let first = engine.infer(&samples);
        let second = engine.infer(&samples);
        assert_eq!(engine.tuning_cache_len(), 1, "one shape, one entry");
        assert_eq!(sink.counter_value(Counter::TuningCacheMisses), 1);
        assert_eq!(sink.counter_value(Counter::TuningCacheHits), 1);
        // The cached plan list is bit-identical to the fresh sweep's.
        assert_eq!(first.strategy, second.strategy);
        assert_eq!(first.ranked.len(), second.ranked.len());
        for (a, b) in first.ranked.iter().zip(&second.ranked) {
            assert_eq!(a.total().to_bits(), b.total().to_bits());
        }
        let decisions = sink.decisions().decisions;
        assert_eq!(decisions.len(), 2);
        assert!(!decisions[0].cache_hit, "first batch is a cold miss");
        assert!(decisions[1].cache_hit, "second batch replays the cache");
        assert_eq!(
            decisions[0].chosen_block_threads,
            decisions[1].chosen_block_threads
        );
    }

    #[test]
    fn forest_rebuild_invalidates_the_tuning_cache() {
        let (forest, samples) = setup("letter");
        let sink = TelemetrySink::recording();
        let mut engine = Engine::with_telemetry(
            DeviceSpec::tesla_p100(),
            forest,
            EngineOptions::tahoe(),
            sink.clone(),
        );
        let _ = engine.infer(&samples);
        let (forest2, _) = setup("letter");
        engine.update_forest(forest2, None);
        let _ = engine.infer(&samples);
        assert_eq!(
            sink.counter_value(Counter::TuningCacheMisses),
            2,
            "reconversion drops every cached entry"
        );
    }

    #[test]
    fn calibration_reduces_model_error_on_repeated_batches() {
        use crate::perfmodel::calibrate::RECALIBRATE_INTERVAL;
        let (forest, samples) = setup("letter");
        let sink = TelemetrySink::recording();
        let options = EngineOptions {
            calibration: true,
            ..EngineOptions::tahoe()
        };
        let mut engine =
            Engine::with_telemetry(DeviceSpec::tesla_p100(), forest, options, sink.clone());
        // Pin the strategy so the drift stream stays on one bucket: the
        // test isolates the calibrator loop from selection switching (which
        // free selection may legitimately do once scales move).
        let batches = 3 * RECALIBRATE_INTERVAL as usize;
        for _ in 0..batches {
            let _ = engine.infer_with(&samples, Some(Strategy::Direct));
        }
        assert!(
            engine.calibrator().generation() > 0,
            "a repeated biased workload must trigger a refit"
        );
        let decisions = sink.decisions().decisions;
        let err = |gen0: bool| {
            let picked: Vec<f64> = decisions
                .iter()
                .filter(|d| (d.calibration_generation == 0) == gen0)
                .map(|d| d.relative_error.abs())
                .collect();
            assert!(!picked.is_empty(), "both generations must appear");
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        let uncalibrated = err(true);
        let calibrated = err(false);
        assert!(
            calibrated < uncalibrated,
            "mean |model err| must drop once calibrated: {calibrated} !< {uncalibrated}"
        );
        // On an identical repeated batch the least-squares fit is exact, so
        // the calibrated error collapses to rounding noise.
        assert!(calibrated < 1e-6, "calibrated error is ~0: {calibrated}");
        // A generation bump invalidates the cache: more than one miss.
        assert!(sink.counter_value(Counter::TuningCacheMisses) > 1);
        assert_eq!(
            sink.counter_value(Counter::TuningCacheHits)
                + sink.counter_value(Counter::TuningCacheMisses),
            batches as u64
        );
    }

    #[test]
    fn model_eval_is_fast() {
        let (forest, samples) = setup("letter");
        let mut engine = Engine::tahoe(DeviceSpec::tesla_p100(), forest);
        let r = engine.infer(&samples);
        // §7.4: model evaluation is microseconds, not milliseconds.
        assert!(r.model_eval_ns < 5_000_000, "model eval {} ns", r.model_eval_ns);
    }
}
