//! Device node encoding.
//!
//! A device node packs the per-node fields the inference kernels read:
//! a flag byte, the attribute index (variable width — the paper's §4.3
//! storage optimization), and the threshold or leaf value. Sparse-mode nodes
//! additionally carry explicit child slots; dense-mode nodes derive children
//! from heap arithmetic and omit them.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Slot value meaning "no node".
pub const NO_SLOT: u32 = u32::MAX;

/// Flag byte marking an unoccupied (NULL) dense-mode slot.
pub const NULL_FLAGS: u8 = 0xFF;

/// Attribute-index width (paper §4.3: "the length is just enough to index
/// all attributes").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrWidth {
    /// One byte (≤ 256 attributes).
    U8,
    /// Two bytes (≤ 65 536 attributes).
    U16,
    /// Four bytes (the traditional fixed-length representation).
    U32,
}

impl AttrWidth {
    /// Minimal width able to index `n_attributes`.
    #[must_use]
    pub fn minimal(n_attributes: u32) -> Self {
        if n_attributes <= u32::from(u8::MAX) + 1 {
            AttrWidth::U8
        } else if n_attributes <= u32::from(u16::MAX) + 1 {
            AttrWidth::U16
        } else {
            AttrWidth::U32
        }
    }

    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            AttrWidth::U8 => 1,
            AttrWidth::U16 => 2,
            AttrWidth::U32 => 4,
        }
    }
}

/// Width of one packed structural entry (the struct-of-arrays encoding).
///
/// A packed entry bit-packs the attribute index with the three per-node
/// flags into a single 1-, 2-, or 4-byte integer (the reference CUDA code's
/// `encode_node_adaptive` scheme): the **top three bits** hold
/// `leaf | default_left << 1 | inverted << 2` and the low `8·bytes − 3`
/// bits hold the attribute index. Thresholds/leaf values live in a separate
/// f32 lane, so the structural lane is all a warp touches until the final
/// value read.
///
/// The all-ones entry is reserved as the NULL (padding) sentinel, which is
/// why [`Self::capacity`] excludes the all-ones attribute index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackedWidth {
    /// One byte: 5 attribute bits (≤ 31 attributes).
    U8,
    /// Two bytes: 13 attribute bits (≤ 8 191 attributes).
    U16,
    /// Four bytes: 29 attribute bits.
    U32,
}

/// Flag bits packed into the top of each structural entry.
const PACKED_FLAG_BITS: u32 = 3;

impl PackedWidth {
    /// Entry width in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            PackedWidth::U8 => 1,
            PackedWidth::U16 => 2,
            PackedWidth::U32 => 4,
        }
    }

    /// Bits available for the attribute index.
    #[must_use]
    pub fn fid_bits(self) -> u32 {
        8 * self.bytes() as u32 - PACKED_FLAG_BITS
    }

    /// Largest attribute count this width can index (the all-ones index is
    /// the NULL sentinel, so it is excluded).
    #[must_use]
    pub fn capacity(self) -> u32 {
        (1u32 << self.fid_bits()) - 1
    }

    /// Minimal width able to index `n_attributes`, or `None` when even the
    /// 4-byte entry cannot (fall back to the classic encoding).
    #[must_use]
    pub fn minimal(n_attributes: u32) -> Option<Self> {
        [PackedWidth::U8, PackedWidth::U16, PackedWidth::U32]
            .into_iter()
            .find(|w| n_attributes <= w.capacity())
    }

    /// The NULL (padding) sentinel: all bits set.
    #[must_use]
    pub fn null_entry(self) -> u32 {
        match self {
            PackedWidth::U8 => 0xFF,
            PackedWidth::U16 => 0xFFFF,
            PackedWidth::U32 => u32::MAX,
        }
    }

    /// Writes one entry (little-endian at widths > 1 byte).
    pub fn put(self, entry: u32, out: &mut impl BufMut) {
        match self {
            PackedWidth::U8 => out.put_u8(entry as u8),
            PackedWidth::U16 => out.put_u16_le(entry as u16),
            PackedWidth::U32 => out.put_u32_le(entry),
        }
    }

    /// Reads one entry.
    pub fn get(self, buf: &mut impl Buf) -> u32 {
        match self {
            PackedWidth::U8 => u32::from(buf.get_u8()),
            PackedWidth::U16 => u32::from(buf.get_u16_le()),
            PackedWidth::U32 => buf.get_u32_le(),
        }
    }
}

/// Decoded device node (the working representation kernels traverse).
///
/// For decision nodes the routing rule is:
///
/// ```text
/// go_left = missing(value) ? default_left : (value < threshold) ^ inverted
/// ```
///
/// `inverted` records that the probability-based rearrangement (§4.1) swapped
/// this node's children in the layout, so "layout left" is the *more likely*
/// branch; the flag keeps predictions identical to the original tree.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceNode {
    /// Attribute index tested (0 for leaves).
    pub attribute: u32,
    /// Split threshold, or the leaf value for leaves.
    pub scalar: f32,
    /// Left-child slot ([`NO_SLOT`] for leaves).
    pub left: u32,
    /// Right-child slot ([`NO_SLOT`] for leaves).
    pub right: u32,
    /// Whether this is a leaf.
    pub leaf: bool,
    /// Default direction (in layout orientation) on missing values.
    pub default_left: bool,
    /// Whether the comparison is inverted (children were swapped).
    pub inverted: bool,
}

impl DeviceNode {
    /// A leaf node.
    #[must_use]
    pub fn leaf(value: f32) -> Self {
        Self {
            attribute: 0,
            scalar: value,
            left: NO_SLOT,
            right: NO_SLOT,
            leaf: true,
            default_left: false,
            inverted: false,
        }
    }

    /// Routes a sample value through this node; `None` for leaves.
    #[must_use]
    pub fn next_slot(&self, value: f32) -> Option<u32> {
        if self.leaf {
            return None;
        }
        let go_left = if value.is_nan() {
            self.default_left
        } else {
            (value < self.scalar) ^ self.inverted
        };
        Some(if go_left { self.left } else { self.right })
    }

    fn flags(&self) -> u8 {
        u8::from(self.leaf) | (u8::from(self.default_left) << 1) | (u8::from(self.inverted) << 2)
    }

    /// Encoded size in bytes for a given attribute width and storage mode.
    #[must_use]
    pub fn encoded_bytes(attr: AttrWidth, explicit_children: bool) -> usize {
        1 + attr.bytes() + 4 + if explicit_children { 8 } else { 0 }
    }

    /// Packs the node into `out` (the simulated device image).
    ///
    /// Writes exactly [`Self::encoded_bytes`]`(attr, explicit_children)`
    /// bytes — [`crate::format::DeviceForest`]'s image sizing and the
    /// `DeviceMemory` accounting both assume this, so a desync would silently
    /// corrupt every simulated node address (debug builds assert it).
    pub fn encode(&self, attr: AttrWidth, explicit_children: bool, out: &mut impl BufMut) {
        let before = out.remaining_mut();
        out.put_u8(self.flags());
        match attr {
            AttrWidth::U8 => out.put_u8(self.attribute as u8),
            AttrWidth::U16 => out.put_u16_le(self.attribute as u16),
            AttrWidth::U32 => out.put_u32_le(self.attribute),
        }
        out.put_f32_le(self.scalar);
        if explicit_children {
            out.put_u32_le(self.left);
            out.put_u32_le(self.right);
        }
        debug_assert_eq!(
            before - out.remaining_mut(),
            Self::encoded_bytes(attr, explicit_children),
            "encode must write exactly encoded_bytes({attr:?}, {explicit_children})"
        );
    }

    /// Encodes a NULL (padding) slot of the same size as [`Self::encode`].
    pub fn encode_null(attr: AttrWidth, explicit_children: bool, out: &mut impl BufMut) {
        let before = out.remaining_mut();
        out.put_u8(NULL_FLAGS);
        out.put_bytes(0, Self::encoded_bytes(attr, explicit_children) - 1);
        debug_assert_eq!(
            before - out.remaining_mut(),
            Self::encoded_bytes(attr, explicit_children),
            "encode_null must write exactly encoded_bytes({attr:?}, {explicit_children})"
        );
    }

    /// Decodes a node; `None` for NULL slots.
    ///
    /// Dense-mode nodes (no explicit children) are returned with
    /// [`NO_SLOT`] children; the caller fills them in from heap arithmetic.
    #[must_use]
    pub fn decode(attr: AttrWidth, explicit_children: bool, buf: &mut impl Buf) -> Option<Self> {
        let flags = buf.get_u8();
        if flags == NULL_FLAGS {
            buf.advance(Self::encoded_bytes(attr, explicit_children) - 1);
            return None;
        }
        let attribute = match attr {
            AttrWidth::U8 => u32::from(buf.get_u8()),
            AttrWidth::U16 => u32::from(buf.get_u16_le()),
            AttrWidth::U32 => buf.get_u32_le(),
        };
        let scalar = buf.get_f32_le();
        let (left, right) = if explicit_children {
            (buf.get_u32_le(), buf.get_u32_le())
        } else {
            (NO_SLOT, NO_SLOT)
        };
        Some(Self {
            attribute,
            scalar,
            left,
            right,
            leaf: flags & 1 != 0,
            default_left: flags & 2 != 0,
            inverted: flags & 4 != 0,
        })
    }

    /// Bit-packs this node's attribute index and flags into one structural
    /// entry of the given width (the packed struct-of-arrays encoding).
    ///
    /// The scalar and (sparse mode) child slots live in their own lanes; see
    /// [`crate::format::DeviceForest`].
    #[must_use]
    pub fn packed_entry(&self, width: PackedWidth) -> u32 {
        debug_assert!(
            self.attribute < width.capacity(),
            "attribute {} does not fit {width:?} (capacity {})",
            self.attribute,
            width.capacity()
        );
        (u32::from(self.flags()) << width.fid_bits()) | self.attribute
    }

    /// Rebuilds a node from its packed structural entry plus the per-lane
    /// scalar and child slots; `None` for the NULL sentinel entry.
    ///
    /// Dense-mode callers pass [`NO_SLOT`] children and fill them in from
    /// heap arithmetic, mirroring [`Self::decode`].
    #[must_use]
    pub fn from_packed(
        width: PackedWidth,
        entry: u32,
        scalar: f32,
        left: u32,
        right: u32,
    ) -> Option<Self> {
        if entry == width.null_entry() {
            return None;
        }
        let flags = (entry >> width.fid_bits()) as u8;
        Some(Self {
            attribute: entry & width.capacity(),
            scalar,
            left,
            right,
            leaf: flags & 1 != 0,
            default_left: flags & 2 != 0,
            inverted: flags & 4 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision() -> DeviceNode {
        DeviceNode {
            attribute: 300,
            scalar: 1.5,
            left: 10,
            right: 20,
            leaf: false,
            default_left: true,
            inverted: false,
        }
    }

    #[test]
    fn minimal_width_thresholds() {
        assert_eq!(AttrWidth::minimal(1), AttrWidth::U8);
        assert_eq!(AttrWidth::minimal(255), AttrWidth::U8);
        assert_eq!(AttrWidth::minimal(256), AttrWidth::U8);
        assert_eq!(AttrWidth::minimal(257), AttrWidth::U16);
        assert_eq!(AttrWidth::minimal(65_535), AttrWidth::U16);
        assert_eq!(AttrWidth::minimal(65_536), AttrWidth::U16);
        assert_eq!(AttrWidth::minimal(65_537), AttrWidth::U32);
        assert_eq!(AttrWidth::minimal(u32::MAX), AttrWidth::U32);
    }

    #[test]
    fn packed_width_thresholds() {
        // 3 flag bits leave 5/13/29 attribute bits; the all-ones index is
        // the NULL sentinel, so capacities are 31/8 191/2^29 − 1.
        assert_eq!(PackedWidth::minimal(1), Some(PackedWidth::U8));
        assert_eq!(PackedWidth::minimal(31), Some(PackedWidth::U8));
        assert_eq!(PackedWidth::minimal(32), Some(PackedWidth::U16));
        assert_eq!(PackedWidth::minimal(8_191), Some(PackedWidth::U16));
        assert_eq!(PackedWidth::minimal(8_192), Some(PackedWidth::U32));
        assert_eq!(PackedWidth::minimal((1 << 29) - 1), Some(PackedWidth::U32));
        assert_eq!(PackedWidth::minimal(1 << 29), None);
    }

    #[test]
    fn packed_entry_roundtrips_all_widths() {
        for width in [PackedWidth::U8, PackedWidth::U16, PackedWidth::U32] {
            for flags in 0..8u8 {
                let n = DeviceNode {
                    attribute: width.capacity() - 1,
                    scalar: -3.25,
                    left: 7,
                    right: 8,
                    leaf: flags & 1 != 0,
                    default_left: flags & 2 != 0,
                    inverted: flags & 4 != 0,
                };
                let entry = n.packed_entry(width);
                let mut buf = Vec::new();
                width.put(entry, &mut buf);
                assert_eq!(buf.len(), width.bytes(), "{width:?}");
                let read = width.get(&mut buf.as_slice());
                assert_eq!(read, entry, "{width:?} flags={flags}");
                let back =
                    DeviceNode::from_packed(width, read, n.scalar, n.left, n.right).unwrap();
                assert_eq!(back, n, "{width:?} flags={flags}");
            }
        }
    }

    #[test]
    fn packed_null_sentinel_is_distinct_from_every_node() {
        // A NULL entry is all-ones: flags = 7 plus the reserved all-ones
        // attribute index. Real nodes never use the reserved index, so the
        // sentinel cannot collide.
        for width in [PackedWidth::U8, PackedWidth::U16, PackedWidth::U32] {
            assert!(DeviceNode::from_packed(width, width.null_entry(), 0.0, 0, 0).is_none());
            let leaf = DeviceNode::leaf(1.0);
            assert_ne!(leaf.packed_entry(width), width.null_entry());
            let mut buf = Vec::new();
            width.put(width.null_entry(), &mut buf);
            assert_eq!(width.get(&mut buf.as_slice()), width.null_entry());
        }
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(DeviceNode::encoded_bytes(AttrWidth::U8, false), 6);
        assert_eq!(DeviceNode::encoded_bytes(AttrWidth::U16, true), 15);
        assert_eq!(DeviceNode::encoded_bytes(AttrWidth::U32, true), 17);
    }

    #[test]
    fn roundtrip_sparse() {
        let n = decision();
        let mut buf = Vec::new();
        n.encode(AttrWidth::U16, true, &mut buf);
        assert_eq!(buf.len(), DeviceNode::encoded_bytes(AttrWidth::U16, true));
        let decoded = DeviceNode::decode(AttrWidth::U16, true, &mut buf.as_slice()).unwrap();
        assert_eq!(decoded, n);
    }

    #[test]
    fn roundtrip_dense_drops_children() {
        let n = decision();
        let mut buf = Vec::new();
        n.encode(AttrWidth::U32, false, &mut buf);
        let decoded = DeviceNode::decode(AttrWidth::U32, false, &mut buf.as_slice()).unwrap();
        assert_eq!(decoded.left, NO_SLOT);
        assert_eq!(decoded.attribute, n.attribute);
        assert_eq!(decoded.scalar, n.scalar);
        assert_eq!(decoded.default_left, n.default_left);
    }

    #[test]
    fn encode_writes_exact_sizes_for_every_width_and_mode() {
        // The device-image layout and `DeviceMemory` accounting both trust
        // `encoded_bytes`; a node that writes more or fewer bytes would
        // silently shift every simulated node address after it.
        for attr in [AttrWidth::U8, AttrWidth::U16, AttrWidth::U32] {
            for explicit in [false, true] {
                let want = DeviceNode::encoded_bytes(attr, explicit);
                let mut buf = Vec::new();
                decision().encode(attr, explicit, &mut buf);
                assert_eq!(buf.len(), want, "encode {attr:?} explicit={explicit}");
                let mut null = Vec::new();
                DeviceNode::encode_null(attr, explicit, &mut null);
                assert_eq!(null.len(), want, "encode_null {attr:?} explicit={explicit}");
                assert!(DeviceNode::decode(attr, explicit, &mut null.as_slice()).is_none());
            }
        }
    }

    #[test]
    fn null_roundtrip() {
        let mut buf = Vec::new();
        DeviceNode::encode_null(AttrWidth::U8, true, &mut buf);
        assert_eq!(buf.len(), DeviceNode::encoded_bytes(AttrWidth::U8, true));
        assert!(DeviceNode::decode(AttrWidth::U8, true, &mut buf.as_slice()).is_none());
    }

    #[test]
    fn routing_without_inversion() {
        let n = decision();
        assert_eq!(n.next_slot(1.0), Some(10)); // 1.0 < 1.5 → left.
        assert_eq!(n.next_slot(2.0), Some(20));
        assert_eq!(n.next_slot(f32::NAN), Some(10)); // Default left.
    }

    #[test]
    fn routing_with_inversion_flips_comparison() {
        let mut n = decision();
        n.inverted = true;
        // With inversion, the layout-left child holds the "value >= threshold"
        // branch.
        assert_eq!(n.next_slot(1.0), Some(20));
        assert_eq!(n.next_slot(2.0), Some(10));
        // Default direction is already stored in layout orientation.
        assert_eq!(n.next_slot(f32::NAN), Some(10));
    }

    #[test]
    fn leaf_routes_nowhere() {
        let l = DeviceNode::leaf(2.5);
        assert_eq!(l.next_slot(0.0), None);
        assert!(l.leaf);
        let mut buf = Vec::new();
        l.encode(AttrWidth::U8, true, &mut buf);
        let d = DeviceNode::decode(AttrWidth::U8, true, &mut buf.as_slice()).unwrap();
        assert!(d.leaf);
        assert_eq!(d.scalar, 2.5);
    }
}
