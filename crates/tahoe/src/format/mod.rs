//! Device forest formats: reorg (FIL baseline) and adaptive (Tahoe §4.3).
//!
//! A [`DeviceForest`] is a forest laid out for the simulated GPU: every node
//! is assigned a memory slot (see [`layout`]), encoded into a byte image
//! (see [`node`]), and allocated in simulated global memory. The same type
//! serves both the FIL baseline (identity layout plan, fixed 4-byte attribute
//! index) and Tahoe's adaptive format (similarity tree order, probability
//! child swaps, variable-length attribute index) — a layout plan plus a
//! format config fully determine the result.

pub mod layout;
pub mod node;

use bytes::BufMut;
use tahoe_datasets::{ForestKind, SampleMatrix};
use tahoe_forest::Forest;
use tahoe_gpu_sim::memory::{DeviceMemory, OomError};
use tahoe_gpu_sim::GlobalBuffer;

pub use layout::{assign_slots, assign_slots_paired, LayoutPlan, SlotMap, StorageMode};
pub use node::{AttrWidth, DeviceNode, PackedWidth, NO_SLOT};

use tahoe_forest::Node as HostNode;

/// Dense mode is only used while the NULL-padded slot count stays below this
/// cap; beyond it the padding dominates and sparse mode wins (FIL makes the
/// same dense/sparse decision for deep trees).
pub const DENSE_SLOT_CAP: usize = 1 << 21;

/// Node encoding: classic array-of-structs vs packed struct-of-arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeEncoding {
    /// One record per node: flag byte + attribute index + f32 scalar
    /// (+ explicit children in sparse mode).
    Classic,
    /// Struct-of-arrays lanes (the reference CUDA `encode_node_adaptive`
    /// scheme): a structural-bits lane of [`PackedWidth`] entries, a separate
    /// f32 value lane, and — in sparse mode — a narrow child-offset lane.
    Packed,
}

/// Format configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FormatConfig {
    /// Use the minimal attribute-index width (§4.3) instead of 4 bytes.
    /// Classic encoding only; the packed structural entry is always minimal.
    pub varlen_attr: bool,
    /// Force a storage mode; `None` selects automatically by padded size.
    pub mode: Option<StorageMode>,
    /// Node encoding. A `Packed` request falls back to `Classic` when even a
    /// 4-byte entry cannot index the attribute count (see
    /// [`PackedWidth::minimal`]); [`DeviceForest::encoding`] reports the
    /// resolved choice.
    pub encoding: NodeEncoding,
}

impl FormatConfig {
    /// Tahoe's adaptive-format configuration.
    #[must_use]
    pub fn adaptive() -> Self {
        Self {
            varlen_attr: true,
            mode: None,
            encoding: NodeEncoding::Classic,
        }
    }

    /// The traditional configuration (fixed four-byte attribute index).
    #[must_use]
    pub fn traditional() -> Self {
        Self {
            varlen_attr: false,
            mode: None,
            encoding: NodeEncoding::Classic,
        }
    }

    /// The packed struct-of-arrays configuration.
    #[must_use]
    pub fn packed() -> Self {
        Self {
            varlen_attr: true,
            mode: None,
            encoding: NodeEncoding::Packed,
        }
    }
}

/// One device-memory lane of a [`DeviceForest`] image.
///
/// Classic encoding has a single lane of whole-node records; the packed
/// encoding has a structural-bits lane, an f32 value lane, and (sparse mode)
/// a child-offset lane. Every lane holds one element per slot.
#[derive(Clone, Copy, Debug)]
pub struct NodeLane {
    /// The simulated device allocation backing this lane.
    pub buffer: GlobalBuffer,
    /// Bytes per slot in this lane.
    pub elem_bytes: usize,
}

/// A forest laid out in simulated device memory.
#[derive(Clone, Debug)]
pub struct DeviceForest {
    nodes: Vec<Option<DeviceNode>>,
    levels: Vec<u32>,
    roots: Vec<u32>,
    nodes_per_tree: Vec<u32>,
    node_bytes: usize,
    attr_width: AttrWidth,
    encoding: NodeEncoding,
    packed_width: Option<PackedWidth>,
    child_width: Option<AttrWidth>,
    mode: StorageMode,
    lanes: Vec<NodeLane>,
    n_trees: usize,
    n_attributes: u32,
    kind: ForestKind,
    base_score: f32,
    tree_order: Vec<usize>,
    max_depth: usize,
}

/// Minimal width for the packed sparse child lane: tree-relative offsets up
/// to `max_nodes − 1`, with the all-ones value reserved as the leaf sentinel.
fn child_width_for(max_nodes: u64) -> AttrWidth {
    if max_nodes <= 0xFF {
        AttrWidth::U8
    } else if max_nodes <= 0xFFFF {
        AttrWidth::U16
    } else {
        AttrWidth::U32
    }
}

/// All-ones sentinel of a fixed-width unsigned lane entry.
fn uint_sentinel(width: AttrWidth) -> u32 {
    match width {
        AttrWidth::U8 => 0xFF,
        AttrWidth::U16 => 0xFFFF,
        AttrWidth::U32 => u32::MAX,
    }
}

/// Writes one little-endian unsigned entry of the given width.
fn put_uint(width: AttrWidth, value: u32, out: &mut Vec<u8>) {
    match width {
        AttrWidth::U8 => out.put_u8(value as u8),
        AttrWidth::U16 => out.put_u16_le(value as u16),
        AttrWidth::U32 => out.put_u32_le(value),
    }
}

/// Reads the little-endian unsigned entry at `buf[0..width.bytes()]`.
fn get_uint(width: AttrWidth, buf: &[u8]) -> u32 {
    match width {
        AttrWidth::U8 => u32::from(buf[0]),
        AttrWidth::U16 => u32::from(u16::from_le_bytes([buf[0], buf[1]])),
        AttrWidth::U32 => u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
    }
}

/// One round of splitmix64 — the deterministic mixer behind
/// [`DeviceForest::encoding_key`].
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeviceForest {
    /// Builds a device forest from a host forest, a layout plan, and a format
    /// configuration, allocating its image in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the forest, or if the image does
    /// not fit in `mem` (capacity-aware callers use
    /// [`DeviceForest::try_build`]).
    #[must_use]
    pub fn build(
        forest: &Forest,
        plan: &LayoutPlan,
        config: FormatConfig,
        mem: &mut DeviceMemory,
    ) -> Self {
        Self::try_build(forest, plan, config, mem).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`DeviceForest::build`], but reports simulated device-memory
    /// exhaustion instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the encoded image exceeds the remaining
    /// DRAM capacity of `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the forest.
    pub fn try_build(
        forest: &Forest,
        plan: &LayoutPlan,
        config: FormatConfig,
        mem: &mut DeviceMemory,
    ) -> Result<Self, OomError> {
        let stats = forest.stats();
        let attr_width = if config.varlen_attr {
            AttrWidth::minimal(forest.n_attributes().max(1))
        } else {
            AttrWidth::U32
        };
        // A packed request resolves against the attribute count; forests the
        // packed entry cannot index fall back to the classic encoding.
        let packed_width = match config.encoding {
            NodeEncoding::Packed => PackedWidth::minimal(forest.n_attributes().max(1)),
            NodeEncoding::Classic => None,
        };
        let encoding = if packed_width.is_some() {
            NodeEncoding::Packed
        } else {
            NodeEncoding::Classic
        };
        let mode = config.mode.unwrap_or_else(|| {
            let depth = stats.max_depth as u32;
            let padded = (stats.n_trees as u128) << (depth + 1);
            if depth < 21 && padded <= DENSE_SLOT_CAP as u128 {
                StorageMode::Dense
            } else {
                StorageMode::Sparse
            }
        });
        // Packed sparse needs the paired slot order (trees contiguous,
        // siblings adjacent) so the child lane can store one narrow
        // tree-relative offset; every other combination keeps the classic
        // level-interleaved order.
        let map = if encoding == NodeEncoding::Packed && mode == StorageMode::Sparse {
            assign_slots_paired(forest, plan)
        } else {
            assign_slots(forest, plan, mode)
        };
        let explicit = mode == StorageMode::Sparse;
        let child_width = match (encoding, mode) {
            (NodeEncoding::Packed, StorageMode::Sparse) => {
                let max_nodes = forest
                    .trees()
                    .iter()
                    .map(|t| t.n_nodes() as u64)
                    .max()
                    .unwrap_or(1);
                Some(child_width_for(max_nodes))
            }
            _ => None,
        };
        let node_bytes = match encoding {
            NodeEncoding::Classic => DeviceNode::encoded_bytes(attr_width, explicit),
            NodeEncoding::Packed => {
                packed_width.expect("packed encoding has a width").bytes()
                    + 4
                    + child_width.map_or(0, AttrWidth::bytes)
            }
        };
        let mut nodes: Vec<Option<DeviceNode>> = vec![None; map.n_slots];
        let mut nodes_per_tree = Vec::with_capacity(forest.n_trees());
        for (layout_idx, &orig) in plan.tree_order.iter().enumerate() {
            let tree = &forest.trees()[orig];
            let swaps = &plan.swaps[orig];
            nodes_per_tree.push(tree.n_nodes() as u32);
            for (id, host) in tree.nodes().iter().enumerate() {
                let slot = map.slot_of[layout_idx][id] as usize;
                let device = match *host {
                    HostNode::Leaf { value } => DeviceNode::leaf(value),
                    HostNode::Decision {
                        attribute,
                        threshold,
                        default_left,
                        left,
                        right,
                        ..
                    } => {
                        let swapped = swaps[id];
                        let (lslot, rslot) = if swapped {
                            (
                                map.slot_of[layout_idx][right as usize],
                                map.slot_of[layout_idx][left as usize],
                            )
                        } else {
                            (
                                map.slot_of[layout_idx][left as usize],
                                map.slot_of[layout_idx][right as usize],
                            )
                        };
                        DeviceNode {
                            attribute,
                            scalar: threshold,
                            left: lslot,
                            right: rslot,
                            leaf: false,
                            default_left: default_left ^ swapped,
                            inverted: swapped,
                        }
                    }
                };
                nodes[slot] = Some(device);
            }
        }
        let roots: Vec<u32> = (0..forest.n_trees())
            .map(|layout_idx| map.slot_of[layout_idx][0])
            .collect();
        // One device allocation per lane; roll back the lanes already
        // allocated if a later one does not fit, so a failed build leaves
        // `mem` untouched.
        let lane_widths: Vec<usize> = match encoding {
            NodeEncoding::Classic => vec![node_bytes],
            NodeEncoding::Packed => {
                let mut widths =
                    vec![packed_width.expect("packed encoding has a width").bytes(), 4];
                widths.extend(child_width.map(AttrWidth::bytes));
                widths
            }
        };
        let mut lanes: Vec<NodeLane> = Vec::with_capacity(lane_widths.len());
        for elem_bytes in lane_widths {
            match mem.try_alloc((map.n_slots * elem_bytes) as u64) {
                Ok(buffer) => lanes.push(NodeLane { buffer, elem_bytes }),
                Err(e) => {
                    for lane in lanes {
                        mem.free(lane.buffer);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            nodes,
            levels: map.levels,
            roots,
            nodes_per_tree,
            node_bytes,
            attr_width,
            encoding,
            packed_width,
            child_width,
            mode,
            lanes,
            n_trees: forest.n_trees(),
            n_attributes: forest.n_attributes(),
            kind: forest.kind(),
            base_score: forest.base_score(),
            tree_order: plan.tree_order.clone(),
            max_depth: stats.max_depth,
        })
    }

    /// The simulated global-memory allocations holding the encoded image,
    /// one per lane (what an engine must `free` before dropping or replacing
    /// the forest).
    #[must_use]
    pub fn buffers(&self) -> Vec<GlobalBuffer> {
        self.lanes.iter().map(|l| l.buffer).collect()
    }

    /// The image's device-memory lanes: one whole-node lane for the classic
    /// encoding; structural-bits + value (+ sparse child-offset) lanes for
    /// the packed encoding.
    #[must_use]
    pub fn lanes(&self) -> &[NodeLane] {
        &self.lanes
    }

    /// Simulated device address of `slot`'s entry in lane `lane`.
    #[must_use]
    pub fn lane_addr(&self, lane: usize, slot: u32) -> u64 {
        let l = &self.lanes[lane];
        l.buffer.elem_addr(u64::from(slot), l.elem_bytes as u64)
    }

    /// The resolved node encoding.
    #[must_use]
    pub fn encoding(&self) -> NodeEncoding {
        self.encoding
    }

    /// Structural-entry width (packed encoding only).
    #[must_use]
    pub fn packed_width(&self) -> Option<PackedWidth> {
        self.packed_width
    }

    /// Child-offset lane width (packed sparse only).
    #[must_use]
    pub fn child_width(&self) -> Option<AttrWidth> {
        self.child_width
    }

    /// Deterministic fingerprint of everything about the encoding that a
    /// simulated block trace depends on: the resolved encoding, the per-lane
    /// element widths, and each lane's base address modulo the transaction
    /// size (which fixes the coalescing pattern of every node access).
    ///
    /// [`crate::strategy::LaunchContext::window_key`] folds this into the
    /// block-memo key so the cache can never false-share across encodings.
    #[must_use]
    pub fn encoding_key(&self, transaction_bytes: u64) -> u64 {
        let mut k = splitmix64(match self.encoding {
            NodeEncoding::Classic => 1,
            NodeEncoding::Packed => 2,
        });
        k = splitmix64(k ^ self.node_bytes as u64);
        k = splitmix64(k ^ self.packed_width.map_or(0, |w| w.bytes() as u64));
        k = splitmix64(k ^ self.child_width.map_or(0, |w| w.bytes() as u64));
        for lane in &self.lanes {
            k = splitmix64(
                k ^ (((lane.elem_bytes as u64) << 32)
                    | (lane.buffer.base % transaction_bytes.max(1))),
            );
        }
        k
    }

    /// Encodes the full device image (used for storage accounting and
    /// round-trip validation; kernels traverse the decoded `nodes`).
    ///
    /// Classic encoding concatenates whole-node records; the packed encoding
    /// concatenates its lanes (all structural entries, then all f32 values,
    /// then — sparse mode — all child offsets), mirroring the separate
    /// device allocations.
    #[must_use]
    pub fn encode_image(&self) -> Vec<u8> {
        let explicit = self.mode == StorageMode::Sparse;
        let mut out = Vec::with_capacity(self.nodes.len() * self.node_bytes);
        match self.encoding {
            NodeEncoding::Classic => {
                for slot in &self.nodes {
                    match slot {
                        Some(n) => n.encode(self.attr_width, explicit, &mut out),
                        None => DeviceNode::encode_null(self.attr_width, explicit, &mut out),
                    }
                }
            }
            NodeEncoding::Packed => {
                let pw = self.packed_width.expect("packed encoding has a width");
                for slot in &self.nodes {
                    match slot {
                        Some(n) => pw.put(n.packed_entry(pw), &mut out),
                        None => pw.put(pw.null_entry(), &mut out),
                    }
                }
                for slot in &self.nodes {
                    out.put_f32_le(slot.as_ref().map_or(0.0, |n| n.scalar));
                }
                if let Some(cw) = self.child_width {
                    for (i, slot) in self.nodes.iter().enumerate() {
                        let n = slot.as_ref().expect("packed sparse has no NULL slots");
                        let entry = if n.leaf {
                            uint_sentinel(cw)
                        } else {
                            debug_assert_eq!(
                                n.right,
                                n.left + 1,
                                "paired layout keeps siblings adjacent"
                            );
                            n.left - self.tree_base_of_slot(i as u32)
                        };
                        debug_assert!(n.leaf || entry < uint_sentinel(cw));
                        put_uint(cw, entry, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Decodes an image back into per-slot nodes (children resolved via heap
    /// arithmetic in dense mode, or from the packed child lane in packed
    /// sparse mode). Used by tests to prove the byte format is faithful.
    #[must_use]
    pub fn decode_image(&self, image: &[u8]) -> Vec<Option<DeviceNode>> {
        let explicit = self.mode == StorageMode::Sparse;
        let n_slots = self.nodes.len();
        let mut out = Vec::with_capacity(n_slots);
        match self.encoding {
            NodeEncoding::Classic => {
                let mut cursor = image;
                for slot in 0..n_slots {
                    let mut decoded = DeviceNode::decode(self.attr_width, explicit, &mut cursor);
                    if let Some(n) = decoded.as_mut() {
                        if !explicit && !n.leaf {
                            let (l, r) = self.dense_children(slot as u32);
                            n.left = l;
                            n.right = r;
                        }
                    }
                    out.push(decoded);
                }
            }
            NodeEncoding::Packed => {
                let pw = self.packed_width.expect("packed encoding has a width");
                let (bits, rest) = image.split_at(n_slots * pw.bytes());
                let (values, children) = rest.split_at(n_slots * 4);
                for slot in 0..n_slots {
                    let entry = pw.get(&mut &bits[slot * pw.bytes()..]);
                    let scalar = f32::from_le_bytes(
                        values[slot * 4..slot * 4 + 4].try_into().expect("4 bytes"),
                    );
                    let mut decoded = DeviceNode::from_packed(pw, entry, scalar, NO_SLOT, NO_SLOT);
                    if let Some(n) = decoded.as_mut() {
                        if !n.leaf {
                            match self.child_width {
                                Some(cw) => {
                                    let rel = get_uint(cw, &children[slot * cw.bytes()..]);
                                    n.left = self.tree_base_of_slot(slot as u32) + rel;
                                    n.right = n.left + 1;
                                }
                                None => {
                                    let (l, r) = self.dense_children(slot as u32);
                                    n.left = l;
                                    n.right = r;
                                }
                            }
                        }
                    }
                    out.push(decoded);
                }
            }
        }
        out
    }

    /// Base slot of the tree containing `slot` (packed sparse layout only,
    /// where trees are contiguous and `roots` are the ascending bases).
    fn tree_base_of_slot(&self, slot: u32) -> u32 {
        debug_assert!(self.child_width.is_some(), "tree bases need the paired layout");
        let t = self.roots.partition_point(|&r| r <= slot) - 1;
        self.roots[t]
    }

    /// Dense-mode child slots via heap arithmetic.
    fn dense_children(&self, slot: u32) -> (u32, u32) {
        let n_trees = self.n_trees as u64;
        let slot64 = u64::from(slot);
        let level = self.levels[slot as usize];
        let base = n_trees * ((1u64 << level) - 1);
        let rel = slot64 - base;
        let tree = rel % n_trees;
        let pos = ((1u64 << level) - 1) + rel / n_trees;
        let child = |p: u64| {
            let cl = level + 1;
            let cbase = n_trees * ((1u64 << cl) - 1);
            u32::try_from(cbase + (p - ((1u64 << cl) - 1)) * n_trees + tree)
                .expect("slot fits u32")
        };
        (child(2 * pos + 1), child(2 * pos + 2))
    }

    /// The node in `slot`.
    ///
    /// # Panics
    ///
    /// Panics on a NULL slot — reaching one during traversal is a layout bug.
    #[must_use]
    pub fn node(&self, slot: u32) -> &DeviceNode {
        self.nodes[slot as usize]
            .as_ref()
            .expect("traversal reached a NULL slot")
    }

    /// The node in `slot`, or `None` for a NULL (dense padding) slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn node_opt(&self, slot: usize) -> Option<&DeviceNode> {
        self.nodes[slot].as_ref()
    }

    /// Simulated device address of a slot in lane 0 (the whole node record
    /// in classic encoding; the structural-bits entry in packed encoding).
    #[must_use]
    pub fn node_addr(&self, slot: u32) -> u64 {
        self.lane_addr(0, slot)
    }

    /// Tree level of a slot.
    #[must_use]
    pub fn level_of(&self, slot: u32) -> u32 {
        self.levels[slot as usize]
    }

    /// Root slot of each tree, in layout order.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Number of attributes the forest tests.
    #[must_use]
    pub fn n_attributes(&self) -> u32 {
        self.n_attributes
    }

    /// Encoded node size in bytes (the models' `S_node`).
    #[must_use]
    pub fn node_bytes(&self) -> usize {
        self.node_bytes
    }

    /// Attribute-index width in use.
    #[must_use]
    pub fn attr_width(&self) -> AttrWidth {
        self.attr_width
    }

    /// Storage mode in use.
    #[must_use]
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// Total image size in bytes (including dense NULL padding).
    #[must_use]
    pub fn image_bytes(&self) -> usize {
        self.nodes.len() * self.node_bytes
    }

    /// Shared-memory footprint of trees `[from, to)` in layout order (NULL
    /// padding is never copied to shared memory).
    #[must_use]
    pub fn trees_smem_bytes(&self, from: usize, to: usize) -> usize {
        self.nodes_per_tree[from..to]
            .iter()
            .map(|&n| n as usize * self.node_bytes)
            .sum()
    }

    /// Shared-memory footprint of the whole forest.
    #[must_use]
    pub fn forest_smem_bytes(&self) -> usize {
        self.trees_smem_bytes(0, self.n_trees)
    }

    /// Maximum tree depth.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Layout order: `tree_order[layout_idx] = original index`.
    #[must_use]
    pub fn tree_order(&self) -> &[usize] {
        &self.tree_order
    }

    /// Traverses one tree for one sample; returns the leaf value.
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer attributes than the forest tests.
    #[must_use]
    pub fn tree_leaf(&self, layout_tree: usize, sample: &[f32]) -> f32 {
        let mut slot = self.roots[layout_tree];
        loop {
            let n = self.node(slot);
            if n.leaf {
                return n.scalar;
            }
            slot = n
                .next_slot(sample[n.attribute as usize])
                .expect("non-leaf nodes always route");
        }
    }

    /// Combines a raw sum of tree outputs into the forest prediction.
    #[must_use]
    pub fn aggregate(&self, tree_output_sum: f32) -> f32 {
        match self.kind {
            ForestKind::Gbdt => self.base_score + tree_output_sum,
            ForestKind::RandomForest => tree_output_sum / self.n_trees as f32,
        }
    }

    /// Predicts every sample (sum over trees in layout order, aggregated).
    #[must_use]
    pub fn predict_batch(&self, samples: &SampleMatrix) -> Vec<f32> {
        (0..samples.n_samples())
            .map(|i| {
                let row = samples.row(i);
                let sum: f32 = (0..self.n_trees).map(|t| self.tree_leaf(t, row)).sum();
                self.aggregate(sum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::{predict_dataset, train_for_spec};

    fn build_pair(name: &str) -> (Forest, DeviceForest, tahoe_datasets::Dataset) {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        (forest, df, infer)
    }

    #[test]
    fn device_predictions_match_reference_dense() {
        let (forest, df, infer) = build_pair("letter");
        assert_eq!(df.mode(), StorageMode::Dense);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn device_predictions_match_reference_sparse() {
        // Force sparse mode explicitly (at Smoke scale the realized depths
        // can be shallow enough for the auto heuristic to pick dense).
        let spec = DatasetSpec::by_name("gisette").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let config = FormatConfig {
            mode: Some(StorageMode::Sparse),
            ..FormatConfig::adaptive()
        };
        let df = DeviceForest::build(&forest, &plan, config, &mut mem);
        assert_eq!(df.mode(), StorageMode::Sparse);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn swapped_children_preserve_predictions() {
        let (forest, _, infer) = build_pair("letter");
        let mut mem = DeviceMemory::new();
        // Swap every decision node — predictions must be invariant.
        let mut plan = LayoutPlan::identity(&forest);
        for (t, tree) in forest.trees().iter().enumerate() {
            for (i, n) in tree.nodes().iter().enumerate() {
                plan.swaps[t][i] = !n.is_leaf();
            }
        }
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn tree_order_preserves_predictions() {
        let (forest, _, infer) = build_pair("letter");
        let mut mem = DeviceMemory::new();
        let mut plan = LayoutPlan::identity(&forest);
        plan.tree_order.reverse();
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn image_roundtrip_is_faithful() {
        for name in ["letter", "gisette"] {
            let (_, df, _) = build_pair(name);
            let image = df.encode_image();
            assert_eq!(image.len(), df.image_bytes());
            let decoded = df.decode_image(&image);
            assert_eq!(decoded.len(), df.nodes.len());
            for (slot, (a, b)) in df.nodes.iter().zip(&decoded).enumerate() {
                assert_eq!(a, b, "{name}: slot {slot} mismatch");
            }
        }
    }

    #[test]
    fn varlen_attr_shrinks_storage() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let plan = LayoutPlan::identity(&forest);
        let mut mem = DeviceMemory::new();
        let adaptive =
            DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let traditional =
            DeviceForest::build(&forest, &plan, FormatConfig::traditional(), &mut mem);
        assert!(adaptive.image_bytes() < traditional.image_bytes());
        // 16 attributes → one-byte index.
        assert_eq!(adaptive.attr_width(), AttrWidth::U8);
        let saving = 1.0 - adaptive.image_bytes() as f64 / traditional.image_bytes() as f64;
        assert!(saving > 0.15, "saving {saving} too small");
    }

    #[test]
    fn smem_footprint_excludes_padding() {
        let (forest, df, _) = build_pair("letter");
        let real_nodes: usize = forest.trees().iter().map(tahoe_forest::Tree::n_nodes).sum();
        assert_eq!(df.forest_smem_bytes(), real_nodes * df.node_bytes());
        assert!(df.forest_smem_bytes() <= df.image_bytes());
        // Partial ranges sum correctly.
        let split = df.n_trees() / 2;
        assert_eq!(
            df.trees_smem_bytes(0, split) + df.trees_smem_bytes(split, df.n_trees()),
            df.forest_smem_bytes()
        );
    }

    #[test]
    fn try_build_reports_oom_on_tiny_dram() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let plan = LayoutPlan::identity(&forest);
        let mut mem = DeviceMemory::with_capacity(256);
        let err = DeviceForest::try_build(&forest, &plan, FormatConfig::adaptive(), &mut mem)
            .unwrap_err();
        assert_eq!(err.capacity_bytes, 256);
        assert!(err.requested_bytes > 256);
        // Nothing was left allocated by the failed build.
        assert_eq!(mem.in_use_bytes(), 0);
    }

    #[test]
    fn build_registers_its_buffer() {
        let (_, df, _) = build_pair("letter");
        let total: usize = df.buffers().iter().map(|b| b.bytes as usize).sum();
        assert_eq!(total, df.image_bytes());
        assert_eq!(df.buffers().len(), 1, "classic encoding is one lane");
    }

    #[test]
    fn node_addresses_are_contiguous_slots() {
        let (_, df, _) = build_pair("letter");
        let a0 = df.node_addr(0);
        let a1 = df.node_addr(1);
        assert_eq!(a1 - a0, df.node_bytes() as u64);
    }

    fn build_packed(name: &str, mode: Option<StorageMode>) -> (Forest, DeviceForest, tahoe_datasets::Dataset) {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let config = FormatConfig {
            mode,
            ..FormatConfig::packed()
        };
        let df = DeviceForest::build(&forest, &plan, config, &mut mem);
        (forest, df, infer)
    }

    #[test]
    fn packed_predictions_match_reference_dense() {
        let (forest, df, infer) = build_packed("letter", Some(StorageMode::Dense));
        assert_eq!(df.encoding(), NodeEncoding::Packed);
        assert_eq!(df.packed_width(), Some(PackedWidth::U8));
        assert_eq!(df.lanes().len(), 2);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_predictions_match_reference_sparse() {
        let (forest, df, infer) = build_packed("letter", Some(StorageMode::Sparse));
        assert_eq!(df.encoding(), NodeEncoding::Packed);
        assert_eq!(df.lanes().len(), 3, "bits + values + child offsets");
        assert!(df.child_width().is_some());
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_image_roundtrip_is_faithful() {
        for mode in [StorageMode::Dense, StorageMode::Sparse] {
            let (_, df, _) = build_packed("letter", Some(mode));
            let image = df.encode_image();
            assert_eq!(image.len(), df.image_bytes());
            let decoded = df.decode_image(&image);
            for (slot, (a, b)) in df.nodes.iter().zip(&decoded).enumerate() {
                assert_eq!(a, b, "{mode:?}: slot {slot} mismatch");
            }
        }
    }

    #[test]
    fn packed_sparse_halves_bytes_per_node() {
        // letter has 16 attributes (U8 entry: 1 B) and smoke-scale trees are
        // small (U8 child offsets): 1 + 4 + 1 = 6 B vs the classic adaptive
        // sparse 14 B — comfortably past the 2x the format study claims.
        let (_, packed, _) = build_packed("letter", Some(StorageMode::Sparse));
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, _) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let classic = DeviceForest::build(
            &forest,
            &plan,
            FormatConfig {
                mode: Some(StorageMode::Sparse),
                ..FormatConfig::adaptive()
            },
            &mut mem,
        );
        assert!(
            2 * packed.node_bytes() <= classic.node_bytes(),
            "packed {} B vs classic {} B",
            packed.node_bytes(),
            classic.node_bytes()
        );
        assert!(2 * packed.image_bytes() <= classic.image_bytes());
    }

    #[test]
    fn packed_lane_addresses_are_disjoint_and_contiguous() {
        let (_, df, _) = build_packed("letter", Some(StorageMode::Sparse));
        for (i, lane) in df.lanes().iter().enumerate() {
            // Per-lane addressing strides by the lane's element width.
            assert_eq!(
                df.lane_addr(i, 1) - df.lane_addr(i, 0),
                lane.elem_bytes as u64
            );
        }
        // Lanes are separate allocations: ranges must not overlap.
        let mut ranges: Vec<(u64, u64)> = df
            .lanes()
            .iter()
            .map(|l| (l.buffer.base, l.buffer.base + l.buffer.bytes))
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "lanes overlap: {ranges:?}");
        }
    }

    #[test]
    fn packed_falls_back_to_classic_when_attrs_overflow() {
        // gisette has 5 000 attributes — fine for a U16 entry; fabricate the
        // overflow case via the width rule directly and via a real build.
        let (_, df, _) = build_packed("gisette", Some(StorageMode::Dense));
        assert_eq!(df.encoding(), NodeEncoding::Packed);
        assert_eq!(df.packed_width(), Some(PackedWidth::U16));
        assert_eq!(PackedWidth::minimal(1 << 29), None);
    }

    #[test]
    fn packed_oom_rolls_back_all_lanes() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let plan = LayoutPlan::identity(&forest);
        // Enough for the 1 B/node bits lane, not for the 4 B/node value
        // lane: the partial allocation must be rolled back.
        let total_nodes = forest.stats().total_nodes as u64;
        let mut mem = DeviceMemory::with_capacity(2 * total_nodes);
        let config = FormatConfig {
            mode: Some(StorageMode::Sparse),
            ..FormatConfig::packed()
        };
        let err = DeviceForest::try_build(&forest, &plan, config, &mut mem).unwrap_err();
        assert!(err.requested_bytes > 0);
        assert_eq!(mem.in_use_bytes(), 0, "failed build must leave no lanes allocated");
    }

    #[test]
    fn encoding_key_separates_encodings_and_widths() {
        let (_, classic, _) = build_pair("letter");
        let (_, packed_dense, _) = build_packed("letter", Some(StorageMode::Dense));
        let (_, packed_sparse, _) = build_packed("letter", Some(StorageMode::Sparse));
        let keys = [
            classic.encoding_key(128),
            packed_dense.encoding_key(128),
            packed_sparse.encoding_key(128),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
    }
}
