//! Device forest formats: reorg (FIL baseline) and adaptive (Tahoe §4.3).
//!
//! A [`DeviceForest`] is a forest laid out for the simulated GPU: every node
//! is assigned a memory slot (see [`layout`]), encoded into a byte image
//! (see [`node`]), and allocated in simulated global memory. The same type
//! serves both the FIL baseline (identity layout plan, fixed 4-byte attribute
//! index) and Tahoe's adaptive format (similarity tree order, probability
//! child swaps, variable-length attribute index) — a layout plan plus a
//! format config fully determine the result.

pub mod layout;
pub mod node;

use tahoe_datasets::{ForestKind, SampleMatrix};
use tahoe_forest::Forest;
use tahoe_gpu_sim::memory::{DeviceMemory, OomError};
use tahoe_gpu_sim::GlobalBuffer;

pub use layout::{assign_slots, LayoutPlan, SlotMap, StorageMode};
pub use node::{AttrWidth, DeviceNode, NO_SLOT};

use tahoe_forest::Node as HostNode;

/// Dense mode is only used while the NULL-padded slot count stays below this
/// cap; beyond it the padding dominates and sparse mode wins (FIL makes the
/// same dense/sparse decision for deep trees).
pub const DENSE_SLOT_CAP: usize = 1 << 21;

/// Format configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FormatConfig {
    /// Use the minimal attribute-index width (§4.3) instead of 4 bytes.
    pub varlen_attr: bool,
    /// Force a storage mode; `None` selects automatically by padded size.
    pub mode: Option<StorageMode>,
}

impl FormatConfig {
    /// Tahoe's adaptive-format configuration.
    #[must_use]
    pub fn adaptive() -> Self {
        Self {
            varlen_attr: true,
            mode: None,
        }
    }

    /// The traditional configuration (fixed four-byte attribute index).
    #[must_use]
    pub fn traditional() -> Self {
        Self {
            varlen_attr: false,
            mode: None,
        }
    }
}

/// A forest laid out in simulated device memory.
#[derive(Clone, Debug)]
pub struct DeviceForest {
    nodes: Vec<Option<DeviceNode>>,
    levels: Vec<u32>,
    roots: Vec<u32>,
    nodes_per_tree: Vec<u32>,
    node_bytes: usize,
    attr_width: AttrWidth,
    mode: StorageMode,
    buffer: GlobalBuffer,
    n_trees: usize,
    n_attributes: u32,
    kind: ForestKind,
    base_score: f32,
    tree_order: Vec<usize>,
    max_depth: usize,
}

impl DeviceForest {
    /// Builds a device forest from a host forest, a layout plan, and a format
    /// configuration, allocating its image in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the forest, or if the image does
    /// not fit in `mem` (capacity-aware callers use
    /// [`DeviceForest::try_build`]).
    #[must_use]
    pub fn build(
        forest: &Forest,
        plan: &LayoutPlan,
        config: FormatConfig,
        mem: &mut DeviceMemory,
    ) -> Self {
        Self::try_build(forest, plan, config, mem).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`DeviceForest::build`], but reports simulated device-memory
    /// exhaustion instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the encoded image exceeds the remaining
    /// DRAM capacity of `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the forest.
    pub fn try_build(
        forest: &Forest,
        plan: &LayoutPlan,
        config: FormatConfig,
        mem: &mut DeviceMemory,
    ) -> Result<Self, OomError> {
        let stats = forest.stats();
        let attr_width = if config.varlen_attr {
            AttrWidth::minimal(forest.n_attributes().max(1))
        } else {
            AttrWidth::U32
        };
        let mode = config.mode.unwrap_or_else(|| {
            let depth = stats.max_depth as u32;
            let padded = (stats.n_trees as u128) << (depth + 1);
            if depth < 21 && padded <= DENSE_SLOT_CAP as u128 {
                StorageMode::Dense
            } else {
                StorageMode::Sparse
            }
        });
        let map = assign_slots(forest, plan, mode);
        let explicit = mode == StorageMode::Sparse;
        let node_bytes = DeviceNode::encoded_bytes(attr_width, explicit);
        let mut nodes: Vec<Option<DeviceNode>> = vec![None; map.n_slots];
        let mut nodes_per_tree = Vec::with_capacity(forest.n_trees());
        for (layout_idx, &orig) in plan.tree_order.iter().enumerate() {
            let tree = &forest.trees()[orig];
            let swaps = &plan.swaps[orig];
            nodes_per_tree.push(tree.n_nodes() as u32);
            for (id, host) in tree.nodes().iter().enumerate() {
                let slot = map.slot_of[layout_idx][id] as usize;
                let device = match *host {
                    HostNode::Leaf { value } => DeviceNode::leaf(value),
                    HostNode::Decision {
                        attribute,
                        threshold,
                        default_left,
                        left,
                        right,
                        ..
                    } => {
                        let swapped = swaps[id];
                        let (lslot, rslot) = if swapped {
                            (
                                map.slot_of[layout_idx][right as usize],
                                map.slot_of[layout_idx][left as usize],
                            )
                        } else {
                            (
                                map.slot_of[layout_idx][left as usize],
                                map.slot_of[layout_idx][right as usize],
                            )
                        };
                        DeviceNode {
                            attribute,
                            scalar: threshold,
                            left: lslot,
                            right: rslot,
                            leaf: false,
                            default_left: default_left ^ swapped,
                            inverted: swapped,
                        }
                    }
                };
                nodes[slot] = Some(device);
            }
        }
        let roots: Vec<u32> = (0..forest.n_trees())
            .map(|layout_idx| map.slot_of[layout_idx][0])
            .collect();
        let buffer = mem.try_alloc((map.n_slots * node_bytes) as u64)?;
        Ok(Self {
            nodes,
            levels: map.levels,
            roots,
            nodes_per_tree,
            node_bytes,
            attr_width,
            mode,
            buffer,
            n_trees: forest.n_trees(),
            n_attributes: forest.n_attributes(),
            kind: forest.kind(),
            base_score: forest.base_score(),
            tree_order: plan.tree_order.clone(),
            max_depth: stats.max_depth,
        })
    }

    /// The simulated global-memory allocation holding the encoded image
    /// (what an engine must `free` before dropping or replacing the forest).
    #[must_use]
    pub fn buffer(&self) -> GlobalBuffer {
        self.buffer
    }

    /// Encodes the full device image (used for storage accounting and
    /// round-trip validation; kernels traverse the decoded `nodes`).
    #[must_use]
    pub fn encode_image(&self) -> Vec<u8> {
        let explicit = self.mode == StorageMode::Sparse;
        let mut out = Vec::with_capacity(self.nodes.len() * self.node_bytes);
        for slot in &self.nodes {
            match slot {
                Some(n) => n.encode(self.attr_width, explicit, &mut out),
                None => DeviceNode::encode_null(self.attr_width, explicit, &mut out),
            }
        }
        out
    }

    /// Decodes an image back into per-slot nodes (children resolved via heap
    /// arithmetic in dense mode). Used by tests to prove the byte format is
    /// faithful.
    #[must_use]
    pub fn decode_image(&self, image: &[u8]) -> Vec<Option<DeviceNode>> {
        let explicit = self.mode == StorageMode::Sparse;
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut cursor = image;
        for slot in 0..self.nodes.len() {
            let mut decoded = DeviceNode::decode(self.attr_width, explicit, &mut cursor);
            if let Some(n) = decoded.as_mut() {
                if !explicit && !n.leaf {
                    let (l, r) = self.dense_children(slot as u32);
                    n.left = l;
                    n.right = r;
                }
            }
            out.push(decoded);
        }
        out
    }

    /// Dense-mode child slots via heap arithmetic.
    fn dense_children(&self, slot: u32) -> (u32, u32) {
        let n_trees = self.n_trees as u64;
        let slot64 = u64::from(slot);
        let level = self.levels[slot as usize];
        let base = n_trees * ((1u64 << level) - 1);
        let rel = slot64 - base;
        let tree = rel % n_trees;
        let pos = ((1u64 << level) - 1) + rel / n_trees;
        let child = |p: u64| {
            let cl = level + 1;
            let cbase = n_trees * ((1u64 << cl) - 1);
            u32::try_from(cbase + (p - ((1u64 << cl) - 1)) * n_trees + tree)
                .expect("slot fits u32")
        };
        (child(2 * pos + 1), child(2 * pos + 2))
    }

    /// The node in `slot`.
    ///
    /// # Panics
    ///
    /// Panics on a NULL slot — reaching one during traversal is a layout bug.
    #[must_use]
    pub fn node(&self, slot: u32) -> &DeviceNode {
        self.nodes[slot as usize]
            .as_ref()
            .expect("traversal reached a NULL slot")
    }

    /// The node in `slot`, or `None` for a NULL (dense padding) slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn node_opt(&self, slot: usize) -> Option<&DeviceNode> {
        self.nodes[slot].as_ref()
    }

    /// Simulated device address of a slot.
    #[must_use]
    pub fn node_addr(&self, slot: u32) -> u64 {
        self.buffer.elem_addr(u64::from(slot), self.node_bytes as u64)
    }

    /// Tree level of a slot.
    #[must_use]
    pub fn level_of(&self, slot: u32) -> u32 {
        self.levels[slot as usize]
    }

    /// Root slot of each tree, in layout order.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Number of attributes the forest tests.
    #[must_use]
    pub fn n_attributes(&self) -> u32 {
        self.n_attributes
    }

    /// Encoded node size in bytes (the models' `S_node`).
    #[must_use]
    pub fn node_bytes(&self) -> usize {
        self.node_bytes
    }

    /// Attribute-index width in use.
    #[must_use]
    pub fn attr_width(&self) -> AttrWidth {
        self.attr_width
    }

    /// Storage mode in use.
    #[must_use]
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// Total image size in bytes (including dense NULL padding).
    #[must_use]
    pub fn image_bytes(&self) -> usize {
        self.nodes.len() * self.node_bytes
    }

    /// Shared-memory footprint of trees `[from, to)` in layout order (NULL
    /// padding is never copied to shared memory).
    #[must_use]
    pub fn trees_smem_bytes(&self, from: usize, to: usize) -> usize {
        self.nodes_per_tree[from..to]
            .iter()
            .map(|&n| n as usize * self.node_bytes)
            .sum()
    }

    /// Shared-memory footprint of the whole forest.
    #[must_use]
    pub fn forest_smem_bytes(&self) -> usize {
        self.trees_smem_bytes(0, self.n_trees)
    }

    /// Maximum tree depth.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Layout order: `tree_order[layout_idx] = original index`.
    #[must_use]
    pub fn tree_order(&self) -> &[usize] {
        &self.tree_order
    }

    /// Traverses one tree for one sample; returns the leaf value.
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer attributes than the forest tests.
    #[must_use]
    pub fn tree_leaf(&self, layout_tree: usize, sample: &[f32]) -> f32 {
        let mut slot = self.roots[layout_tree];
        loop {
            let n = self.node(slot);
            if n.leaf {
                return n.scalar;
            }
            slot = n
                .next_slot(sample[n.attribute as usize])
                .expect("non-leaf nodes always route");
        }
    }

    /// Combines a raw sum of tree outputs into the forest prediction.
    #[must_use]
    pub fn aggregate(&self, tree_output_sum: f32) -> f32 {
        match self.kind {
            ForestKind::Gbdt => self.base_score + tree_output_sum,
            ForestKind::RandomForest => tree_output_sum / self.n_trees as f32,
        }
    }

    /// Predicts every sample (sum over trees in layout order, aggregated).
    #[must_use]
    pub fn predict_batch(&self, samples: &SampleMatrix) -> Vec<f32> {
        (0..samples.n_samples())
            .map(|i| {
                let row = samples.row(i);
                let sum: f32 = (0..self.n_trees).map(|t| self.tree_leaf(t, row)).sum();
                self.aggregate(sum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::{predict_dataset, train_for_spec};

    fn build_pair(name: &str) -> (Forest, DeviceForest, tahoe_datasets::Dataset) {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        (forest, df, infer)
    }

    #[test]
    fn device_predictions_match_reference_dense() {
        let (forest, df, infer) = build_pair("letter");
        assert_eq!(df.mode(), StorageMode::Dense);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn device_predictions_match_reference_sparse() {
        // Force sparse mode explicitly (at Smoke scale the realized depths
        // can be shallow enough for the auto heuristic to pick dense).
        let spec = DatasetSpec::by_name("gisette").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let mut mem = DeviceMemory::new();
        let plan = LayoutPlan::identity(&forest);
        let config = FormatConfig {
            varlen_attr: true,
            mode: Some(StorageMode::Sparse),
        };
        let df = DeviceForest::build(&forest, &plan, config, &mut mem);
        assert_eq!(df.mode(), StorageMode::Sparse);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn swapped_children_preserve_predictions() {
        let (forest, _, infer) = build_pair("letter");
        let mut mem = DeviceMemory::new();
        // Swap every decision node — predictions must be invariant.
        let mut plan = LayoutPlan::identity(&forest);
        for (t, tree) in forest.trees().iter().enumerate() {
            for (i, n) in tree.nodes().iter().enumerate() {
                plan.swaps[t][i] = !n.is_leaf();
            }
        }
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn tree_order_preserves_predictions() {
        let (forest, _, infer) = build_pair("letter");
        let mut mem = DeviceMemory::new();
        let mut plan = LayoutPlan::identity(&forest);
        plan.tree_order.reverse();
        let df = DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let reference = predict_dataset(&forest, &infer.samples);
        let device = df.predict_batch(&infer.samples);
        for (a, b) in reference.iter().zip(&device) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn image_roundtrip_is_faithful() {
        for name in ["letter", "gisette"] {
            let (_, df, _) = build_pair(name);
            let image = df.encode_image();
            assert_eq!(image.len(), df.image_bytes());
            let decoded = df.decode_image(&image);
            assert_eq!(decoded.len(), df.nodes.len());
            for (slot, (a, b)) in df.nodes.iter().zip(&decoded).enumerate() {
                assert_eq!(a, b, "{name}: slot {slot} mismatch");
            }
        }
    }

    #[test]
    fn varlen_attr_shrinks_storage() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let plan = LayoutPlan::identity(&forest);
        let mut mem = DeviceMemory::new();
        let adaptive =
            DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
        let traditional =
            DeviceForest::build(&forest, &plan, FormatConfig::traditional(), &mut mem);
        assert!(adaptive.image_bytes() < traditional.image_bytes());
        // 16 attributes → one-byte index.
        assert_eq!(adaptive.attr_width(), AttrWidth::U8);
        let saving = 1.0 - adaptive.image_bytes() as f64 / traditional.image_bytes() as f64;
        assert!(saving > 0.15, "saving {saving} too small");
    }

    #[test]
    fn smem_footprint_excludes_padding() {
        let (forest, df, _) = build_pair("letter");
        let real_nodes: usize = forest.trees().iter().map(tahoe_forest::Tree::n_nodes).sum();
        assert_eq!(df.forest_smem_bytes(), real_nodes * df.node_bytes());
        assert!(df.forest_smem_bytes() <= df.image_bytes());
        // Partial ranges sum correctly.
        let split = df.n_trees() / 2;
        assert_eq!(
            df.trees_smem_bytes(0, split) + df.trees_smem_bytes(split, df.n_trees()),
            df.forest_smem_bytes()
        );
    }

    #[test]
    fn try_build_reports_oom_on_tiny_dram() {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let plan = LayoutPlan::identity(&forest);
        let mut mem = DeviceMemory::with_capacity(256);
        let err = DeviceForest::try_build(&forest, &plan, FormatConfig::adaptive(), &mut mem)
            .unwrap_err();
        assert_eq!(err.capacity_bytes, 256);
        assert!(err.requested_bytes > 256);
        // Nothing was left allocated by the failed build.
        assert_eq!(mem.in_use_bytes(), 0);
    }

    #[test]
    fn build_registers_its_buffer() {
        let (_, df, _) = build_pair("letter");
        assert_eq!(df.buffer().bytes as usize, df.image_bytes());
    }

    #[test]
    fn node_addresses_are_contiguous_slots() {
        let (_, df, _) = build_pair("letter");
        let a0 = df.node_addr(0);
        let a1 = df.node_addr(1);
        assert_eq!(a1 - a0, df.node_bytes() as u64);
    }
}
