//! Node-slot assignment: where each tree node lives in device memory.
//!
//! A [`LayoutPlan`] carries the two rearrangement decisions of §4 — the tree
//! order (similarity-based, §4.2) and the per-node child swaps
//! (probability-based, §4.1). Slot assignment then interleaves nodes of
//! different trees level by level, as the reorg format of Fig. 1 does:
//! nodes are ordered by `(level, within-level position, tree)`, so that
//! threads traversing different trees along the same relative path touch
//! adjacent slots.

use tahoe_forest::{Forest, Tree};

/// The two rearrangement decisions baked into a device layout.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutPlan {
    /// `tree_order[layout_idx] = original_tree_idx`.
    pub tree_order: Vec<usize>,
    /// `swaps[original_tree_idx][node_id]`: whether that node's children are
    /// swapped in the layout (leaves are always `false`).
    pub swaps: Vec<Vec<bool>>,
}

impl LayoutPlan {
    /// The identity plan: FIL's behaviour (original order, no swaps).
    #[must_use]
    pub fn identity(forest: &Forest) -> Self {
        Self {
            tree_order: (0..forest.n_trees()).collect(),
            swaps: forest
                .trees()
                .iter()
                .map(|t| vec![false; t.n_nodes()])
                .collect(),
        }
    }

    /// Validates the plan against a forest.
    ///
    /// # Panics
    ///
    /// Panics if the order is not a permutation or the swap vectors do not
    /// match tree sizes.
    pub fn validate(&self, forest: &Forest) {
        assert_eq!(self.tree_order.len(), forest.n_trees(), "order length mismatch");
        let mut seen = vec![false; forest.n_trees()];
        for &t in &self.tree_order {
            assert!(!seen[t], "tree order is not a permutation");
            seen[t] = true;
        }
        assert_eq!(self.swaps.len(), forest.n_trees(), "swap plan length mismatch");
        for (t, tree) in forest.trees().iter().enumerate() {
            assert_eq!(
                self.swaps[t].len(),
                tree.n_nodes(),
                "swap vector size mismatch for tree {t}"
            );
        }
    }
}

/// Heap positions (0-based: children of `p` are `2p+1`, `2p+2`) of every node
/// of a tree under a swap assignment.
#[must_use]
pub fn heap_positions(tree: &Tree, swaps: &[bool]) -> Vec<u64> {
    let mut pos = vec![0u64; tree.n_nodes()];
    for (id, node) in tree.nodes().iter().enumerate() {
        if let Some((l, r)) = node.children() {
            let (first, second) = if swaps[id] { (r, l) } else { (l, r) };
            pos[first as usize] = 2 * pos[id] + 1;
            pos[second as usize] = 2 * pos[id] + 2;
        }
    }
    pos
}

/// Depth level of a heap position.
#[must_use]
pub fn level_of_position(pos: u64) -> u32 {
    // Level l spans positions [2^l - 1, 2^(l+1) - 2].
    (pos + 1).ilog2()
}

/// Storage mode: implicit-children dense heap vs explicit-children sparse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// NULL-padded complete-tree layout; children derived from heap
    /// arithmetic (FIL's dense storage, the layout of the paper's Fig. 1).
    Dense,
    /// NULL-free layout with explicit child slots (FIL's sparse storage, for
    /// deep trees where dense padding explodes).
    Sparse,
}

/// Result of slot assignment.
#[derive(Clone, Debug)]
pub struct SlotMap {
    /// `slot_of[layout_tree_idx][node_id]` → device slot.
    pub slot_of: Vec<Vec<u32>>,
    /// Total slots (including NULL padding in dense mode).
    pub n_slots: usize,
    /// Tree level of every slot.
    pub levels: Vec<u32>,
    /// Storage mode used.
    pub mode: StorageMode,
    /// Number of trees in the layout.
    pub n_trees: usize,
}

impl SlotMap {
    /// Dense-mode child slots of the node in `slot` (derived from heap
    /// arithmetic); meaningless in sparse mode.
    ///
    /// # Panics
    ///
    /// Panics in sparse mode.
    #[must_use]
    pub fn dense_children(&self, slot: u32) -> (u32, u32) {
        assert_eq!(self.mode, StorageMode::Dense, "dense arithmetic in sparse mode");
        let n_trees = self.n_trees as u64;
        let slot = u64::from(slot);
        // Invert: slot = base(l) + (pos - (2^l - 1)) * n_trees + tree.
        let level = self.levels[slot as usize];
        let base = n_trees * ((1u64 << level) - 1);
        let rel = slot - base;
        let tree = rel % n_trees;
        let pos_in_level = rel / n_trees;
        let pos = ((1u64 << level) - 1) + pos_in_level;
        let child_slot = |child_pos: u64| {
            let cl = level + 1;
            let cbase = n_trees * ((1u64 << cl) - 1);
            let crel = (child_pos - ((1u64 << cl) - 1)) * n_trees + tree;
            u32::try_from(cbase + crel).expect("slot fits in u32")
        };
        (child_slot(2 * pos + 1), child_slot(2 * pos + 2))
    }
}

/// Assigns slots for a forest under a layout plan.
///
/// # Panics
///
/// Panics if the plan is invalid, or in dense mode if the padded size
/// overflows sensible limits (callers gate dense mode by depth).
#[must_use]
pub fn assign_slots(forest: &Forest, plan: &LayoutPlan, mode: StorageMode) -> SlotMap {
    plan.validate(forest);
    let n_trees = forest.n_trees();
    // Per layout tree: heap positions after swaps.
    let positions: Vec<Vec<u64>> = plan
        .tree_order
        .iter()
        .map(|&orig| heap_positions(&forest.trees()[orig], &plan.swaps[orig]))
        .collect();
    match mode {
        StorageMode::Dense => {
            let depth = forest.stats().max_depth as u32;
            assert!(depth < 26, "dense mode unusable at depth {depth}");
            let n_levels = depth + 1;
            let slots_per_tree = (1u64 << n_levels) - 1;
            let n_slots = usize::try_from(slots_per_tree * n_trees as u64)
                .expect("dense slot count fits usize");
            let mut slot_of = Vec::with_capacity(n_trees);
            for (layout_idx, pos) in positions.iter().enumerate() {
                let slots = pos
                    .iter()
                    .map(|&p| {
                        let l = level_of_position(p);
                        let base = n_trees as u64 * ((1u64 << l) - 1);
                        let rel = (p - ((1u64 << l) - 1)) * n_trees as u64 + layout_idx as u64;
                        u32::try_from(base + rel).expect("slot fits u32")
                    })
                    .collect();
                slot_of.push(slots);
            }
            let mut levels = vec![0u32; n_slots];
            for l in 0..n_levels {
                let start = n_trees * ((1usize << l) - 1);
                let end = n_trees * ((1usize << (l + 1)) - 1);
                for s in &mut levels[start..end.min(n_slots)] {
                    *s = l;
                }
            }
            SlotMap {
                slot_of,
                n_slots,
                levels,
                mode,
                n_trees,
            }
        }
        StorageMode::Sparse => {
            // Order nodes by (level, position, layout tree).
            let mut keyed: Vec<(u32, u64, u32, u32)> = Vec::new();
            for (layout_idx, pos) in positions.iter().enumerate() {
                for (node_id, &p) in pos.iter().enumerate() {
                    keyed.push((
                        level_of_position(p),
                        p,
                        layout_idx as u32,
                        node_id as u32,
                    ));
                }
            }
            keyed.sort_unstable();
            let mut slot_of: Vec<Vec<u32>> = positions
                .iter()
                .map(|p| vec![0u32; p.len()])
                .collect();
            let mut levels = Vec::with_capacity(keyed.len());
            for (slot, &(level, _p, layout_idx, node_id)) in keyed.iter().enumerate() {
                slot_of[layout_idx as usize][node_id as usize] =
                    u32::try_from(slot).expect("slot fits u32");
                levels.push(level);
            }
            SlotMap {
                slot_of,
                n_slots: keyed.len(),
                levels,
                mode,
                n_trees,
            }
        }
    }
}

/// Assigns sparse slots for the packed struct-of-arrays encoding: each tree's
/// nodes occupy one *consecutive* slot range in BFS (heap-position) order.
///
/// Two properties the packed child lane depends on (and which the
/// level-interleaved [`assign_slots`] sparse order does not provide):
///
/// 1. **Trees are contiguous** — tree `t` spans
///    `[roots[t], roots[t] + n_nodes_t)`, so a child slot can be stored as a
///    small tree-relative offset and staging ranges are exact.
/// 2. **Siblings are adjacent** — decision nodes always have both children
///    (trees are structurally full), and heap positions `2p+1`/`2p+2` sort
///    consecutively, so the layout-right child always sits at
///    `layout-left + 1` and only the left offset needs storing.
#[must_use]
pub fn assign_slots_paired(forest: &Forest, plan: &LayoutPlan) -> SlotMap {
    plan.validate(forest);
    let n_trees = forest.n_trees();
    let positions: Vec<Vec<u64>> = plan
        .tree_order
        .iter()
        .map(|&orig| heap_positions(&forest.trees()[orig], &plan.swaps[orig]))
        .collect();
    let mut slot_of: Vec<Vec<u32>> = positions
        .iter()
        .map(|p| vec![0u32; p.len()])
        .collect();
    let mut levels = Vec::new();
    let mut base = 0u64;
    for (layout_idx, pos) in positions.iter().enumerate() {
        let mut keyed: Vec<(u64, u32)> = pos
            .iter()
            .enumerate()
            .map(|(id, &p)| (p, id as u32))
            .collect();
        keyed.sort_unstable();
        for (i, &(p, node_id)) in keyed.iter().enumerate() {
            slot_of[layout_idx][node_id as usize] =
                u32::try_from(base + i as u64).expect("slot fits u32");
            levels.push(level_of_position(p));
        }
        base += pos.len() as u64;
    }
    SlotMap {
        slot_of,
        n_slots: levels.len(),
        levels,
        mode: StorageMode::Sparse,
        n_trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{ForestKind, Task};
    use tahoe_forest::Node;

    /// Three-node tree: root + two leaves.
    fn tiny_tree(leaf: f32) -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.5,
            },
            Node::Leaf { value: leaf },
            Node::Leaf { value: -leaf },
        ])
    }

    /// Five-node tree of depth 2 (left subtree deeper).
    fn deeper_tree() -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.3,
            },
            Node::Decision {
                attribute: 1,
                threshold: 1.0,
                default_left: false,
                left: 3,
                right: 4,
                left_prob: 0.9,
            },
            Node::Leaf { value: 5.0 },
            Node::Leaf { value: 1.0 },
            Node::Leaf { value: 2.0 },
        ])
    }

    fn forest() -> Forest {
        Forest::new(
            vec![tiny_tree(1.0), deeper_tree(), tiny_tree(2.0)],
            2,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        )
    }

    #[test]
    fn heap_positions_without_swaps() {
        let t = deeper_tree();
        let pos = heap_positions(&t, &[false; 5]);
        assert_eq!(pos, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heap_positions_with_root_swap() {
        let t = deeper_tree();
        let pos = heap_positions(&t, &[true, false, false, false, false]);
        // Right child (leaf, id 2) now occupies position 1; the decision
        // child id 1 occupies 2, its children 5 and 6.
        assert_eq!(pos[2], 1);
        assert_eq!(pos[1], 2);
        assert_eq!(pos[3], 5);
        assert_eq!(pos[4], 6);
    }

    #[test]
    fn level_of_position_is_log2() {
        assert_eq!(level_of_position(0), 0);
        assert_eq!(level_of_position(1), 1);
        assert_eq!(level_of_position(2), 1);
        assert_eq!(level_of_position(3), 2);
        assert_eq!(level_of_position(6), 2);
        assert_eq!(level_of_position(7), 3);
    }

    #[test]
    fn dense_slots_interleave_roots_first() {
        let f = forest();
        let plan = LayoutPlan::identity(&f);
        let map = assign_slots(&f, &plan, StorageMode::Dense);
        // Depth 2 → 7 slots per tree x 3 trees.
        assert_eq!(map.n_slots, 21);
        // Roots of trees 0, 1, 2 at slots 0, 1, 2 (Fig. 1's root row).
        assert_eq!(map.slot_of[0][0], 0);
        assert_eq!(map.slot_of[1][0], 1);
        assert_eq!(map.slot_of[2][0], 2);
        // Left children at level 1: slots 3, 4, 5.
        assert_eq!(map.slot_of[0][1], 3);
        assert_eq!(map.slot_of[1][1], 4);
        assert_eq!(map.slot_of[2][1], 5);
        // Levels.
        assert_eq!(map.levels[0], 0);
        assert_eq!(map.levels[3], 1);
        assert_eq!(map.levels[9], 2);
    }

    #[test]
    fn dense_children_invert_slot_arithmetic() {
        let f = forest();
        let plan = LayoutPlan::identity(&f);
        let map = assign_slots(&f, &plan, StorageMode::Dense);
        // Tree 1's root (slot 1) has children at heap 1 and 2 → the slots
        // recorded for its child nodes.
        let (l, r) = map.dense_children(map.slot_of[1][0]);
        assert_eq!(l, map.slot_of[1][1]);
        assert_eq!(r, map.slot_of[1][2]);
    }

    #[test]
    fn sparse_slots_are_compact_and_level_ordered() {
        let f = forest();
        let plan = LayoutPlan::identity(&f);
        let map = assign_slots(&f, &plan, StorageMode::Sparse);
        // No padding: 3 + 5 + 3 nodes.
        assert_eq!(map.n_slots, 11);
        // Levels must be non-decreasing across slots.
        for w in map.levels.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Roots first, in tree order.
        assert_eq!(map.slot_of[0][0], 0);
        assert_eq!(map.slot_of[1][0], 1);
        assert_eq!(map.slot_of[2][0], 2);
    }

    #[test]
    fn tree_order_permutes_root_slots() {
        let f = forest();
        let plan = LayoutPlan {
            tree_order: vec![2, 0, 1],
            swaps: LayoutPlan::identity(&f).swaps,
        };
        let map = assign_slots(&f, &plan, StorageMode::Sparse);
        // Layout index 0 is original tree 2.
        assert_eq!(map.slot_of[0][0], 0);
        // slot_of is indexed by layout position, not original index.
        assert_eq!(map.slot_of.len(), 3);
    }

    #[test]
    fn paired_slots_keep_trees_contiguous_and_siblings_adjacent() {
        let f = forest();
        let plan = LayoutPlan::identity(&f);
        let map = assign_slots_paired(&f, &plan);
        assert_eq!(map.n_slots, 11);
        // Tree bases: 0, 3, 8 (3 + 5 + 3 nodes, each tree contiguous).
        assert_eq!(map.slot_of[0][0], 0);
        assert_eq!(map.slot_of[1][0], 3);
        assert_eq!(map.slot_of[2][0], 8);
        // Within every tree, each decision node's children occupy adjacent
        // slots, layout-left first.
        for (layout_idx, &orig) in plan.tree_order.iter().enumerate() {
            for node in f.trees()[orig].nodes() {
                if let Some((l, r)) = node.children() {
                    let ls = map.slot_of[layout_idx][l as usize];
                    let rs = map.slot_of[layout_idx][r as usize];
                    assert_eq!(rs, ls + 1, "tree {layout_idx}");
                }
            }
        }
    }

    #[test]
    fn paired_slots_keep_sibling_adjacency_under_swaps() {
        let f = forest();
        let mut plan = LayoutPlan::identity(&f);
        // Swap every decision node; the layout-left child (the original
        // right) must still land one slot before the layout-right child.
        for (t, tree) in f.trees().iter().enumerate() {
            for (i, n) in tree.nodes().iter().enumerate() {
                plan.swaps[t][i] = !n.is_leaf();
            }
        }
        let map = assign_slots_paired(&f, &plan);
        for (layout_idx, &orig) in plan.tree_order.iter().enumerate() {
            for node in f.trees()[orig].nodes() {
                if let Some((l, r)) = node.children() {
                    // Swapped: original right is layout-left.
                    let ls = map.slot_of[layout_idx][r as usize];
                    let rs = map.slot_of[layout_idx][l as usize];
                    assert_eq!(rs, ls + 1, "tree {layout_idx}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_plan_rejected() {
        let f = forest();
        let mut plan = LayoutPlan::identity(&f);
        plan.tree_order[0] = 1;
        let _ = assign_slots(&f, &plan, StorageMode::Sparse);
    }
}
