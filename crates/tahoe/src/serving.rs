//! Online-serving simulation over the engine.
//!
//! The paper's motivation (§1) is high-throughput serving — "Facebook uses
//! high-throughput tree inference engines on GPU to decide which
//! notifications to send to billions of users". Production servers do not
//! see one giant batch: requests arrive as a stream and a *batching policy*
//! trades latency for throughput, which is exactly the regime where Tahoe's
//! per-batch strategy selection matters (Fig. 6's crossovers).
//!
//! [`ServingSim`] replays a request trace against an [`Engine`] on a
//! simulated clock: requests queue until the batch fills or the oldest
//! request times out, the batch runs on the simulated GPU, and per-request
//! latency statistics accumulate. Everything is deterministic.

use std::sync::OnceLock;

use tahoe_datasets::SampleMatrix;

use crate::cluster::GpuCluster;
use crate::engine::Engine;
use crate::strategy::Strategy;
use crate::telemetry::decision::RequestPathRecord;
use crate::telemetry::{timeseries, Counter, TelemetrySink, PID_SERVING};

/// Dynamic-batching policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchingPolicy {
    /// Dispatch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Dispatch when the oldest queued request has waited this long (ns).
    pub max_delay_ns: f64,
}

impl BatchingPolicy {
    /// A validated policy.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch == 0` (the dispatch arithmetic computes
    /// `first + max_batch - 1` and a zero-capacity batch can never fill) or
    /// when `max_delay_ns` is negative or non-finite (the deadline
    /// `first_arrival + max_delay_ns` would poison every dispatch instant).
    #[must_use]
    pub fn new(max_batch: usize, max_delay_ns: f64) -> Self {
        let policy = Self { max_batch, max_delay_ns };
        policy.validate();
        policy
    }

    /// Asserts the invariants of [`BatchingPolicy::new`] — re-checked at the
    /// top of every trace replay so struct-literal policies are caught too.
    ///
    /// # Panics
    ///
    /// See [`BatchingPolicy::new`].
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be at least 1");
        assert!(
            self.max_delay_ns.is_finite() && self.max_delay_ns >= 0.0,
            "max_delay_ns must be finite and non-negative, got {}",
            self.max_delay_ns
        );
    }

    /// A latency-oriented policy (small batches, tight deadline).
    #[must_use]
    pub fn low_latency() -> Self {
        Self {
            max_batch: 64,
            max_delay_ns: 200_000.0,
        }
    }

    /// A throughput-oriented policy (large batches, loose deadline).
    #[must_use]
    pub fn high_throughput() -> Self {
        Self {
            max_batch: 8_192,
            max_delay_ns: 5_000_000.0,
        }
    }
}

/// One dispatched batch's record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchRecord {
    /// Requests served.
    pub size: usize,
    /// Simulated dispatch time (ns since trace start).
    pub dispatched_at_ns: f64,
    /// Simulated GPU time of the batch (ns).
    pub gpu_ns: f64,
    /// Strategy the engine selected.
    pub strategy: Strategy,
    /// Sequential chunks the batch was split into to fit device DRAM
    /// (1 = ran unsplit).
    pub chunks: usize,
    /// Simulated device memory live after the batch (bytes).
    pub mem_in_use_bytes: u64,
}

/// Aggregate serving statistics.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Per-batch records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Per-request latencies (queueing + inference), ns.
    pub latencies_ns: Vec<f64>,
    /// Simulated end-to-end makespan (ns).
    pub makespan_ns: f64,
    /// High-water simulated device-memory footprint over the trace (bytes).
    pub mem_high_water_bytes: u64,
    /// Per-request latency deadline the trace was replayed with (`None`
    /// when the caller did not tag requests with an SLO).
    pub deadline_ns: Option<f64>,
    /// Lazily sorted copy of `latencies_ns` backing the percentile queries
    /// (sorted once on first use instead of on every call). Mutating
    /// `latencies_ns` after a percentile query would go unnoticed — build a
    /// fresh report instead.
    sorted_latencies: OnceLock<Vec<f64>>,
}

impl ServingReport {
    /// Assembles a report from a replayed trace.
    #[must_use]
    pub fn new(
        batches: Vec<BatchRecord>,
        latencies_ns: Vec<f64>,
        makespan_ns: f64,
        mem_high_water_bytes: u64,
    ) -> Self {
        Self {
            batches,
            latencies_ns,
            makespan_ns,
            mem_high_water_bytes,
            deadline_ns: None,
            sorted_latencies: OnceLock::new(),
        }
    }

    /// Tags the report with the deadline its trace was replayed under,
    /// enabling [`ServingReport::slo_attainment`].
    #[must_use]
    pub fn with_deadline(mut self, deadline_ns: Option<f64>) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// Fraction of requests that met the deadline (`None` when the trace
    /// was replayed without one; 1.0 for an empty trace).
    #[must_use]
    pub fn slo_attainment(&self) -> Option<f64> {
        let deadline = self.deadline_ns?;
        if self.latencies_ns.is_empty() {
            return Some(1.0);
        }
        let met = self.latencies_ns.iter().filter(|&&l| l <= deadline).count();
        Some(met as f64 / self.latencies_ns.len() as f64)
    }

    /// Requests served.
    #[must_use]
    pub fn n_requests(&self) -> usize {
        self.latencies_ns.len()
    }

    /// Mean request latency (ns).
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().sum::<f64>() / self.latencies_ns.len() as f64
    }

    /// Latency percentile in `[0, 1]` (ns).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_percentile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile out of range");
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted_latencies.get_or_init(|| {
            let mut sorted = self.latencies_ns.clone();
            // `total_cmp` keeps the sort total if a latency ever goes
            // non-finite: NaN sorts last and report generation survives.
            sorted.sort_by(f64::total_cmp);
            sorted
        });
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Sustained throughput over the makespan (requests per µs).
    #[must_use]
    pub fn throughput_per_us(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            return 0.0;
        }
        self.n_requests() as f64 / (self.makespan_ns / 1_000.0)
    }

    /// Batches that had to be chunk-split to fit device DRAM.
    #[must_use]
    pub fn split_batches(&self) -> usize {
        self.batches.iter().filter(|b| b.chunks > 1).count()
    }

    /// Mean dispatched batch size.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
    }
}

/// Arrival instant and policy-ready dispatch instant of the batch whose
/// oldest request is `first`: the batch is ready once either `max_batch`
/// requests have arrived or the oldest one hits its deadline (never before
/// it arrives). Shared verbatim by the single-engine and cluster
/// dispatchers so a 1-device cluster reproduces [`ServingSim`]'s floats
/// bit-for-bit.
fn batch_ready_at(
    first: usize,
    n_requests: usize,
    interarrival_ns: f64,
    policy: &BatchingPolicy,
) -> (f64, f64) {
    let first_arrival = first as f64 * interarrival_ns;
    let full_at = (first + policy.max_batch - 1).min(n_requests - 1) as f64 * interarrival_ns;
    let deadline = first_arrival + policy.max_delay_ns;
    (first_arrival, full_at.min(deadline).max(first_arrival))
}

/// Index of the last request that has arrived by `dispatch_at`. Float
/// division alone can land one index low when `dispatch_at` sits exactly on
/// an arrival instant (e.g. 3 × 0.1 / 0.1 < 3), so the quotient is
/// corrected by multiplying back — request `i` has arrived iff
/// `i * interarrival_ns <= dispatch_at`.
fn last_arrival_by(
    dispatch_at: f64,
    first: usize,
    n_requests: usize,
    interarrival_ns: f64,
) -> usize {
    let mut last_arrived = ((dispatch_at / interarrival_ns).floor() as usize).min(n_requests - 1);
    while last_arrived + 1 < n_requests
        && (last_arrived + 1) as f64 * interarrival_ns <= dispatch_at
    {
        last_arrived += 1;
    }
    while last_arrived > first && last_arrived as f64 * interarrival_ns > dispatch_at {
        last_arrived -= 1;
    }
    last_arrived
}

/// Emits one dispatched batch's serving spans (formation, optional queue
/// wait, execution) into `sink`.
fn batch_spans(
    sink: &TelemetrySink,
    idx: usize,
    record: &BatchRecord,
    first_arrival: f64,
    ready_at: f64,
) {
    if !sink.is_enabled() {
        return;
    }
    let size = record.size;
    let dispatch_at = record.dispatched_at_ns;
    sink.span(
        format!("batch {idx}: form ({size} requests)"),
        PID_SERVING,
        0,
        first_arrival,
        ready_at - first_arrival,
    );
    if dispatch_at > ready_at {
        sink.span(
            format!("batch {idx}: queue wait (GPU busy)"),
            PID_SERVING,
            1,
            ready_at,
            dispatch_at - ready_at,
        );
    }
    sink.span(
        format!("batch {idx}: execute ({})", record.strategy.name()),
        PID_SERVING,
        2,
        dispatch_at,
        record.gpu_ns,
    );
}

/// Emits one dispatched batch's windowed time-series samples into `sink`
/// (DESIGN.md §2.14): the dispatch delta, queue-wait time past the policy's
/// ready instant, and the device's inflight gauge over the batch's
/// execution interval. Series carry the device-local index 0; the cluster
/// absorb re-tags them. Caller thread only — workers never touch the
/// sampler. Queue depth is a queue-level (not device-level) statistic, so
/// the dispatchers record it separately.
fn batch_timeseries(sink: &TelemetrySink, record: &BatchRecord, ready_at: f64) {
    if !sink.is_enabled() {
        return;
    }
    let dispatch_at = record.dispatched_at_ns;
    sink.ts_add(0, timeseries::DISPATCHED_BATCHES, dispatch_at, 1.0);
    sink.ts_add(0, timeseries::QUEUE_WAIT_NS, dispatch_at, dispatch_at - ready_at);
    sink.ts_gauge(0, timeseries::INFLIGHT_BATCHES, dispatch_at, 1.0);
    sink.ts_gauge(0, timeseries::INFLIGHT_BATCHES, dispatch_at + record.gpu_ns, 0.0);
}

/// Records one batch's per-request latency windows (and, with a deadline,
/// SLO outcomes) into `sink`, keyed by the requests' shared completion time.
fn request_windows(
    sink: &TelemetrySink,
    latencies: &[f64],
    first: usize,
    last: usize,
    finished_at: f64,
    deadline_ns: Option<f64>,
) {
    if !sink.is_enabled() {
        return;
    }
    for &lat in &latencies[first..last] {
        sink.record_latency_window(finished_at, lat);
        if let Some(deadline) = deadline_ns {
            sink.record_slo_window(finished_at, lat <= deadline);
        }
    }
}

/// Timing and identity of one dispatched batch, shared by every request it
/// carried — input to [`record_request_paths`].
struct BatchPathCtx {
    /// Policy-ready dispatch instant of the batch (ns).
    ready_at: f64,
    /// Actual dispatch instant (`ready_at.max(device free_at)`, ns).
    dispatch_at: f64,
    /// Batch execution time on the device (ns).
    gpu_ns: f64,
    /// Slice of `gpu_ns` spent in block + global reductions (ns).
    reduction_ns: f64,
    /// Serving batch ordinal (dispatch order).
    batch: u64,
    /// Cluster device index that executed the batch (0 for a bare engine).
    device: u32,
}

/// Computes each request's critical path and writes its latency.
///
/// The end-to-end latency is *constructed* as the left-to-right sum
/// `form + queue + execute` rather than `finished_at − arrival`, so the
/// critical-path components sum to it bitwise in the flight-recorder export
/// (DESIGN.md §2.15). Each component is non-negative: `dispatch_at ≥
/// ready_at` and rounding is monotone, so `fl(dispatch − arrival) ≥ form`.
/// Shared verbatim by the single-engine and cluster dispatchers so a
/// 1-device cluster reproduces [`ServingSim`]'s floats bit-for-bit.
/// Records land in `sink` only when it is enabled; the latency arithmetic
/// runs either way.
fn record_request_paths(
    sink: &TelemetrySink,
    latencies: &mut [f64],
    first: usize,
    last: usize,
    interarrival_ns: f64,
    ctx: &BatchPathCtx,
) {
    for (i, lat) in latencies.iter_mut().enumerate().take(last).skip(first) {
        let arrival = i as f64 * interarrival_ns;
        let form = (ctx.ready_at - arrival).max(0.0);
        let queue = (ctx.dispatch_at - arrival) - form;
        let total = form + queue + ctx.gpu_ns;
        *lat = total;
        if sink.is_enabled() {
            sink.push_request_path(RequestPathRecord {
                request: i as u64,
                batch: ctx.batch,
                device: ctx.device,
                arrival_ns: arrival,
                form_ns: form,
                queue_ns: queue,
                execute_ns: ctx.gpu_ns,
                reduction_ns: ctx.reduction_ns,
                total_ns: total,
            });
        }
    }
}

/// Serving simulator: a request trace, a policy, and an engine.
pub struct ServingSim<'e> {
    engine: &'e mut Engine,
    policy: BatchingPolicy,
}

impl<'e> ServingSim<'e> {
    /// Wraps an engine with a batching policy.
    pub fn new(engine: &'e mut Engine, policy: BatchingPolicy) -> Self {
        Self { engine, policy }
    }

    /// Replays a trace of requests arriving at a constant rate.
    ///
    /// `samples` supplies the request payloads (row `i % n` serves request
    /// `i`); `n_requests` requests arrive `interarrival_ns` apart. The GPU
    /// serves batches one at a time (single simulated stream).
    ///
    /// # Panics
    ///
    /// Panics if the sample matrix is empty or `n_requests == 0`.
    #[must_use]
    pub fn run_uniform_trace(
        &mut self,
        samples: &SampleMatrix,
        n_requests: usize,
        interarrival_ns: f64,
    ) -> ServingReport {
        self.run_uniform_trace_with_deadline(samples, n_requests, interarrival_ns, None)
    }

    /// [`ServingSim::run_uniform_trace`] with every request tagged with a
    /// latency deadline: the report gains [`ServingReport::slo_attainment`]
    /// and the time-series export gains per-window SLO windows. The replay
    /// arithmetic is identical — a deadline only adds observability.
    ///
    /// # Panics
    ///
    /// Panics if the sample matrix is empty or `n_requests == 0`.
    #[must_use]
    pub fn run_uniform_trace_with_deadline(
        &mut self,
        samples: &SampleMatrix,
        n_requests: usize,
        interarrival_ns: f64,
        deadline_ns: Option<f64>,
    ) -> ServingReport {
        assert!(samples.n_samples() > 0, "need request payloads");
        assert!(n_requests > 0, "need at least one request");
        self.policy.validate();
        let n_payloads = samples.n_samples();
        let sink = self.engine.telemetry().clone();
        sink.name_process(PID_SERVING, "serving");
        let mut batches = Vec::new();
        let mut latencies = vec![0.0f64; n_requests];
        let mut gpu_free_at = 0.0f64;
        let mut next_request = 0usize;
        while next_request < n_requests {
            // Collect the next batch: wait until either max_batch requests
            // have arrived, or the oldest waiting request hits the deadline
            // (whichever dispatch instant is earliest once the GPU is free).
            let first = next_request;
            let (first_arrival, ready_at) =
                batch_ready_at(first, n_requests, interarrival_ns, &self.policy);
            // The policy is ready to dispatch at `ready_at`; an earlier batch
            // still on the GPU delays the actual dispatch past it.
            let dispatch_at = ready_at.max(gpu_free_at);
            // Everything that has arrived by the dispatch instant (capped at
            // max_batch) rides this batch.
            let last_arrived = last_arrival_by(dispatch_at, first, n_requests, interarrival_ns);
            let last = (last_arrived + 1).min(first + self.policy.max_batch);
            let size = last - first;
            let rows: Vec<usize> = (first..last).map(|r| r % n_payloads).collect();
            let batch = samples.select(&rows);
            // Pin the engine's simulated clock to the dispatch instant so the
            // batch's kernel/engine spans land where the batch actually ran.
            self.engine.set_sim_clock_ns(dispatch_at);
            let result = self.engine.infer(&batch);
            let gpu_ns = result.run.kernel.total_ns;
            let finished_at = dispatch_at + gpu_ns;
            sink.add(Counter::ServingBatches, 1);
            sink.add(Counter::ServingRequests, size as u64);
            let record = BatchRecord {
                size,
                dispatched_at_ns: dispatch_at,
                gpu_ns,
                strategy: result.strategy,
                chunks: result.chunks,
                mem_in_use_bytes: result.mem_in_use_bytes,
            };
            batch_spans(&sink, batches.len(), &record, first_arrival, ready_at);
            batch_timeseries(&sink, &record, ready_at);
            sink.ts_gauge(
                0,
                timeseries::QUEUE_DEPTH,
                dispatch_at,
                (last_arrived + 1 - last) as f64,
            );
            record_request_paths(
                &sink,
                &mut latencies,
                first,
                last,
                interarrival_ns,
                &BatchPathCtx {
                    ready_at,
                    dispatch_at,
                    gpu_ns,
                    reduction_ns: result.run.kernel.block_reduction_wall_ns
                        + result.run.kernel.global_reduction_ns,
                    batch: batches.len() as u64,
                    device: 0,
                },
            );
            request_windows(&sink, &latencies, first, last, finished_at, deadline_ns);
            batches.push(record);
            gpu_free_at = finished_at;
            next_request = last;
        }
        // Request latencies feed the profiler's serving histogram; recorded
        // once from this (caller) thread, so the export stays deterministic.
        if sink.is_enabled() {
            sink.record_serving_latencies(&latencies);
        }
        ServingReport::new(
            batches,
            latencies,
            gpu_free_at,
            self.engine.memory().high_water_bytes(),
        )
        .with_deadline(deadline_ns)
    }
}

/// One device's aggregate share of a cluster serving trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceServingStats {
    /// Device index within the cluster.
    pub device: usize,
    /// Device model name.
    pub device_name: String,
    /// Batches this device executed.
    pub batches: usize,
    /// Requests this device served.
    pub requests: usize,
    /// Total simulated GPU time on this device (ns).
    pub busy_ns: f64,
    /// High-water simulated device-memory footprint (bytes).
    pub mem_high_water_bytes: u64,
}

/// A [`ServingReport`] plus the per-device view of a cluster trace.
#[derive(Clone, Debug)]
pub struct ClusterServingReport {
    /// Cluster-wide statistics, shaped exactly like the single-engine
    /// report (1-device clusters reproduce it bit-for-bit). The memory
    /// high water is summed across devices.
    pub report: ServingReport,
    /// Device that executed batch `i` (parallel to `report.batches`).
    pub batch_devices: Vec<usize>,
    /// Per-device aggregates, one entry per cluster device (devices that
    /// never ran a batch report zeros).
    pub per_device: Vec<DeviceServingStats>,
}

/// Multi-GPU serving: one batching queue feeding N device engines.
///
/// Batch formation follows the same policy arithmetic as [`ServingSim`];
/// each ready batch is dispatched to the device that frees up earliest,
/// with the lowest index winning ties — a deterministic rule, so the
/// device assignment is a pure function of the trace. Devices execute
/// batches concurrently on the simulated timeline (each tracks its own
/// `free_at` clock) while the simulation itself stays sequential on the
/// caller thread.
pub struct ClusterServingSim<'c> {
    cluster: &'c mut GpuCluster,
    policy: BatchingPolicy,
}

impl<'c> ClusterServingSim<'c> {
    /// Wraps a cluster with a batching policy.
    pub fn new(cluster: &'c mut GpuCluster, policy: BatchingPolicy) -> Self {
        Self { cluster, policy }
    }

    /// Replays a constant-rate request trace across the cluster (the
    /// multi-GPU analogue of [`ServingSim::run_uniform_trace`]).
    ///
    /// Telemetry for each batch lands in the executing device's private
    /// sink; the cluster's telemetry is flushed (device-index order) before
    /// returning, so the caller can export immediately.
    ///
    /// # Panics
    ///
    /// Panics if the sample matrix is empty, `n_requests == 0`, or the
    /// policy fails validation.
    #[must_use]
    pub fn run_uniform_trace(
        &mut self,
        samples: &SampleMatrix,
        n_requests: usize,
        interarrival_ns: f64,
    ) -> ClusterServingReport {
        self.run_uniform_trace_with_deadline(samples, n_requests, interarrival_ns, None)
    }

    /// [`ClusterServingSim::run_uniform_trace`] with every request tagged
    /// with a latency deadline (the cluster analogue of
    /// [`ServingSim::run_uniform_trace_with_deadline`]). Latency and SLO
    /// windows are cluster-level statistics recorded into the cluster sink;
    /// per-device series land in each device's private sink and are
    /// absorbed in device-index order by the flush.
    ///
    /// # Panics
    ///
    /// Panics if the sample matrix is empty, `n_requests == 0`, or the
    /// policy fails validation.
    #[must_use]
    pub fn run_uniform_trace_with_deadline(
        &mut self,
        samples: &SampleMatrix,
        n_requests: usize,
        interarrival_ns: f64,
        deadline_ns: Option<f64>,
    ) -> ClusterServingReport {
        assert!(samples.n_samples() > 0, "need request payloads");
        assert!(n_requests > 0, "need at least one request");
        self.policy.validate();
        let n_payloads = samples.n_samples();
        let n_devices = self.cluster.n_devices();
        for d in 0..n_devices {
            self.cluster.device_sink(d).name_process(PID_SERVING, "serving");
        }
        let mut batches = Vec::new();
        let mut batch_devices = Vec::new();
        let mut latencies = vec![0.0f64; n_requests];
        let mut free_at = vec![0.0f64; n_devices];
        let mut dev_batches = vec![0usize; n_devices];
        let mut dev_requests = vec![0usize; n_devices];
        let mut dev_busy_ns = vec![0.0f64; n_devices];
        let mut next_request = 0usize;
        while next_request < n_requests {
            let first = next_request;
            let (first_arrival, ready_at) =
                batch_ready_at(first, n_requests, interarrival_ns, &self.policy);
            // Earliest-free device; ascending scan with strict `<` keeps the
            // lowest index on ties, so the assignment is deterministic.
            let mut dev = 0usize;
            for (i, &f) in free_at.iter().enumerate().skip(1) {
                if f < free_at[dev] {
                    dev = i;
                }
            }
            let dispatch_at = ready_at.max(free_at[dev]);
            let last_arrived = last_arrival_by(dispatch_at, first, n_requests, interarrival_ns);
            let last = (last_arrived + 1).min(first + self.policy.max_batch);
            let size = last - first;
            let rows: Vec<usize> = (first..last).map(|r| r % n_payloads).collect();
            let batch = samples.select(&rows);
            let engine = self.cluster.engine_mut(dev);
            engine.set_sim_clock_ns(dispatch_at);
            let result = engine.infer(&batch);
            let gpu_ns = result.run.kernel.total_ns;
            let finished_at = dispatch_at + gpu_ns;
            let dsink = self.cluster.device_sink(dev);
            dsink.add(Counter::ServingBatches, 1);
            dsink.add(Counter::ServingRequests, size as u64);
            let record = BatchRecord {
                size,
                dispatched_at_ns: dispatch_at,
                gpu_ns,
                strategy: result.strategy,
                chunks: result.chunks,
                mem_in_use_bytes: result.mem_in_use_bytes,
            };
            batch_spans(dsink, batches.len(), &record, first_arrival, ready_at);
            batch_timeseries(dsink, &record, ready_at);
            self.cluster.telemetry().ts_gauge(
                0,
                timeseries::QUEUE_DEPTH,
                dispatch_at,
                (last_arrived + 1 - last) as f64,
            );
            // Request paths are a queue-level statistic like the latency
            // windows: recorded into the cluster sink with an explicit
            // device index, in global dispatch order.
            record_request_paths(
                self.cluster.telemetry(),
                &mut latencies,
                first,
                last,
                interarrival_ns,
                &BatchPathCtx {
                    ready_at,
                    dispatch_at,
                    gpu_ns,
                    reduction_ns: result.run.kernel.block_reduction_wall_ns
                        + result.run.kernel.global_reduction_ns,
                    batch: batches.len() as u64,
                    device: dev as u32,
                },
            );
            request_windows(
                self.cluster.telemetry(),
                &latencies,
                first,
                last,
                finished_at,
                deadline_ns,
            );
            batches.push(record);
            batch_devices.push(dev);
            dev_batches[dev] += 1;
            dev_requests[dev] += size;
            dev_busy_ns[dev] += gpu_ns;
            free_at[dev] = finished_at;
            next_request = last;
        }
        let makespan_ns = free_at.iter().copied().fold(0.0f64, f64::max);
        // Latencies are a cluster-level statistic: recorded once into the
        // cluster sink (after the device absorb below they sit next to the
        // devices' kernel histograms in one export).
        if self.cluster.telemetry().is_enabled() {
            self.cluster.telemetry().record_serving_latencies(&latencies);
        }
        self.cluster.flush_telemetry();
        let per_device = (0..n_devices)
            .map(|d| DeviceServingStats {
                device: d,
                device_name: self.cluster.engine(d).device().name.to_string(),
                batches: dev_batches[d],
                requests: dev_requests[d],
                busy_ns: dev_busy_ns[d],
                mem_high_water_bytes: self.cluster.engine(d).memory().high_water_bytes(),
            })
            .collect();
        let mem_high_water_bytes: u64 = (0..n_devices)
            .map(|d| self.cluster.engine(d).memory().high_water_bytes())
            .sum();
        ClusterServingReport {
            report: ServingReport::new(batches, latencies, makespan_ns, mem_high_water_bytes)
                .with_deadline(deadline_ns),
            batch_devices,
            per_device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::train_for_spec;
    use tahoe_gpu_sim::device::DeviceSpec;

    fn engine() -> (Engine, SampleMatrix) {
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let options = EngineOptions {
            functional: false,
            ..EngineOptions::tahoe()
        };
        (
            Engine::new(DeviceSpec::tesla_p100(), forest, options),
            infer.samples,
        )
    }

    #[test]
    fn percentiles_survive_an_injected_nan_latency() {
        // One poisoned latency must not take down report generation: NaN
        // sorts last under `total_cmp`, so every percentile below the tail
        // still answers from the finite values.
        let report = ServingReport::new(
            Vec::new(),
            vec![300.0, f64::NAN, 100.0, 200.0],
            1_000.0,
            0,
        );
        assert_eq!(report.latency_percentile_ns(0.0), 100.0);
        assert_eq!(report.latency_percentile_ns(1.0 / 3.0), 200.0);
        assert_eq!(report.latency_percentile_ns(2.0 / 3.0), 300.0);
        assert!(report.latency_percentile_ns(1.0).is_nan(), "NaN sorts last");
        assert_eq!(report.n_requests(), 4);
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let (mut e, samples) = engine();
        let mut sim = ServingSim::new(&mut e, BatchingPolicy::low_latency());
        let report = sim.run_uniform_trace(&samples, 500, 1_000.0);
        assert_eq!(report.n_requests(), 500);
        let served: usize = report.batches.iter().map(|b| b.size).sum();
        assert_eq!(served, 500);
        assert!(report.latencies_ns.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn batch_sizes_respect_the_policy() {
        let (mut e, samples) = engine();
        let policy = BatchingPolicy {
            max_batch: 32,
            max_delay_ns: 1e12,
        };
        let mut sim = ServingSim::new(&mut e, policy);
        let report = sim.run_uniform_trace(&samples, 200, 100.0);
        for b in &report.batches {
            assert!(b.size <= 32);
        }
    }

    #[test]
    fn deadline_bounds_queueing_latency_under_light_load() {
        let (mut e, samples) = engine();
        let policy = BatchingPolicy {
            max_batch: 100_000,
            max_delay_ns: 50_000.0,
        };
        let mut sim = ServingSim::new(&mut e, policy);
        // Slow arrivals: the deadline, not the batch size, dispatches.
        let report = sim.run_uniform_trace(&samples, 100, 10_000.0);
        let gpu_max = report
            .batches
            .iter()
            .map(|b| b.gpu_ns)
            .fold(0.0f64, f64::max);
        let p100 = report.latency_percentile_ns(1.0);
        assert!(
            p100 <= 50_000.0 + gpu_max * 2.0 + 10_000.0,
            "tail latency {p100} not bounded by deadline + service"
        );
    }

    #[test]
    fn throughput_policy_builds_bigger_batches_than_latency_policy() {
        let (mut e, samples) = engine();
        let fast_arrivals = 50.0;
        let lat = ServingSim::new(&mut e, BatchingPolicy::low_latency())
            .run_uniform_trace(&samples, 2_000, fast_arrivals);
        let thr = ServingSim::new(&mut e, BatchingPolicy::high_throughput())
            .run_uniform_trace(&samples, 2_000, fast_arrivals);
        assert!(thr.mean_batch_size() > lat.mean_batch_size());
        // Larger batches amortize better: fewer dispatches.
        assert!(thr.batches.len() < lat.batches.len());
    }

    #[test]
    fn arrival_counting_is_robust_on_float_boundaries() {
        // With max_batch == n_requests and a loose deadline, the dispatch
        // instant is the last request's exact arrival time. Naive float
        // division undercounts on some interarrivals (e.g. 7 × 0.7 / 0.7
        // floors to 6) and would split the trace into two batches.
        let (mut e, samples) = engine();
        for &ia in &[0.1, 0.3, 0.7, 1.0, 333.3] {
            let policy = BatchingPolicy {
                max_batch: 8,
                max_delay_ns: 1e12,
            };
            let mut sim = ServingSim::new(&mut e, policy);
            let report = sim.run_uniform_trace(&samples, 8, ia);
            assert_eq!(report.batches.len(), 1, "interarrival {ia} split the batch");
            assert_eq!(report.batches[0].size, 8);
        }
    }

    #[test]
    fn serving_reports_memory_footprint() {
        let (mut e, samples) = engine();
        let mut sim = ServingSim::new(&mut e, BatchingPolicy::low_latency());
        let report = sim.run_uniform_trace(&samples, 300, 500.0);
        assert!(report.mem_high_water_bytes > 0);
        assert_eq!(report.split_batches(), 0, "smoke batches fit DRAM unsplit");
        for b in &report.batches {
            assert_eq!(b.chunks, 1);
            assert!(b.mem_in_use_bytes > 0);
        }
    }

    #[test]
    fn percentile_edges_and_empty_report() {
        let empty = ServingReport::new(Vec::new(), Vec::new(), 0.0, 0);
        assert_eq!(empty.latency_percentile_ns(0.0), 0.0);
        assert_eq!(empty.latency_percentile_ns(1.0), 0.0);
        let r = ServingReport::new(Vec::new(), vec![30.0, 10.0, 20.0], 1.0, 0);
        assert_eq!(r.latency_percentile_ns(0.0), 10.0);
        assert_eq!(r.latency_percentile_ns(0.5), 20.0);
        assert_eq!(r.latency_percentile_ns(1.0), 30.0);
        // The cached sort answers repeat queries consistently.
        assert_eq!(r.latency_percentile_ns(1.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let r = ServingReport::new(Vec::new(), vec![1.0], 1.0, 0);
        let _ = r.latency_percentile_ns(1.5);
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn zero_max_batch_is_rejected() {
        let _ = BatchingPolicy::new(0, 1_000.0);
    }

    #[test]
    #[should_panic(expected = "max_delay_ns must be finite and non-negative")]
    fn negative_delay_is_rejected() {
        let _ = BatchingPolicy::new(64, -1.0);
    }

    #[test]
    #[should_panic(expected = "max_delay_ns must be finite and non-negative")]
    fn non_finite_delay_is_rejected() {
        let _ = BatchingPolicy::new(64, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn struct_literal_zero_policy_is_caught_at_run() {
        // The underflow this guards: `first + max_batch - 1` with
        // max_batch == 0 wrapped before the validation existed.
        let (mut e, samples) = engine();
        let policy = BatchingPolicy { max_batch: 0, max_delay_ns: 1_000.0 };
        let mut sim = ServingSim::new(&mut e, policy);
        let _ = sim.run_uniform_trace(&samples, 10, 100.0);
    }

    #[test]
    fn validated_constructor_accepts_sane_policies() {
        let p = BatchingPolicy::new(64, 0.0);
        assert_eq!(p.max_batch, 64);
        assert_eq!(p.max_delay_ns, 0.0);
    }

    fn cluster(n: usize) -> (crate::cluster::GpuCluster, SampleMatrix) {
        use tahoe_gpu_sim::device::DeviceSpec;
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let options = EngineOptions {
            functional: false,
            ..EngineOptions::tahoe()
        };
        (
            crate::cluster::GpuCluster::homogeneous(
                &DeviceSpec::tesla_p100(),
                n,
                &forest,
                options,
            ),
            infer.samples,
        )
    }

    #[test]
    fn cluster_serving_conserves_requests() {
        let (mut c, samples) = cluster(3);
        let mut sim = ClusterServingSim::new(&mut c, BatchingPolicy::low_latency());
        let report = sim.run_uniform_trace(&samples, 500, 1_000.0);
        assert_eq!(report.report.n_requests(), 500);
        let served: usize = report.report.batches.iter().map(|b| b.size).sum();
        assert_eq!(served, 500);
        let per_device: usize = report.per_device.iter().map(|d| d.requests).sum();
        assert_eq!(per_device, 500);
        assert_eq!(report.batch_devices.len(), report.report.batches.len());
        for (b, &d) in report.report.batches.iter().zip(&report.batch_devices) {
            assert!(d < 3, "batch on unknown device");
            assert!(b.size > 0);
        }
    }

    #[test]
    fn saturated_cluster_spreads_batches_across_devices() {
        let (mut c, samples) = cluster(3);
        // Arrivals far faster than the GPU: every device stays busy, so the
        // earliest-free rule must rotate through all of them — and the first
        // three batches land on devices 0, 1, 2 in order (all free at t=0,
        // lowest index wins).
        let policy = BatchingPolicy::new(32, 1e9);
        let mut sim = ClusterServingSim::new(&mut c, policy);
        let report = sim.run_uniform_trace(&samples, 2_000, 10.0);
        assert!(report.batch_devices.len() >= 3);
        assert_eq!(&report.batch_devices[..3], &[0, 1, 2]);
        for d in &report.per_device {
            assert!(d.batches > 0, "device {} never used", d.device);
            assert!(d.busy_ns > 0.0);
        }
        // Makespan is the slowest device's finish line.
        let busiest_finish = report
            .report
            .batches
            .iter()
            .map(|b| b.dispatched_at_ns + b.gpu_ns)
            .fold(0.0f64, f64::max);
        assert_eq!(report.report.makespan_ns.to_bits(), busiest_finish.to_bits());
    }

    #[test]
    fn serving_telemetry_counts_requests_and_batches() {
        use crate::telemetry::TelemetrySink;
        let spec = DatasetSpec::by_name("letter").unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        let options = EngineOptions {
            functional: false,
            ..EngineOptions::tahoe()
        };
        let sink = TelemetrySink::recording();
        let mut e =
            Engine::with_telemetry(DeviceSpec::tesla_p100(), forest, options, sink.clone());
        let mut sim = ServingSim::new(&mut e, BatchingPolicy::low_latency());
        let report = sim.run_uniform_trace(&infer.samples, 100, 1_000.0);
        let snap = sink.snapshot();
        assert_eq!(snap.counters["serving_requests"], 100);
        assert_eq!(snap.counters["serving_batches"], report.batches.len() as u64);
        assert_eq!(snap.counters["engine_batches"], report.batches.len() as u64);
        assert!(snap.counters["kernel_launches"] >= report.batches.len() as u64);
        assert!(snap.span_count > 0, "serving must record spans");
    }

    #[test]
    fn report_statistics_are_consistent() {
        let (mut e, samples) = engine();
        let mut sim = ServingSim::new(&mut e, BatchingPolicy::low_latency());
        let report = sim.run_uniform_trace(&samples, 300, 500.0);
        let p50 = report.latency_percentile_ns(0.5);
        let p99 = report.latency_percentile_ns(0.99);
        assert!(p50 <= p99);
        assert!(report.mean_latency_ns() > 0.0);
        assert!(report.throughput_per_us() > 0.0);
        assert!(report.makespan_ns >= 300.0 * 500.0 - 500.0);
    }
}
