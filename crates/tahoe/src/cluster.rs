//! Multi-GPU cluster: one full [`Engine`] per device (paper §7.5).
//!
//! The paper scales inference by partitioning the batch across GPUs with no
//! inter-device communication; end-to-end time is the slowest device's time.
//! [`GpuCluster`] reproduces that with *real* per-device state — each device
//! slot owns an engine with its own capacity-modeled `DeviceMemory`, its own
//! simulated clock, and its own telemetry sink — so per-device memory
//! pressure, strategy selection, and kernel profiles are all observable, and
//! heterogeneous mixes (K80 + P100 + V100) fall out naturally.
//!
//! # Determinism
//!
//! Devices simulate sequentially on the caller thread (each engine's kernel
//! still fans its sampled blocks across `TAHOE_SIM_THREADS` workers), and
//! per-device telemetry is held in private sinks that
//! [`GpuCluster::flush_telemetry`] absorbs into the cluster sink in
//! device-index order. Every span's pid is remapped with
//! [`crate::telemetry::device_pid`] so each device keeps its own process
//! group in the exported trace, and the absorb drops the engines'
//! wall-clock-measured host spans — the merged exports are therefore
//! byte-identical at any worker count (pinned by `tests/determinism.rs`).

use tahoe_datasets::SampleMatrix;
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::multigpu::partition;

use crate::engine::{Engine, EngineOptions};
use crate::strategy::Strategy;
use crate::telemetry::{Counter, TelemetrySink};
use tahoe_forest::Forest;

/// One device's share of a partitioned cluster inference.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceRun {
    /// Device index within the cluster.
    pub device: usize,
    /// Device model name.
    pub device_name: String,
    /// Samples this device served.
    pub n_samples: usize,
    /// Simulated kernel time of the device's partition (ns).
    pub elapsed_ns: f64,
    /// High-water simulated device-memory footprint so far (bytes).
    pub mem_high_water_bytes: u64,
    /// Strategy the device's engine selected.
    pub strategy: Strategy,
}

/// Result of one data-parallel cluster inference.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// Per-device shares, in device-index order; empty partitions (more
    /// devices than samples) are skipped, so a share's `device` field may
    /// jump indices.
    pub per_device: Vec<DeviceRun>,
    /// End-to-end time: the slowest participating device (ns).
    pub total_ns: f64,
    /// Predictions concatenated in device (= sample) order; empty when the
    /// engines run with `functional: false`.
    pub predictions: Vec<f32>,
}

/// N per-device engines over one replicated forest image.
pub struct GpuCluster {
    engines: Vec<Engine>,
    /// Private per-device recording sinks (all `Disabled` when the cluster
    /// sink is disabled); drained by [`GpuCluster::flush_telemetry`].
    device_sinks: Vec<TelemetrySink>,
    /// The cluster-wide sink exports are read from.
    sink: TelemetrySink,
}

/// Deterministic per-slot "silicon lottery" slowdown: device 0 is the
/// nominal reference (exactly 1.0, so a 1-device cluster is bit-identical
/// to a standalone [`Engine`]); every other slot sustains a boost clock up
/// to 1 % below nominal — the binning/thermal spread real fleets measure
/// across nominally identical boards. A pure function of the slot index, so
/// cluster timing stays fully reproducible.
fn silicon_lottery_slowdown(device: usize) -> f64 {
    if device == 0 {
        return 1.0;
    }
    let h = (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    1.0 + ((h % 997) + 1) as f64 * 1e-5
}

impl GpuCluster {
    /// Builds one engine per device spec, replicating the converted forest
    /// image across identical device models instead of re-running the
    /// CPU-side rearrange/convert/microbench pipeline per slot. Each slot's
    /// engine executes on a [`DeviceSpec::downclocked`] copy of its spec
    /// (see [`silicon_lottery_slowdown`]): slot 0 is nominal, later slots
    /// run up to 1 % slower, deterministically.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is empty or a device spec fails validation.
    #[must_use]
    pub fn new(devices: Vec<DeviceSpec>, forest: &Forest, options: EngineOptions) -> Self {
        Self::with_telemetry(devices, forest, options, TelemetrySink::Disabled)
    }

    /// `n` identical devices.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or the device spec fails validation.
    #[must_use]
    pub fn homogeneous(
        device: &DeviceSpec,
        n: usize,
        forest: &Forest,
        options: EngineOptions,
    ) -> Self {
        Self::new(vec![device.clone(); n], forest, options)
    }

    /// As [`GpuCluster::new`], recording into `sink`. Each device gets a
    /// private recording sink so worker scheduling can never interleave
    /// devices' telemetry; [`GpuCluster::flush_telemetry`] merges them into
    /// `sink` in device-index order.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is empty or a device spec fails validation.
    #[must_use]
    pub fn with_telemetry(
        devices: Vec<DeviceSpec>,
        forest: &Forest,
        options: EngineOptions,
        sink: TelemetrySink,
    ) -> Self {
        assert!(!devices.is_empty(), "need at least one device");
        let mut engines: Vec<Engine> = Vec::with_capacity(devices.len());
        let mut nominal: Vec<DeviceSpec> = Vec::with_capacity(devices.len());
        let mut device_sinks = Vec::with_capacity(devices.len());
        for (d, spec) in devices.into_iter().enumerate() {
            let dsink = if sink.is_enabled() {
                let dsink = TelemetrySink::recording();
                // Device sinks must bucket time-series samples with the
                // cluster's window so the flush-time merge folds windows
                // one-to-one (DESIGN.md §2.14).
                dsink.set_timeseries_window_ns(sink.timeseries_window_ns());
                dsink
            } else {
                TelemetrySink::Disabled
            };
            // Calibration (rearrange/convert/microbench) runs once per
            // nominal device model; the replica then executes on its
            // lottery-perturbed spec, just as a real fleet calibrates once
            // per SKU and lives with per-board clock spread.
            let exec_spec = spec.downclocked(silicon_lottery_slowdown(d));
            let engine = match nominal.iter().position(|n| *n == spec) {
                Some(twin) => engines[twin].replicate(exec_spec, dsink.clone()),
                None => Engine::with_telemetry(exec_spec, forest.clone(), options, dsink.clone()),
            };
            engines.push(engine);
            nominal.push(spec);
            device_sinks.push(dsink);
        }
        Self { engines, device_sinks, sink }
    }

    /// Devices in the cluster.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.engines.len()
    }

    /// Device `idx`'s engine.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn engine(&self, idx: usize) -> &Engine {
        &self.engines[idx]
    }

    /// Mutable access to device `idx`'s engine.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn engine_mut(&mut self, idx: usize) -> &mut Engine {
        &mut self.engines[idx]
    }

    /// Device `idx`'s private telemetry sink (the serving dispatcher records
    /// batch spans into the device that ran the batch).
    pub(crate) fn device_sink(&self, idx: usize) -> &TelemetrySink {
        &self.device_sinks[idx]
    }

    /// The cluster-wide sink. Call [`GpuCluster::flush_telemetry`] before
    /// exporting: per-device activity sits in private sinks until merged.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Partitions `samples` evenly across all devices and infers each share
    /// on its own engine.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or attribute mismatch.
    pub fn infer_partitioned(&mut self, samples: &SampleMatrix) -> ClusterRun {
        self.infer_partitioned_across(samples, self.n_devices())
    }

    /// As [`GpuCluster::infer_partitioned`], using only the first
    /// `n_devices` devices (the strong-scaling sweep reuses one max-size
    /// cluster across device counts).
    ///
    /// Empty partitions (more devices than samples) are skipped: no engine
    /// call, no [`DeviceRun`] — never an `inf`/zero-time placeholder.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, attribute mismatch, or when `n_devices` is
    /// zero or exceeds the cluster size.
    pub fn infer_partitioned_across(
        &mut self,
        samples: &SampleMatrix,
        n_devices: usize,
    ) -> ClusterRun {
        assert!(
            n_devices > 0 && n_devices <= self.engines.len(),
            "n_devices {n_devices} outside 1..={}",
            self.engines.len()
        );
        assert!(samples.n_samples() > 0, "cannot infer an empty batch");
        let parts = partition(samples.n_samples(), n_devices);
        let mut per_device = Vec::with_capacity(n_devices);
        let mut predictions = Vec::new();
        let mut total_ns = 0.0f64;
        for (d, range) in parts.into_iter().enumerate() {
            if range.is_empty() {
                continue;
            }
            let rows: Vec<usize> = range.collect();
            let share = samples.select(&rows);
            let run = self.infer_on(d, &share, &mut predictions);
            total_ns = total_ns.max(run.elapsed_ns);
            per_device.push(run);
        }
        ClusterRun { per_device, total_ns, predictions }
    }

    /// Infers a full batch on one device (the weak-scaling path: every
    /// device gets its own perturbed copy of the dataset).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, attribute mismatch, or an out-of-range
    /// device index.
    pub fn infer_one(&mut self, device: usize, samples: &SampleMatrix) -> DeviceRun {
        let mut predictions = Vec::new();
        self.infer_on(device, samples, &mut predictions)
    }

    fn infer_on(
        &mut self,
        device: usize,
        samples: &SampleMatrix,
        predictions: &mut Vec<f32>,
    ) -> DeviceRun {
        let engine = &mut self.engines[device];
        let result = engine.infer(samples);
        predictions.extend_from_slice(&result.predictions);
        DeviceRun {
            device,
            device_name: engine.device().name.to_string(),
            n_samples: samples.n_samples(),
            elapsed_ns: result.run.kernel.total_ns,
            mem_high_water_bytes: result.mem_high_water_bytes,
            strategy: result.strategy,
        }
    }

    /// Merges every device's private telemetry into the cluster sink, in
    /// device-index order, then refreshes the cluster-wide allocator gauges
    /// (in-use = sum of live footprints, high-water = sum of per-device
    /// high waters — per-device gauges are excluded from the absorb because
    /// summing point-in-time snapshots double-counts).
    ///
    /// Idempotent between runs: device sinks are drained, so flushing twice
    /// adds nothing new. Call after simulation, before exporting.
    pub fn flush_telemetry(&self) {
        if !self.sink.is_enabled() {
            return;
        }
        for (d, dsink) in self.device_sinks.iter().enumerate() {
            self.sink.absorb_device(dsink, d, self.engines[d].device().name);
        }
        let in_use: u64 = self.engines.iter().map(|e| e.memory().in_use_bytes()).sum();
        let high_water: u64 = self
            .engines
            .iter()
            .map(|e| e.memory().high_water_bytes())
            .sum();
        self.sink.set(Counter::AllocInUseBytes, in_use);
        self.sink.max(Counter::AllocHighWaterBytes, high_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::{predict_dataset, train_for_spec};

    fn setup(name: &str) -> (Forest, SampleMatrix) {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        let (train, infer) = data.split_train_infer();
        let forest = train_for_spec(&spec, &train, Scale::Smoke);
        (forest, infer.samples)
    }

    #[test]
    fn partitioned_predictions_match_cpu_reference() {
        let (forest, samples) = setup("letter");
        let reference = predict_dataset(&forest, &samples);
        let devices = vec![
            DeviceSpec::tesla_k80(),
            DeviceSpec::tesla_p100(),
            DeviceSpec::tesla_v100(),
        ];
        let mut cluster = GpuCluster::new(devices, &forest, EngineOptions::tahoe());
        let run = cluster.infer_partitioned(&samples);
        assert_eq!(run.per_device.len(), 3);
        assert_eq!(run.predictions.len(), reference.len());
        for (a, b) in run.predictions.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        let served: usize = run.per_device.iter().map(|d| d.n_samples).sum();
        assert_eq!(served, samples.n_samples());
        let slowest = run
            .per_device
            .iter()
            .map(|d| d.elapsed_ns)
            .fold(0.0f64, f64::max);
        assert_eq!(run.total_ns.to_bits(), slowest.to_bits());
    }

    #[test]
    fn empty_partitions_are_skipped_not_zeroed() {
        let (forest, samples) = setup("letter");
        let mut cluster =
            GpuCluster::homogeneous(&DeviceSpec::tesla_p100(), 8, &forest, EngineOptions::tahoe());
        let rows: Vec<usize> = (0..3).collect();
        let tiny = samples.select(&rows);
        let run = cluster.infer_partitioned(&tiny);
        assert_eq!(run.per_device.len(), 3, "5 of 8 partitions are empty");
        assert!(run.per_device.iter().all(|d| d.n_samples == 1));
        assert!(run.per_device.iter().all(|d| d.elapsed_ns.is_finite() && d.elapsed_ns > 0.0));
        assert!(run.total_ns.is_finite());
    }

    #[test]
    fn replicated_engines_are_independent() {
        let (forest, samples) = setup("ijcnn1");
        let mut cluster =
            GpuCluster::homogeneous(&DeviceSpec::tesla_p100(), 2, &forest, EngineOptions::tahoe());
        // Device 0 sees a much larger batch than device 1: its staging
        // high-water must pull ahead, proving the allocators are not shared.
        let big: Vec<usize> = (0..samples.n_samples()).collect();
        let small = vec![0usize];
        let r0 = cluster.infer_one(0, &samples.select(&big));
        let r1 = cluster.infer_one(1, &samples.select(&small));
        assert!(r0.mem_high_water_bytes > r1.mem_high_water_bytes);
        // And both converted images came from one conversion pass.
        assert_eq!(
            cluster.engine(0).conversion(),
            cluster.engine(1).conversion(),
            "replica must reuse the original's conversion report"
        );
    }

    #[test]
    fn flush_merges_device_telemetry_with_per_device_pids() {
        use crate::telemetry::{device_pid, PID_GPU};
        let (forest, samples) = setup("letter");
        let sink = TelemetrySink::recording();
        let devices = vec![DeviceSpec::tesla_p100(), DeviceSpec::tesla_v100()];
        let mut cluster =
            GpuCluster::with_telemetry(devices, &forest, EngineOptions::tahoe(), sink.clone());
        let _ = cluster.infer_partitioned(&samples);
        assert_eq!(sink.snapshot().span_count, 0, "activity stays in device sinks until flushed");
        cluster.flush_telemetry();
        let snap = sink.snapshot();
        assert!(snap.span_count > 0);
        assert_eq!(snap.counters["kernel_launches"], 2);
        let trace = sink.chrome_trace_json();
        assert!(trace.contains(&format!("\"pid\": {}", device_pid(PID_GPU, 1))));
        assert!(trace.contains("[gpu1: Tesla V100]"));
        // Cluster high-water gauge sums both devices' forest images.
        let per_device_sum: u64 = (0..2)
            .map(|d| cluster.engine(d).memory().high_water_bytes())
            .sum();
        assert_eq!(snap.counters["alloc_high_water_bytes"], per_device_sum);
        // Idempotent: a second flush adds nothing.
        cluster.flush_telemetry();
        assert_eq!(sink.snapshot().span_count, snap.span_count);
        assert_eq!(sink.snapshot().counters["kernel_launches"], 2);
    }

    #[test]
    fn silicon_lottery_is_deterministic_and_bounded() {
        assert_eq!(silicon_lottery_slowdown(0).to_bits(), 1.0f64.to_bits(), "slot 0 is nominal");
        for d in 1..256 {
            let f = silicon_lottery_slowdown(d);
            assert!(f > 1.0 && f <= 1.01, "slot {d}: slowdown {f} out of (1, 1.01]");
            assert_eq!(f.to_bits(), silicon_lottery_slowdown(d).to_bits());
        }
        // Replicated slots of one model really run at different speeds: the
        // same batch takes (slightly) longer on a lottery-slowed slot.
        let (forest, samples) = setup("letter");
        let mut cluster =
            GpuCluster::homogeneous(&DeviceSpec::tesla_p100(), 3, &forest, EngineOptions::tahoe());
        let t0 = cluster.infer_one(0, &samples).elapsed_ns;
        let t1 = cluster.infer_one(1, &samples).elapsed_ns;
        let t2 = cluster.infer_one(2, &samples).elapsed_ns;
        assert!(t1 > t0, "slot 1 must trail the nominal slot ({t1} vs {t0})");
        assert!(t2 > t0, "slot 2 must trail the nominal slot ({t2} vs {t0})");
        assert_ne!(t1.to_bits(), t2.to_bits(), "distinct slots draw distinct clocks");
        assert!(t1 < t0 * 1.02 && t2 < t0 * 1.02, "spread stays within the 1% lottery band");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        let (forest, _) = setup("letter");
        let _ = GpuCluster::new(Vec::new(), &forest, EngineOptions::tahoe());
    }
}
