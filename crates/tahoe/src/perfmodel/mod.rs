//! Performance models for the four inference strategies (paper §6.1,
//! Eq. 1–7) and model-guided strategy selection (§6.2).
//!
//! The models consume the Table 1 notation: sample/forest parameters gathered
//! from the workload ([`ModelInputs`]) and hardware parameters measured
//! offline by microbenchmarks ([`tahoe_gpu_sim::microbench::measure`],
//! Algorithm 1 line 4). They predict a per-sample cost for each strategy;
//! the engine runs the cheapest.
//!
//! # Extensions over the paper's Eq. 1–7 (documented in `DESIGN.md`)
//!
//! The paper's models are bandwidth-only. On the authors' hardware, at their
//! batch sizes, latency was always hidden by occupancy, so that sufficed. At
//! reproduction scale the latency-bound regime is reachable (small batches,
//! low-occupancy launches), so the model adds a *serial-chain* roofline term:
//! each strategy has a per-sample dependent-access chain `C` (levels ×
//! measured latency), executed across `parallel_eff` samples in flight
//! (occupancy-limited blocks × samples per block). The per-sample estimate is
//!
//! ```text
//! T = max(T_SMEM + T_GMEM,  (C + T_B_REDU) / parallel_eff) + T_G_REDU
//! ```
//!
//! where `T_SMEM`/`T_GMEM` are the paper's Eq. 4–7 bandwidth terms verbatim
//! (with the splitting strategy's staging scaled by its sample-tiling factor)
//! and `T_B_REDU` is the block-reduction cost — charged per sample and, like
//! any other block-serial work, amortized across concurrent blocks. The
//! selection-accuracy experiment (§7.3) validates this extended model against
//! the simulator.

pub mod calibrate;

pub use calibrate::Calibrator;

use serde::{Deserialize, Serialize};

use tahoe_datasets::SampleMatrix;
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::occupancy::concurrent_blocks;
use tahoe_gpu_sim::MeasuredParams;

use crate::format::DeviceForest;
use crate::strategy::{Geometry, LaunchContext, Strategy};

/// Workload parameters of Table 1 (sample + forest rows).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelInputs {
    /// Size of one sample in bytes (`S_sample`).
    pub s_sample: f64,
    /// Samples per batch (`N_batch`).
    pub n_batch: f64,
    /// Mean tree depth (`D_tree`).
    pub d_tree: f64,
    /// Number of trees (`N_trees`).
    pub n_trees: f64,
    /// Encoded node size in bytes (`S_node`).
    pub s_node: f64,
    /// Attribute size in bytes (`S_att`).
    pub s_att: f64,
    /// Mean nodes per tree (`N_nodes`).
    pub n_nodes: f64,
    /// Forest shared-memory footprint in bytes (`S_forest`).
    pub s_forest: f64,
}

impl ModelInputs {
    /// Gathers the inputs from a device forest and its batch.
    #[must_use]
    pub fn gather(
        forest: &DeviceForest,
        host_stats: &tahoe_forest::ForestStats,
        samples: &SampleMatrix,
    ) -> Self {
        Self {
            s_sample: samples.sample_bytes() as f64,
            n_batch: samples.n_samples() as f64,
            d_tree: host_stats.avg_depth,
            n_trees: forest.n_trees() as f64,
            s_node: forest.node_bytes() as f64,
            s_att: 4.0,
            n_nodes: host_stats.avg_nodes_per_tree(),
            s_forest: forest.forest_smem_bytes() as f64,
        }
    }
}

/// A per-strategy cost prediction (per-sample ns).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Strategy modelled.
    pub strategy: Strategy,
    /// Shared-memory bandwidth term (`T_SMEM`, Eq. 4–7).
    pub t_smem: f64,
    /// Global-memory bandwidth term (`T_GMEM`, Eq. 4–7).
    pub t_gmem: f64,
    /// Serial-chain (latency) term, already amortized over in-flight samples.
    pub t_serial: f64,
    /// Block-reduction term (`T_B_REDU`), amortized like serial work.
    pub t_b_redu: f64,
    /// Global-reduction term (`T_G_REDU`).
    pub t_g_redu: f64,
}

impl Prediction {
    /// Total predicted per-sample time (latency/bandwidth roofline).
    #[must_use]
    pub fn total(&self) -> f64 {
        (self.t_smem + self.t_gmem).max(self.t_serial + self.t_b_redu) + self.t_g_redu
    }
}

/// Per-sample wall-clock share of a strategy's serial chain, accounting for
/// occupancy waves and within-block serialization.
///
/// `chain` is the dependent-access time of processing one sample's share of
/// work in one block. The launch runs `ceil(grid / occupancy)` waves; within
/// a block, samples are processed in `rounds` serial passes (one staged
/// sample at a time for shared data; `threads` samples in parallel for the
/// thread-per-sample strategies). Wave quantization matters: a grid of 4.1×
/// the device's concurrency really costs 5 waves.
fn serial_per_sample(
    strategy: Strategy,
    geometry: &Geometry,
    device: &DeviceSpec,
    n_batch: f64,
    chain: f64,
) -> f64 {
    let occ = concurrent_blocks(device, geometry.threads_per_block, geometry.smem_per_block)
        .max(1) as f64;
    let grid = geometry.grid_blocks.max(1) as f64;
    let waves = (grid / occ).ceil().max(1.0);
    let samples_per_block = match strategy {
        Strategy::SharedData | Strategy::Direct | Strategy::SharedForest => n_batch / grid,
        // Each sample is processed by all P parts; a block's tile holds
        // n × P / grid samples.
        Strategy::SplittingSharedForest => {
            n_batch * geometry.parts.max(1) as f64 / grid
        }
    };
    let rounds = match strategy {
        // One staged sample at a time.
        Strategy::SharedData => samples_per_block.max(1.0),
        // One sample per thread, level-synchronous across the block.
        Strategy::Direct | Strategy::SharedForest | Strategy::SplittingSharedForest => {
            (samples_per_block / geometry.threads_per_block as f64).ceil().max(1.0)
        }
    };
    waves * rounds * chain / n_batch.max(1.0)
}

/// Predicts one strategy's per-sample cost (Eq. 4–7 + latency extension).
#[must_use]
pub fn predict(
    strategy: Strategy,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
    geometry: &Geometry,
    device: &DeviceSpec,
) -> Prediction {
    let i = inputs;
    let traverse_bytes = i.d_tree * i.n_trees * i.s_node;
    let attr_bytes = i.d_tree * i.n_trees * i.s_att;
    let serial = |chain: f64| serial_per_sample(strategy, geometry, device, i.n_batch, chain);
    match strategy {
        // Eq. 4: samples staged in shared memory, forest from global memory
        // with "improved memory coalescence using half of bandwidth".
        Strategy::SharedData => {
            let tree_rounds =
                (i.n_trees / geometry.threads_per_block as f64).ceil().max(1.0);
            let chain = tree_rounds * i.d_tree * (hw.lat_gmem + hw.lat_smem);
            let reduce_values = (i.n_trees as usize).min(geometry.threads_per_block) as f64;
            let reduce = hw.b_base + hw.b_rate * reduce_values;
            Prediction {
                strategy,
                t_smem: i.s_sample / hw.bw_w_smem + attr_bytes / hw.bw_r_smem,
                t_gmem: i.s_sample / hw.bw_r_gmem_coa
                    + traverse_bytes / (hw.bw_r_gmem_coa / 2.0),
                t_serial: serial(chain),
                // The per-sample reduction serializes with the chain.
                t_b_redu: serial(reduce),
                t_g_redu: 0.0,
            }
        }
        // Eq. 5: everything from global memory; reduction-free.
        Strategy::Direct => {
            let chain = i.n_trees * i.d_tree * 2.0 * hw.lat_gmem;
            Prediction {
                strategy,
                t_smem: 0.0,
                t_gmem: traverse_bytes / (hw.bw_r_gmem_coa / 2.0)
                    + attr_bytes / hw.bw_r_gmem_ncoa,
                t_serial: serial(chain),
                t_b_redu: 0.0,
                t_g_redu: 0.0,
            }
        }
        // Eq. 6: forest resident in shared memory (load amortized away);
        // attributes from global memory, uncoalesced.
        Strategy::SharedForest => {
            let chain = i.n_trees * i.d_tree * (hw.lat_smem + hw.lat_gmem);
            Prediction {
                strategy,
                t_smem: traverse_bytes / hw.bw_r_smem,
                t_gmem: attr_bytes / hw.bw_r_gmem_ncoa,
                t_serial: serial(chain),
                t_b_redu: 0.0,
                t_g_redu: 0.0,
            }
        }
        // Eq. 7: forest restaged per sample tile; global reduction per batch.
        Strategy::SplittingSharedForest => {
            let parts = geometry.parts.max(1) as f64;
            let staged_bytes = i.n_nodes * i.n_trees * i.s_node * geometry.tiles() as f64;
            let chain = (i.n_trees / parts) * i.d_tree * (hw.lat_smem + hw.lat_gmem);
            Prediction {
                strategy,
                t_smem: staged_bytes / (hw.bw_w_smem * i.n_batch)
                    + traverse_bytes / hw.bw_r_smem,
                t_gmem: staged_bytes / (hw.bw_r_gmem_coa * i.n_batch)
                    + attr_bytes / hw.bw_r_gmem_ncoa,
                t_serial: serial(chain),
                t_b_redu: 0.0,
                t_g_redu: (hw.g_base + hw.g_rate * parts) / i.n_batch
                    + parts * 4.0 / hw.bw_r_gmem_coa,
            }
        }
    }
}

/// Predicts every feasible strategy, cheapest first (ties break in
/// [`Strategy::ALL`] order for determinism).
#[must_use]
pub fn rank(ctx: &LaunchContext<'_>, inputs: &ModelInputs, hw: &MeasuredParams) -> Vec<Prediction> {
    let mut out: Vec<Prediction> = Strategy::ALL
        .into_iter()
        .filter_map(|s| {
            crate::strategy::geometry(s, ctx).map(|g| predict(s, inputs, hw, &g, ctx.device))
        })
        .collect();
    // `total_cmp` keeps the sort total even if a fitted constant ever turns a
    // prediction non-finite: NaN sorts last instead of panicking mid-batch.
    out.sort_by(|a, b| a.total().total_cmp(&b.total()));
    out
}

/// Selects the predicted-best strategy (Algorithm 1 line 15).
///
/// # Panics
///
/// Panics if no strategy is feasible (cannot happen: shared data and direct
/// are always feasible).
#[must_use]
pub fn select(ctx: &LaunchContext<'_>, inputs: &ModelInputs, hw: &MeasuredParams) -> Strategy {
    rank(ctx, inputs, hw)
        .first()
        .expect("shared data and direct are always feasible")
        .strategy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;
    use tahoe_gpu_sim::measure;

    fn setup(name: &str) -> (Fixture, ModelInputs, MeasuredParams) {
        let fx = Fixture::trained(name);
        let inputs = ModelInputs::gather(&fx.device_forest, &fx.forest.stats(), &fx.samples);
        let hw = measure(&fx.device);
        (fx, inputs, hw)
    }

    #[test]
    fn inputs_gather_table1_notation() {
        let (fx, inputs, _) = setup("letter");
        assert_eq!(inputs.s_sample, 64.0); // 16 attrs x 4 B.
        assert_eq!(inputs.n_batch, fx.samples.n_samples() as f64);
        assert!(inputs.d_tree > 1.0 && inputs.d_tree <= 4.0);
        assert!(inputs.s_node >= 6.0);
    }

    #[test]
    fn predictions_are_positive_and_decomposed() {
        let (fx, inputs, hw) = setup("letter");
        let ctx = context(&fx, Detail::Sampled(1));
        for s in Strategy::ALL {
            let geo = crate::strategy::geometry(s, &ctx).unwrap();
            let p = predict(s, &inputs, &hw, &geo, ctx.device);
            assert!(p.total() > 0.0, "{s}");
            assert!(p.t_smem >= 0.0 && p.t_gmem >= 0.0 && p.t_serial > 0.0, "{s}");
        }
    }

    #[test]
    fn reduction_terms_match_strategy_semantics() {
        let (fx, inputs, hw) = setup("letter");
        let ctx = context(&fx, Detail::Sampled(1));
        for s in Strategy::ALL {
            let geo = crate::strategy::geometry(s, &ctx).unwrap();
            let p = predict(s, &inputs, &hw, &geo, ctx.device);
            assert_eq!(p.t_b_redu > 0.0, s.has_block_reduction(), "{s}");
            assert_eq!(p.t_g_redu > 0.0, s.has_global_reduction(), "{s}");
        }
    }

    #[test]
    fn rank_is_sorted_and_select_returns_head() {
        let (fx, inputs, hw) = setup("ijcnn1");
        let ctx = context(&fx, Detail::Sampled(1));
        let ranked = rank(&ctx, &inputs, &hw);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].total() <= w[1].total());
        }
        assert_eq!(select(&ctx, &inputs, &hw), ranked[0].strategy);
    }

    #[test]
    fn infeasible_strategies_are_excluded_from_rank() {
        let (fx, inputs, hw) = setup("letter");
        let mut ctx = context(&fx, Detail::Sampled(1));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 256;
        tiny.shared_mem_per_sm = 256;
        ctx.device = &tiny;
        let ranked = rank(&ctx, &inputs, &hw);
        assert!(ranked.iter().all(|p| p.strategy != Strategy::SharedForest));
        // Shared data and direct always remain.
        assert!(ranked.len() >= 2);
    }

    #[test]
    fn bigger_batch_amortizes_splitting_costs() {
        let (fx, inputs, hw) = setup("higgs");
        let ctx = context(&fx, Detail::Sampled(1));
        let geo = crate::strategy::geometry(Strategy::SplittingSharedForest, &ctx).unwrap();
        let small = ModelInputs {
            n_batch: 100.0,
            ..inputs
        };
        let large = ModelInputs {
            n_batch: 100_000.0,
            ..inputs
        };
        let ps = predict(Strategy::SplittingSharedForest, &small, &hw, &geo, ctx.device);
        let pl = predict(Strategy::SplittingSharedForest, &large, &hw, &geo, ctx.device);
        assert!(pl.t_g_redu < ps.t_g_redu);
        assert!(pl.t_smem < ps.t_smem);
    }

    #[test]
    fn latency_term_shrinks_with_batch_parallelism() {
        // The serial-chain term must amortize as more samples fill the
        // device (the mechanism behind shared-data winning small batches).
        let (fx, inputs, hw) = setup("higgs");
        let ctx = context(&fx, Detail::Sampled(1));
        let geo = crate::strategy::geometry(Strategy::SharedForest, &ctx).unwrap();
        let small_geo = Geometry {
            grid_blocks: 1,
            ..geo
        };
        let small = predict(
            Strategy::SharedForest,
            &ModelInputs {
                n_batch: 64.0,
                ..inputs
            },
            &hw,
            &small_geo,
            ctx.device,
        );
        let large = predict(Strategy::SharedForest, &inputs, &hw, &geo, ctx.device);
        assert!(large.t_serial < small.t_serial);
    }
}
