//! Online recalibration of the §6 performance model (DESIGN.md §2.16).
//!
//! The engine's drift records (predicted vs simulated ns per batch) are the
//! feedback signal the paper's offline microbenchmark calibration leaves on
//! the table. [`Calibrator`] folds that stream into one multiplicative scale
//! correction per strategy via online least-squares through the origin:
//! with raw (uncalibrated) predictions `p_i` and simulated times `s_i`,
//! the scale minimizing `Σ (k·p_i − s_i)²` is `k = Σ p_i·s_i / Σ p_i²`,
//! maintained incrementally as two running sums per strategy.
//!
//! Scaling every [`Prediction`] term by one positive factor scales
//! `Prediction::total()` by exactly that factor (the roofline `max` and the
//! additive reduction term are both homogeneous), so the correction preserves
//! the model's structure while absorbing systematic bias.
//!
//! Determinism: every observation derives from the simulated clock and the
//! analytic model — never wall-clock — so a calibrated engine's decisions
//! stay byte-identical at any worker count and across memo settings.
//! Refits happen on a fixed observation cadence and the generation counter
//! bumps only when a scale actually moves (relative change above
//! [`CONVERGENCE_TOL`]), which is what lets generation-tagged tuning-cache
//! entries stay valid across converged refits.

use crate::perfmodel::Prediction;
use crate::strategy::Strategy;

/// Observations folded between refit attempts.
pub const RECALIBRATE_INTERVAL: u64 = 8;

/// Relative scale movement below which a refit is treated as converged and
/// the generation (and therefore the tuning cache) is left untouched.
pub const CONVERGENCE_TOL: f64 = 1e-3;

/// Fitted scales are clamped to this range: a correction outside it says the
/// model is structurally wrong for the workload, not merely biased, and
/// letting the scale run away would invert strategy rankings on noise.
pub const SCALE_CLAMP: (f64, f64) = (0.25, 4.0);

/// Running least-squares sums for one strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct StrategyFit {
    /// Σ predicted² over raw (uncalibrated) batch predictions.
    sum_pp: f64,
    /// Σ predicted · simulated.
    sum_ps: f64,
    /// Observations folded.
    n: u64,
}

impl StrategyFit {
    fn fitted_scale(&self) -> Option<f64> {
        (self.n > 0 && self.sum_pp > 0.0)
            .then(|| (self.sum_ps / self.sum_pp).clamp(SCALE_CLAMP.0, SCALE_CLAMP.1))
    }
}

/// Per-strategy scale corrections fitted online from drift observations.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibrator {
    fits: [StrategyFit; Strategy::ALL.len()],
    scales: [f64; Strategy::ALL.len()],
    generation: u64,
    since_refit: u64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::new()
    }
}

impl Calibrator {
    /// A fresh calibrator: identity scales, generation 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            fits: [StrategyFit::default(); Strategy::ALL.len()],
            scales: [1.0; Strategy::ALL.len()],
            generation: 0,
            since_refit: 0,
        }
    }

    fn idx(strategy: Strategy) -> usize {
        Strategy::ALL
            .iter()
            .position(|s| *s == strategy)
            .expect("strategy is one of Strategy::ALL")
    }

    /// The correction currently applied to `strategy`'s predictions.
    #[must_use]
    pub fn scale(&self, strategy: Strategy) -> f64 {
        self.scales[Self::idx(strategy)]
    }

    /// Bumped each time a refit moves at least one scale; tags decision
    /// records and tuning-cache keys.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total observations folded across all strategies.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.fits.iter().map(|f| f.n).sum()
    }

    /// Applies the strategy's scale to every term of a raw prediction.
    #[must_use]
    pub fn apply(&self, p: Prediction) -> Prediction {
        let k = self.scale(p.strategy);
        Prediction {
            strategy: p.strategy,
            t_smem: p.t_smem * k,
            t_gmem: p.t_gmem * k,
            t_serial: p.t_serial * k,
            t_b_redu: p.t_b_redu * k,
            t_g_redu: p.t_g_redu * k,
        }
    }

    /// Folds one drift observation: the *raw* (uncalibrated) predicted batch
    /// ns against the simulated batch ns. Non-finite or non-positive values
    /// are dropped — one poisoned observation must not wedge the fit.
    pub fn observe(&mut self, strategy: Strategy, raw_predicted_ns: f64, simulated_ns: f64) {
        if !(raw_predicted_ns.is_finite()
            && simulated_ns.is_finite()
            && raw_predicted_ns > 0.0
            && simulated_ns > 0.0)
        {
            return;
        }
        let fit = &mut self.fits[Self::idx(strategy)];
        fit.sum_pp += raw_predicted_ns * raw_predicted_ns;
        fit.sum_ps += raw_predicted_ns * simulated_ns;
        fit.n += 1;
        self.since_refit += 1;
    }

    /// Refits the scales once [`RECALIBRATE_INTERVAL`] observations have
    /// accumulated since the last attempt. Returns `true` — and bumps the
    /// generation — only when some scale moved more than [`CONVERGENCE_TOL`]
    /// relatively; a converged refit leaves generation-tagged caches valid.
    pub fn maybe_recalibrate(&mut self) -> bool {
        if self.since_refit < RECALIBRATE_INTERVAL {
            return false;
        }
        self.since_refit = 0;
        let mut next = self.scales;
        for (slot, fit) in next.iter_mut().zip(&self.fits) {
            if let Some(s) = fit.fitted_scale() {
                *slot = s;
            }
        }
        let moved = next
            .iter()
            .zip(&self.scales)
            .any(|(a, b)| (a - b).abs() > CONVERGENCE_TOL * b.abs());
        if moved {
            self.scales = next;
            self.generation += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(strategy: Strategy) -> Prediction {
        Prediction {
            strategy,
            t_smem: 10.0,
            t_gmem: 20.0,
            t_serial: 5.0,
            t_b_redu: 1.0,
            t_g_redu: 2.0,
        }
    }

    #[test]
    fn fresh_calibrator_is_the_identity() {
        let cal = Calibrator::new();
        let p = prediction(Strategy::Direct);
        assert_eq!(cal.generation(), 0);
        assert_eq!(cal.apply(p).total().to_bits(), p.total().to_bits());
    }

    #[test]
    fn apply_scales_the_total_linearly() {
        let mut cal = Calibrator::new();
        // Consistent 2x underprediction: simulated = 2 * predicted.
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 100.0, 200.0);
        }
        assert!(cal.maybe_recalibrate());
        assert_eq!(cal.generation(), 1);
        let s = cal.scale(Strategy::Direct);
        assert!((s - 2.0).abs() < 1e-12, "exact fit on a consistent bias: {s}");
        let p = prediction(Strategy::Direct);
        let scaled = cal.apply(p);
        assert!((scaled.total() - p.total() * s).abs() < 1e-9);
        // Other strategies stay at identity.
        assert_eq!(cal.scale(Strategy::SharedData), 1.0);
    }

    #[test]
    fn no_refit_before_the_interval() {
        let mut cal = Calibrator::new();
        for _ in 0..RECALIBRATE_INTERVAL - 1 {
            cal.observe(Strategy::SharedData, 100.0, 150.0);
            assert!(!cal.maybe_recalibrate());
        }
        assert_eq!(cal.generation(), 0);
        assert_eq!(cal.scale(Strategy::SharedData), 1.0);
        cal.observe(Strategy::SharedData, 100.0, 150.0);
        assert!(cal.maybe_recalibrate());
        assert_eq!(cal.generation(), 1);
    }

    #[test]
    fn converged_refit_keeps_the_generation() {
        let mut cal = Calibrator::new();
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 100.0, 300.0);
        }
        assert!(cal.maybe_recalibrate());
        let gen = cal.generation();
        // Same consistent observations again: the fit lands on the same
        // scale, so the refit is converged and the generation must hold.
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 100.0, 300.0);
        }
        assert!(!cal.maybe_recalibrate());
        assert_eq!(cal.generation(), gen);
    }

    #[test]
    fn scales_are_clamped() {
        let mut cal = Calibrator::new();
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 1.0, 1_000_000.0);
        }
        cal.maybe_recalibrate();
        assert_eq!(cal.scale(Strategy::Direct), SCALE_CLAMP.1);
        let mut cal = Calibrator::new();
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 1_000_000.0, 1.0);
        }
        cal.maybe_recalibrate();
        assert_eq!(cal.scale(Strategy::Direct), SCALE_CLAMP.0);
    }

    #[test]
    fn non_finite_and_non_positive_observations_are_dropped() {
        let mut cal = Calibrator::new();
        cal.observe(Strategy::Direct, f64::NAN, 100.0);
        cal.observe(Strategy::Direct, 100.0, f64::INFINITY);
        cal.observe(Strategy::Direct, -5.0, 100.0);
        cal.observe(Strategy::Direct, 100.0, 0.0);
        assert_eq!(cal.observations(), 0);
        for _ in 0..RECALIBRATE_INTERVAL * 2 {
            assert!(!cal.maybe_recalibrate());
        }
        assert_eq!(cal.generation(), 0);
    }
}
