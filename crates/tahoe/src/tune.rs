//! Launch tuning (Algorithm 1 line 14: "Set the maximum number of threads to
//! hide latency, and set the number of blocks to maximize the occupancy").
//!
//! Block size trades occupancy against per-block resources: bigger blocks
//! amortize staging and widen reductions; smaller blocks raise residency.
//! The tuner evaluates the performance model over a candidate block-size
//! ladder for each strategy and keeps the cheapest — the grid size follows
//! from each strategy's geometry (one wave target, occupancy-aware).

use tahoe_gpu_sim::MeasuredParams;

use crate::perfmodel::{predict, ModelInputs, Prediction};
use crate::strategy::{self, LaunchContext, Strategy};

/// Candidate block sizes (whole warps; clamped to the device limit).
pub const THREAD_CANDIDATES: [usize; 5] = [64, 128, 256, 512, 1024];

/// The model-predicted best block size for one strategy, with its prediction.
///
/// Returns `None` when the strategy is infeasible on this context.
#[must_use]
pub fn tune_strategy(
    strategy: Strategy,
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Option<(usize, Prediction)> {
    let mut best: Option<(usize, Prediction)> = None;
    for &threads in &THREAD_CANDIDATES {
        if threads > ctx.device.max_threads_per_block as usize {
            continue;
        }
        let candidate = LaunchContext {
            block_threads: threads,
            ..*ctx
        };
        let Some(geometry) = strategy::geometry(strategy, &candidate) else {
            continue;
        };
        let p = predict(strategy, inputs, hw, &geometry, ctx.device);
        if best
            .as_ref()
            .is_none_or(|(_, b)| p.total() < b.total())
        {
            best = Some((threads, p));
        }
    }
    best
}

/// One audited sweep entry: a `(strategy, block size)` candidate with its
/// prediction, or the reason the tuner skipped it.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// Strategy the candidate belongs to.
    pub strategy: Strategy,
    /// Candidate threads per block.
    pub block_threads: usize,
    /// The model's prediction, or a static rejection reason.
    pub outcome: Result<Prediction, &'static str>,
}

/// Replays the exact sweep [`tune_all`] performs — every strategy crossed
/// with [`THREAD_CANDIDATES`], in that order — but keeps the rejected
/// candidates with their reasons instead of dropping them. Feeds the
/// decision audit (DESIGN.md §2.15); selection stays with `tune_all`, so
/// this runs only when telemetry is recording.
#[must_use]
pub fn sweep_candidates(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Vec<CandidateEval> {
    let mut out = Vec::with_capacity(Strategy::ALL.len() * THREAD_CANDIDATES.len());
    for strategy in Strategy::ALL {
        for &threads in &THREAD_CANDIDATES {
            let outcome = if threads > ctx.device.max_threads_per_block as usize {
                Err("exceeds max threads per block")
            } else {
                let candidate = LaunchContext {
                    block_threads: threads,
                    ..*ctx
                };
                match strategy::geometry(strategy, &candidate) {
                    Some(geometry) => Ok(predict(strategy, inputs, hw, &geometry, ctx.device)),
                    None => Err("geometry infeasible"),
                }
            };
            out.push(CandidateEval { strategy, block_threads: threads, outcome });
        }
    }
    out
}

/// Tunes every feasible strategy; returns `(strategy, block size,
/// prediction)` triples sorted cheapest-first.
#[must_use]
pub fn tune_all(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Vec<(Strategy, usize, Prediction)> {
    let mut out: Vec<(Strategy, usize, Prediction)> = Strategy::ALL
        .into_iter()
        .filter_map(|s| tune_strategy(s, ctx, inputs, hw).map(|(t, p)| (s, t, p)))
        .collect();
    out.sort_by(|a, b| {
        a.2.total()
            .partial_cmp(&b.2.total())
            .expect("finite predictions")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;
    use tahoe_gpu_sim::measure;

    fn setup() -> (Fixture, ModelInputs, MeasuredParams) {
        let fx = Fixture::trained("letter");
        let inputs = ModelInputs::gather(&fx.device_forest, &fx.forest.stats(), &fx.samples);
        let hw = measure(&fx.device);
        (fx, inputs, hw)
    }

    #[test]
    fn tuned_threads_are_valid_block_sizes() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        for (s, threads, _) in tune_all(&ctx, &inputs, &hw) {
            assert!(THREAD_CANDIDATES.contains(&threads), "{s}: {threads}");
            assert!(threads <= fx.device.max_threads_per_block as usize);
        }
    }

    #[test]
    fn tuned_prediction_never_worse_than_default() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        for s in Strategy::ALL {
            let Some((_, tuned)) = tune_strategy(s, &ctx, &inputs, &hw) else {
                continue;
            };
            let default_geo = strategy::geometry(s, &ctx).expect("feasible");
            let default = predict(s, &inputs, &hw, &default_geo, ctx.device);
            assert!(
                tuned.total() <= default.total() * 1.000_001,
                "{s}: tuned {} > default {}",
                tuned.total(),
                default.total()
            );
        }
    }

    #[test]
    fn tune_all_is_sorted_and_covers_feasible_strategies() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let tuned = tune_all(&ctx, &inputs, &hw);
        assert!(tuned.len() >= 2, "shared data and direct are always feasible");
        for w in tuned.windows(2) {
            assert!(w[0].2.total() <= w[1].2.total());
        }
    }

    #[test]
    fn sweep_covers_the_full_ladder_and_agrees_with_tune_strategy() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let sweep = sweep_candidates(&ctx, &inputs, &hw);
        assert_eq!(sweep.len(), Strategy::ALL.len() * THREAD_CANDIDATES.len());
        for s in Strategy::ALL {
            let best = sweep
                .iter()
                .filter(|c| c.strategy == s)
                .filter_map(|c| c.outcome.as_ref().ok().map(|p| (c.block_threads, p)))
                .min_by(|a, b| a.1.total().partial_cmp(&b.1.total()).unwrap());
            match tune_strategy(s, &ctx, &inputs, &hw) {
                Some((threads, p)) => {
                    let (bt, bp) = best.expect("tuned strategy must have feasible candidates");
                    assert_eq!(bt, threads, "{s}");
                    assert_eq!(bp.total().to_bits(), p.total().to_bits(), "{s}");
                }
                None => assert!(best.is_none(), "{s}"),
            }
        }
    }

    #[test]
    fn sweep_reports_rejection_reasons() {
        let (fx, inputs, hw) = setup();
        let mut ctx = context(&fx, Detail::Sampled(1));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 64;
        tiny.shared_mem_per_sm = 64;
        tiny.max_threads_per_block = 512;
        ctx.device = &tiny;
        let sweep = sweep_candidates(&ctx, &inputs, &hw);
        assert!(sweep
            .iter()
            .filter(|c| c.block_threads > 512)
            .all(|c| c.outcome == Err("exceeds max threads per block")));
        assert!(sweep
            .iter()
            .filter(|c| c.strategy == Strategy::SharedForest && c.block_threads <= 512)
            .all(|c| c.outcome == Err("geometry infeasible")));
    }

    #[test]
    fn infeasible_strategy_returns_none() {
        let (fx, inputs, hw) = setup();
        let mut ctx = context(&fx, Detail::Sampled(1));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 64;
        tiny.shared_mem_per_sm = 64;
        ctx.device = &tiny;
        assert!(tune_strategy(Strategy::SharedForest, &ctx, &inputs, &hw).is_none());
    }
}
