//! Launch tuning (Algorithm 1 line 14: "Set the maximum number of threads to
//! hide latency, and set the number of blocks to maximize the occupancy").
//!
//! Block size trades occupancy against per-block resources: bigger blocks
//! amortize staging and widen reductions; smaller blocks raise residency.
//! The tuner evaluates the performance model over a candidate block-size
//! ladder for each strategy and keeps the cheapest — the grid size follows
//! from each strategy's geometry (one wave target, occupancy-aware).
//!
//! Repeat-serving workloads re-tune the same shape over and over, so the
//! engine consults a [`TuningCache`] first (DESIGN.md §2.16): the full
//! cheapest-first plan list is memoized under a [`cache_key`] covering
//! everything selection depends on — node encoding, batch shape, device
//! spec, simulation detail, and the calibration generation. The key follows
//! the false-sharing discipline of `gpu-sim/src/memo.rs`: exact bit
//! patterns, no lossy rounding, and a 128-bit fingerprint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::Detail;
use tahoe_gpu_sim::memo::{BlockKey, KeyHasher};
use tahoe_gpu_sim::MeasuredParams;

use crate::format::DeviceForest;
use crate::perfmodel::{predict, Calibrator, ModelInputs, Prediction};
use crate::strategy::{self, LaunchContext, Strategy};

/// Candidate block sizes (whole warps; clamped to the device limit).
pub const THREAD_CANDIDATES: [usize; 5] = [64, 128, 256, 512, 1024];

/// The model-predicted best block size for one strategy, with its prediction.
///
/// Returns `None` when the strategy is infeasible on this context.
#[must_use]
pub fn tune_strategy(
    strategy: Strategy,
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Option<(usize, Prediction)> {
    tune_strategy_with(strategy, ctx, inputs, hw, None)
}

/// [`tune_strategy`] with an optional calibrator applied to every
/// prediction before comparison, so calibrated corrections can re-order the
/// block-size ladder, not just rescale the winner.
#[must_use]
pub fn tune_strategy_with(
    strategy: Strategy,
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
    cal: Option<&Calibrator>,
) -> Option<(usize, Prediction)> {
    let mut best: Option<(usize, Prediction)> = None;
    for &threads in &THREAD_CANDIDATES {
        if threads > ctx.device.max_threads_per_block as usize {
            continue;
        }
        let candidate = LaunchContext {
            block_threads: threads,
            ..*ctx
        };
        let Some(geometry) = strategy::geometry(strategy, &candidate) else {
            continue;
        };
        let p = predict(strategy, inputs, hw, &geometry, ctx.device);
        let p = cal.map_or(p, |c| c.apply(p));
        if best
            .as_ref()
            .is_none_or(|(_, b)| p.total() < b.total())
        {
            best = Some((threads, p));
        }
    }
    best
}

/// One audited sweep entry: a `(strategy, block size)` candidate with its
/// prediction, or the reason the tuner skipped it.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// Strategy the candidate belongs to.
    pub strategy: Strategy,
    /// Candidate threads per block.
    pub block_threads: usize,
    /// The model's prediction, or a static rejection reason.
    pub outcome: Result<Prediction, &'static str>,
}

/// Replays the exact sweep [`tune_all`] performs — every strategy crossed
/// with [`THREAD_CANDIDATES`], in that order — but keeps the rejected
/// candidates with their reasons instead of dropping them. Feeds the
/// decision audit (DESIGN.md §2.15); selection stays with `tune_all`, so
/// this runs only when telemetry is recording.
#[must_use]
pub fn sweep_candidates(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Vec<CandidateEval> {
    sweep_candidates_with(ctx, inputs, hw, None)
}

/// [`sweep_candidates`] under an optional calibrator, so audited predictions
/// match what the (possibly cached) selection actually compared.
#[must_use]
pub fn sweep_candidates_with(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
    cal: Option<&Calibrator>,
) -> Vec<CandidateEval> {
    let mut out = Vec::with_capacity(Strategy::ALL.len() * THREAD_CANDIDATES.len());
    for strategy in Strategy::ALL {
        for &threads in &THREAD_CANDIDATES {
            let outcome = if threads > ctx.device.max_threads_per_block as usize {
                Err("exceeds max threads per block")
            } else {
                let candidate = LaunchContext {
                    block_threads: threads,
                    ..*ctx
                };
                match strategy::geometry(strategy, &candidate) {
                    Some(geometry) => {
                        let p = predict(strategy, inputs, hw, &geometry, ctx.device);
                        Ok(cal.map_or(p, |c| c.apply(p)))
                    }
                    None => Err("geometry infeasible"),
                }
            };
            out.push(CandidateEval { strategy, block_threads: threads, outcome });
        }
    }
    out
}

/// Tunes every feasible strategy; returns `(strategy, block size,
/// prediction)` triples sorted cheapest-first.
#[must_use]
pub fn tune_all(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
) -> Vec<(Strategy, usize, Prediction)> {
    tune_all_with(ctx, inputs, hw, None)
}

/// [`tune_all`] under an optional calibrator.
#[must_use]
pub fn tune_all_with(
    ctx: &LaunchContext<'_>,
    inputs: &ModelInputs,
    hw: &MeasuredParams,
    cal: Option<&Calibrator>,
) -> Vec<(Strategy, usize, Prediction)> {
    let mut out: Vec<(Strategy, usize, Prediction)> = Strategy::ALL
        .into_iter()
        .filter_map(|s| tune_strategy_with(s, ctx, inputs, hw, cal).map(|(t, p)| (s, t, p)))
        .collect();
    // `total_cmp` keeps the sort total even when a prediction goes
    // non-finite (a poisoned measured constant, a fitted scale gone wrong):
    // NaN sorts last instead of panicking the engine mid-batch.
    out.sort_by(|a, b| a.2.total().total_cmp(&b.2.total()));
    out
}

/// Process-wide tuning-cache override: 0 = unset, 1 = forced off,
/// 2 = forced on (mirrors `gpu_sim::memo::set_sim_memo`).
static TUNE_CACHE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides whether engines consult the tuning-decision cache,
/// process-wide. `None` restores the default resolution
/// (`TAHOE_TUNE_CACHE`, then on). Used by the determinism tests and the
/// `host_perf` benchmark to time cold-vs-warm tuning in one process.
pub fn set_tune_cache(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    TUNE_CACHE_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether engines consult the tuning-decision cache. Resolution order: the
/// [`set_tune_cache`] override, then `TAHOE_TUNE_CACHE`, then on. Turning
/// the cache off must never change selections — only the
/// `tuning_cache_hits`/`tuning_cache_misses` counters, the decision records'
/// `cache_hit` flags, and the wall-clock tune host span may differ.
#[must_use]
pub fn tune_cache_enabled() -> bool {
    match TUNE_CACHE_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => env_tune_cache().unwrap_or(true),
    }
}

/// `TAHOE_TUNE_CACHE`, when set to a recognized value. Invalid values warn
/// once to stderr and fall through to the default (on).
fn env_tune_cache() -> Option<bool> {
    let raw = std::env::var("TAHOE_TUNE_CACHE").ok()?;
    match parse_cache_env(&raw) {
        Ok(v) => v,
        Err(()) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid TAHOE_TUNE_CACHE={raw:?}: \
                     expected 0/1, true/false, or on/off; the cache stays on"
                );
            });
            None
        }
    }
}

/// Parses a `TAHOE_TUNE_CACHE` value: `Ok(Some(_))` for a recognized on/off
/// spelling, `Ok(None)` for empty/whitespace (unset), `Err(())` otherwise.
fn parse_cache_env(raw: &str) -> Result<Option<bool>, ()> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    if t == "0" || t.eq_ignore_ascii_case("false") || t.eq_ignore_ascii_case("off") {
        return Ok(Some(false));
    }
    if t == "1" || t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("on") {
        return Ok(Some(true));
    }
    Err(())
}

/// Fingerprints everything `tune_all` depends on for one engine batch.
///
/// Key material, in stream order:
///
/// - `DeviceForest::encoding_key` — node encoding marker, node bytes,
///   packed/child widths, every lane's entry width and base alignment. A
///   classic and a packed image of the same forest must never share an
///   entry.
/// - the eight [`ModelInputs`] fields by exact f64 bit pattern — batch
///   shape (`n_batch`, `s_sample`) and the forest statistics the model
///   consumes. A batch one sample larger is a different key.
/// - every [`DeviceSpec`] field selection reads: name bytes, structural
///   limits, and the timing constants by exact bit pattern.
/// - the simulation [`Detail`] (a variant marker plus the sample cap).
/// - the calibration generation — recalibration invalidates by key, never
///   by mutating cached values, which is what keeps warm and cold runs
///   bit-identical (DESIGN.md §2.16).
///
/// Per-tree layout beyond these statistics is *not* keyed: the engine clears
/// its cache whenever it rebuilds the device forest (`Engine::convert`), so
/// within one cache lifetime the forest image is fixed.
#[must_use]
pub fn cache_key(
    forest: &DeviceForest,
    device: &DeviceSpec,
    inputs: &ModelInputs,
    detail: Detail,
    calibration_generation: u64,
) -> BlockKey {
    let mut h = KeyHasher::new();
    h.write_u64(forest.encoding_key(device.transaction_bytes));
    for v in [
        inputs.s_sample,
        inputs.n_batch,
        inputs.d_tree,
        inputs.n_trees,
        inputs.s_node,
        inputs.s_att,
        inputs.n_nodes,
        inputs.s_forest,
    ] {
        h.write_u64(v.to_bits());
    }
    h.write_u64(device.name.len() as u64);
    for b in device.name.bytes() {
        h.write_u64(u64::from(b));
    }
    for v in [
        u64::from(device.num_sms),
        u64::from(device.warp_size),
        u64::from(device.max_threads_per_block),
        u64::from(device.max_threads_per_sm),
        u64::from(device.max_blocks_per_sm),
        device.shared_mem_per_block as u64,
        device.shared_mem_per_sm as u64,
        device.transaction_bytes,
        device.dram_bytes,
    ] {
        h.write_u64(v);
    }
    for v in [
        device.gmem_bytes_per_ns,
        device.smem_bytes_per_ns,
        device.gmem_latency_ns,
        device.mlp,
        device.smem_latency_ns,
        device.node_eval_ns,
        device.block_reduce_ns_per_thread,
        device.block_reduce_base_ns,
        device.global_reduce_ns_per_block,
        device.global_reduce_base_ns,
    ] {
        h.write_u64(v.to_bits());
    }
    match detail {
        Detail::Full => h.write_u64(0),
        Detail::Sampled(n) => {
            h.write_u64(1);
            h.write_u64(n as u64);
        }
    }
    h.write_u64(calibration_generation);
    h.finish()
}

/// Memoized `tune_all` results, one entry per distinct [`cache_key`].
///
/// Owned per engine (never shared across devices — replicas get a fresh
/// cache because their downclocked specs differ), consulted and filled only
/// on the engine caller thread, and cleared whenever the device forest is
/// rebuilt or the calibration generation bumps.
#[derive(Clone, Debug, Default)]
pub struct TuningCache {
    entries: HashMap<BlockKey, Vec<(Strategy, usize, Prediction)>>,
}

impl TuningCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan list for `key`, if present.
    #[must_use]
    pub fn get(&self, key: &BlockKey) -> Option<&Vec<(Strategy, usize, Prediction)>> {
        self.entries.get(key)
    }

    /// Stores a plan list under `key`.
    pub fn insert(&mut self, key: BlockKey, tuned: Vec<(Strategy, usize, Prediction)>) {
        self.entries.insert(key, tuned);
    }

    /// Drops every entry (forest rebuilt, or calibration generation bumped).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of distinct cached shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::measure;

    fn setup() -> (Fixture, ModelInputs, MeasuredParams) {
        let fx = Fixture::trained("letter");
        let inputs = ModelInputs::gather(&fx.device_forest, &fx.forest.stats(), &fx.samples);
        let hw = measure(&fx.device);
        (fx, inputs, hw)
    }

    #[test]
    fn tuned_threads_are_valid_block_sizes() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        for (s, threads, _) in tune_all(&ctx, &inputs, &hw) {
            assert!(THREAD_CANDIDATES.contains(&threads), "{s}: {threads}");
            assert!(threads <= fx.device.max_threads_per_block as usize);
        }
    }

    #[test]
    fn tuned_prediction_never_worse_than_default() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        for s in Strategy::ALL {
            let Some((_, tuned)) = tune_strategy(s, &ctx, &inputs, &hw) else {
                continue;
            };
            let default_geo = strategy::geometry(s, &ctx).expect("feasible");
            let default = predict(s, &inputs, &hw, &default_geo, ctx.device);
            assert!(
                tuned.total() <= default.total() * 1.000_001,
                "{s}: tuned {} > default {}",
                tuned.total(),
                default.total()
            );
        }
    }

    #[test]
    fn tune_all_is_sorted_and_covers_feasible_strategies() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let tuned = tune_all(&ctx, &inputs, &hw);
        assert!(tuned.len() >= 2, "shared data and direct are always feasible");
        for w in tuned.windows(2) {
            assert!(w[0].2.total() <= w[1].2.total());
        }
    }

    #[test]
    fn poisoned_candidate_does_not_panic_tune_all() {
        // A NaN measured constant poisons every prediction that touches it.
        // Selection must survive: `total_cmp` sorts NaN totals last, so the
        // engine keeps running on whichever candidates stayed finite.
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let poisoned = MeasuredParams {
            lat_gmem: f64::NAN,
            ..hw
        };
        let tuned = tune_all(&ctx, &inputs, &poisoned);
        assert!(!tuned.is_empty(), "the sweep itself must not panic");
        // NaN totals, if any, are ordered after every finite total.
        let first_nan = tuned
            .iter()
            .position(|(_, _, p)| p.total().is_nan())
            .unwrap_or(tuned.len());
        assert!(
            tuned[first_nan..].iter().all(|(_, _, p)| p.total().is_nan()),
            "NaN predictions sort last"
        );
        // The ranked sweep in perfmodel shares the fix.
        let ranked = crate::perfmodel::rank(&ctx, &inputs, &poisoned);
        assert!(!ranked.is_empty());
    }

    #[test]
    fn calibrated_tuning_scales_predictions() {
        use crate::perfmodel::calibrate::RECALIBRATE_INTERVAL;
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let baseline = tune_all(&ctx, &inputs, &hw);
        let mut cal = Calibrator::new();
        for _ in 0..RECALIBRATE_INTERVAL {
            cal.observe(Strategy::Direct, 100.0, 300.0);
        }
        assert!(cal.maybe_recalibrate());
        let calibrated = tune_all_with(&ctx, &inputs, &hw, Some(&cal));
        let raw_direct = baseline
            .iter()
            .find(|(s, _, _)| *s == Strategy::Direct)
            .map(|(_, _, p)| p.total());
        let cal_direct = calibrated
            .iter()
            .find(|(s, _, _)| *s == Strategy::Direct)
            .map(|(_, _, p)| p.total());
        if let (Some(raw), Some(scaled)) = (raw_direct, cal_direct) {
            assert!(
                (scaled - raw * cal.scale(Strategy::Direct)).abs() <= raw * 1e-9,
                "calibrated total is the raw total times the fitted scale"
            );
        }
    }

    #[test]
    fn sweep_covers_the_full_ladder_and_agrees_with_tune_strategy() {
        let (fx, inputs, hw) = setup();
        let ctx = context(&fx, Detail::Sampled(1));
        let sweep = sweep_candidates(&ctx, &inputs, &hw);
        assert_eq!(sweep.len(), Strategy::ALL.len() * THREAD_CANDIDATES.len());
        for s in Strategy::ALL {
            let best = sweep
                .iter()
                .filter(|c| c.strategy == s)
                .filter_map(|c| c.outcome.as_ref().ok().map(|p| (c.block_threads, p)))
                .min_by(|a, b| a.1.total().total_cmp(&b.1.total()));
            match tune_strategy(s, &ctx, &inputs, &hw) {
                Some((threads, p)) => {
                    let (bt, bp) = best.expect("tuned strategy must have feasible candidates");
                    assert_eq!(bt, threads, "{s}");
                    assert_eq!(bp.total().to_bits(), p.total().to_bits(), "{s}");
                }
                None => assert!(best.is_none(), "{s}"),
            }
        }
    }

    #[test]
    fn sweep_reports_rejection_reasons() {
        let (fx, inputs, hw) = setup();
        let mut ctx = context(&fx, Detail::Sampled(1));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 64;
        tiny.shared_mem_per_sm = 64;
        tiny.max_threads_per_block = 512;
        ctx.device = &tiny;
        let sweep = sweep_candidates(&ctx, &inputs, &hw);
        assert!(sweep
            .iter()
            .filter(|c| c.block_threads > 512)
            .all(|c| c.outcome == Err("exceeds max threads per block")));
        assert!(sweep
            .iter()
            .filter(|c| c.strategy == Strategy::SharedForest && c.block_threads <= 512)
            .all(|c| c.outcome == Err("geometry infeasible")));
    }

    #[test]
    fn infeasible_strategy_returns_none() {
        let (fx, inputs, hw) = setup();
        let mut ctx = context(&fx, Detail::Sampled(1));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 64;
        tiny.shared_mem_per_sm = 64;
        ctx.device = &tiny;
        assert!(tune_strategy(Strategy::SharedForest, &ctx, &inputs, &hw).is_none());
    }

    #[test]
    fn cache_key_discriminates_its_material() {
        let (fx, inputs, _) = setup();
        let detail = Detail::Sampled(4);
        let base = cache_key(&fx.device_forest, &fx.device, &inputs, detail, 0);
        // Same material, same key — the cache can actually hit.
        assert_eq!(
            base,
            cache_key(&fx.device_forest, &fx.device, &inputs, detail, 0)
        );
        // A batch one sample larger must miss.
        let bigger = ModelInputs {
            n_batch: inputs.n_batch + 1.0,
            ..inputs
        };
        assert_ne!(
            base,
            cache_key(&fx.device_forest, &fx.device, &bigger, detail, 0)
        );
        // A different node encoding of the same forest must miss.
        let packed = Fixture::trained_packed("letter");
        let packed_inputs =
            ModelInputs::gather(&packed.device_forest, &packed.forest.stats(), &packed.samples);
        assert_ne!(
            base,
            cache_key(&packed.device_forest, &packed.device, &packed_inputs, detail, 0)
        );
        // A calibration-generation bump must miss (that is the invalidation).
        assert_ne!(
            base,
            cache_key(&fx.device_forest, &fx.device, &inputs, detail, 1)
        );
        // A different detail or device must miss.
        assert_ne!(
            base,
            cache_key(&fx.device_forest, &fx.device, &inputs, Detail::Full, 0)
        );
        assert_ne!(
            base,
            cache_key(
                &fx.device_forest,
                &DeviceSpec::tesla_v100(),
                &inputs,
                detail,
                0
            )
        );
    }

    #[test]
    fn tune_cache_env_parsing() {
        assert_eq!(parse_cache_env(""), Ok(None));
        assert_eq!(parse_cache_env("0"), Ok(Some(false)));
        assert_eq!(parse_cache_env("off"), Ok(Some(false)));
        assert_eq!(parse_cache_env("1"), Ok(Some(true)));
        assert_eq!(parse_cache_env(" ON "), Ok(Some(true)));
        assert_eq!(parse_cache_env("yes"), Err(()));
    }
}
