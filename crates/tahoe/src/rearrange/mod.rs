//! Forest rearrangement: the two tree-structure-aware optimizations of §4.
//!
//! - [`node_swap`] — probability-based node rearrangement (§4.1).
//! - [`tokenize`] → [`simhash`] → [`lsh`] → [`order`] — the similarity-based
//!   tree rearrangement pipeline (§4.2, Fig. 3).
//! - [`pairwise`] — the exact O(N²) baseline used for cost and quality
//!   comparisons (§4.2/§7.4).
//!
//! [`adaptive_plan`] combines both into the [`LayoutPlan`] consumed by the
//! adaptive forest format, and [`RearrangeReport`] records the per-stage CPU
//! cost for the paper's §7.4 overhead analysis.

pub mod lsh;
pub mod node_swap;
pub mod order;
pub mod pairwise;
pub mod sha1;
pub mod simhash;
pub mod tokenize;

use std::time::Instant;

use tahoe_forest::Forest;
use tahoe_gpu_sim::parallel::parallel_map;

use crate::format::LayoutPlan;

/// Parameters of the similarity pipeline (§7.1: `T_nodes = 4`,
/// `L_hash = 128`, `M = 64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimilarityParams {
    /// Nodes per token.
    pub t_nodes: usize,
    /// SimHash checksum length in bits.
    pub l_hash: usize,
    /// LSH chunk count.
    pub m_chunks: usize,
    /// Whether tokens are weighted by node probability (ablation hook; the
    /// paper says the weight "is necessary", and the ablation bench
    /// quantifies it).
    pub weighted: bool,
}

impl Default for SimilarityParams {
    fn default() -> Self {
        Self {
            t_nodes: 4,
            l_hash: 128,
            m_chunks: 64,
            weighted: true,
        }
    }
}

/// Per-stage CPU cost of one rearrangement run (paper §7.4).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RearrangeReport {
    /// Node-swap planning time (§7.4 part 2, "rearranging nodes of trees").
    pub node_swap_ns: u64,
    /// Tokenize + SimHash time.
    pub simhash_ns: u64,
    /// LSH + ordering time (§7.4 part 3, "detecting similarity").
    pub lsh_ns: u64,
}

impl RearrangeReport {
    /// Total rearrangement time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.node_swap_ns + self.simhash_ns + self.lsh_ns
    }
}

/// Computes the similarity-based tree order (§4.2).
#[must_use]
pub fn similarity_order(forest: &Forest, params: &SimilarityParams) -> Vec<usize> {
    similarity_order_timed(forest, params).0
}

/// As [`similarity_order`], also returning stage timings.
#[must_use]
pub fn similarity_order_timed(
    forest: &Forest,
    params: &SimilarityParams,
) -> (Vec<usize>, RearrangeReport) {
    let mut report = RearrangeReport::default();
    let t0 = Instant::now();
    let normalized: Vec<Vec<bool>> = parallel_map(forest.n_trees(), |t| {
        let mut tokens = tokenize::tokenize(&forest.trees()[t], params.t_nodes);
        if !params.weighted {
            for tok in &mut tokens {
                tok.weight = 1.0;
            }
        }
        simhash::normalize(&simhash::simhash(&tokens, params.l_hash))
    });
    report.simhash_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let counts = lsh::count_collisions(&normalized, params.m_chunks);
    let order = order::order_by_similarity(forest.n_trees(), &counts);
    report.lsh_ns = t1.elapsed().as_nanos() as u64;
    (order, report)
}

/// Builds the full adaptive layout plan: similarity tree order plus
/// probability child swaps (§4.3, "adaptive forest format").
#[must_use]
pub fn adaptive_plan(forest: &Forest, params: &SimilarityParams) -> LayoutPlan {
    adaptive_plan_timed(forest, params).0
}

/// As [`adaptive_plan`], also returning stage timings.
#[must_use]
pub fn adaptive_plan_timed(
    forest: &Forest,
    params: &SimilarityParams,
) -> (LayoutPlan, RearrangeReport) {
    let (tree_order, mut report) = similarity_order_timed(forest, params);
    let t0 = Instant::now();
    let swaps = node_swap::forest_swaps(forest);
    report.node_swap_ns = t0.elapsed().as_nanos() as u64;
    (LayoutPlan { tree_order, swaps }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, Scale};
    use tahoe_forest::train_for_spec;

    fn trained(name: &str) -> Forest {
        let spec = DatasetSpec::by_name(name).unwrap();
        let data = spec.generate(Scale::Smoke);
        train_for_spec(&spec, &data, Scale::Smoke)
    }

    #[test]
    fn similarity_order_is_a_permutation() {
        let forest = trained("letter");
        let order = similarity_order(&forest, &SimilarityParams::default());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..forest.n_trees()).collect::<Vec<_>>());
    }

    #[test]
    fn similarity_order_is_deterministic() {
        let forest = trained("ijcnn1");
        let p = SimilarityParams::default();
        assert_eq!(similarity_order(&forest, &p), similarity_order(&forest, &p));
    }

    #[test]
    fn lsh_order_approaches_pairwise_quality() {
        // The LSH ordering must place similar trees adjacently at least half
        // as well as exact pairwise comparison — the paper's claim that LSH
        // gives "a correct order of trees based on their similarity".
        let forest = trained("letter");
        let p = SimilarityParams::default();
        let counts = pairwise::pairwise_counts(&forest, p.t_nodes);
        let exact = pairwise::pairwise_order(&forest, p.t_nodes);
        let approx = similarity_order(&forest, &p);
        let exact_score = pairwise::adjacency_score(&exact, &counts);
        let approx_score = pairwise::adjacency_score(&approx, &counts);
        let random_score = pairwise::adjacency_score(
            &(0..forest.n_trees()).collect::<Vec<_>>(),
            &counts,
        );
        assert!(
            approx_score >= random_score,
            "LSH order ({approx_score}) must beat index order ({random_score})"
        );
        assert!(
            approx_score >= 0.3 * exact_score,
            "LSH order ({approx_score}) too far below exact ({exact_score})"
        );
    }

    #[test]
    fn adaptive_plan_is_valid_for_its_forest() {
        let forest = trained("phishing");
        let plan = adaptive_plan(&forest, &SimilarityParams::default());
        plan.validate(&forest);
        // At least one swap is expected on real data (skewed probabilities).
        let any_swap = plan.swaps.iter().flatten().any(|&s| s);
        assert!(any_swap, "trained forests should have sub-0.5 left probs somewhere");
    }

    #[test]
    fn timing_report_is_populated() {
        let forest = trained("ijcnn1");
        let (_, report) = adaptive_plan_timed(&forest, &SimilarityParams::default());
        assert!(report.simhash_ns > 0);
        assert!(report.total_ns() >= report.simhash_ns);
    }
}
