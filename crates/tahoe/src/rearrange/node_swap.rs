//! Probability-based node rearrangement (paper §4.1).
//!
//! For every decision node, the child with the higher visit probability is
//! placed as the *layout-left* child, so that threads traversing different
//! trees along their likely paths touch nodes at the same relative positions
//! — which the interleaved layout then makes contiguous. The descendants
//! follow their parent automatically because heap positions are recomputed
//! from the swap assignment ([`crate::format::layout::heap_positions`]).

use tahoe_forest::{Forest, Node, Tree};

/// Swap flags for one tree: `true` where the children must be exchanged.
#[must_use]
pub fn tree_swaps(tree: &Tree) -> Vec<bool> {
    tree.nodes()
        .iter()
        .map(|n| match n {
            Node::Decision { left_prob, .. } => *left_prob < 0.5,
            Node::Leaf { .. } => false,
        })
        .collect()
}

/// Swap flags for every tree of a forest.
#[must_use]
pub fn forest_swaps(forest: &Forest) -> Vec<Vec<bool>> {
    forest.trees().iter().map(tree_swaps).collect()
}

/// Fraction of decision nodes whose layout-left child is the likelier one
/// (1.0 after rearrangement; ~0.5 for unarranged forests). Diagnostic used
/// by reports and tests.
#[must_use]
pub fn likely_left_fraction(forest: &Forest, swaps: &[Vec<bool>]) -> f64 {
    let mut likely = 0usize;
    let mut total = 0usize;
    for (tree, tree_swaps) in forest.trees().iter().zip(swaps) {
        for (node, &swapped) in tree.nodes().iter().zip(tree_swaps) {
            if let Node::Decision { left_prob, .. } = node {
                total += 1;
                let layout_left_prob = if swapped { 1.0 - left_prob } else { *left_prob };
                if layout_left_prob >= 0.5 {
                    likely += 1;
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        likely as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{ForestKind, Task};

    fn tree_with_probs(p_root: f32, p_inner: f32) -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: 0,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: p_root,
            },
            Node::Decision {
                attribute: 1,
                threshold: 0.0,
                default_left: true,
                left: 3,
                right: 4,
                left_prob: p_inner,
            },
            Node::Leaf { value: 0.0 },
            Node::Leaf { value: 1.0 },
            Node::Leaf { value: 2.0 },
        ])
    }

    #[test]
    fn swaps_only_unlikely_left_children() {
        let swaps = tree_swaps(&tree_with_probs(0.3, 0.8));
        assert_eq!(swaps, vec![true, false, false, false, false]);
    }

    #[test]
    fn boundary_probability_does_not_swap() {
        let swaps = tree_swaps(&tree_with_probs(0.5, 0.5));
        assert!(!swaps[0] && !swaps[1]);
    }

    #[test]
    fn likely_left_fraction_reaches_one_after_swaps() {
        let forest = Forest::new(
            vec![tree_with_probs(0.3, 0.8), tree_with_probs(0.1, 0.2)],
            2,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
        let none = vec![vec![false; 5], vec![false; 5]];
        let before = likely_left_fraction(&forest, &none);
        assert!(before < 1.0);
        let swaps = forest_swaps(&forest);
        let after = likely_left_fraction(&forest, &swaps);
        assert!((after - 1.0).abs() < 1e-12);
    }
}
