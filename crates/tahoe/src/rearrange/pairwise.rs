//! Brute-force pairwise tree similarity — the O(N²) baseline the paper's
//! §4.2 rejects ("using pairwise comparison can take up to 19 minutes for a
//! tree ensemble with 3000 trees") and §7.4 compares against (SimHash+LSH is
//! ">37x" faster).
//!
//! Similarity is the size of the intersection of the trees' token sets —
//! the exact quantity SimHash+LSH approximates — so the baseline also serves
//! as the ground truth for ordering-quality tests.

use std::collections::HashSet;

use tahoe_forest::Forest;

use super::lsh::CollisionCounts;
use super::order::order_by_similarity;
use super::tokenize::tokenize;

/// Exact pairwise similarity counts (token-set intersection sizes).
#[must_use]
pub fn pairwise_counts(forest: &Forest, t_nodes: usize) -> CollisionCounts {
    let token_sets: Vec<HashSet<Vec<u8>>> = forest
        .trees()
        .iter()
        .map(|t| tokenize(t, t_nodes).into_iter().map(|tok| tok.bytes).collect())
        .collect();
    let mut counts = CollisionCounts::new();
    for a in 0..token_sets.len() {
        for b in a + 1..token_sets.len() {
            let inter = token_sets[a].intersection(&token_sets[b]).count() as u32;
            if inter > 0 {
                counts.insert((a as u32, b as u32), inter);
            }
        }
    }
    counts
}

/// Tree order from exact pairwise comparison.
#[must_use]
pub fn pairwise_order(forest: &Forest, t_nodes: usize) -> Vec<usize> {
    let counts = pairwise_counts(forest, t_nodes);
    order_by_similarity(forest.n_trees(), &counts)
}

/// Brute-force pairwise similarity, as the paper times it (§4.2: "up to 19
/// minutes for a tree ensemble with 3000 trees").
///
/// Every node of tree `A` is compared against every node of tree `B`
/// (matching heap position *and* attribute counts as similarity) — the naive
/// O(N² · n²) method the SimHash+LSH pipeline replaces. Use
/// [`pairwise_counts`] for a *fast* exact reference; this function exists for
/// the §7.4 cost comparison.
#[must_use]
pub fn brute_force_counts(forest: &Forest) -> CollisionCounts {
    let keys: Vec<Vec<(u64, u32)>> = forest
        .trees()
        .iter()
        .map(|t| {
            let positions = crate::format::layout::heap_positions(t, &vec![false; t.n_nodes()]);
            t.nodes()
                .iter()
                .enumerate()
                .map(|(i, n)| (positions[i], n.attribute().map_or(u32::MAX, |a| a)))
                .collect()
        })
        .collect();
    let mut counts = CollisionCounts::new();
    for a in 0..keys.len() {
        for b in a + 1..keys.len() {
            let mut matches = 0u32;
            for ka in &keys[a] {
                for kb in &keys[b] {
                    if ka == kb {
                        matches += 1;
                    }
                }
            }
            if matches > 0 {
                counts.insert((a as u32, b as u32), matches);
            }
        }
    }
    counts
}

/// Tree order from the brute-force comparison.
#[must_use]
pub fn brute_force_order(forest: &Forest) -> Vec<usize> {
    let counts = brute_force_counts(forest);
    order_by_similarity(forest.n_trees(), &counts)
}

/// Mean exact similarity of adjacent trees under an order — the metric by
/// which an approximate (LSH) ordering is judged against this baseline.
#[must_use]
pub fn adjacency_score(order: &[usize], counts: &CollisionCounts) -> f64 {
    if order.len() < 2 {
        return 0.0;
    }
    let total: u64 = order
        .windows(2)
        .map(|w| u64::from(super::lsh::pair_count(counts, w[0] as u32, w[1] as u32)))
        .sum();
    total as f64 / (order.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_datasets::{DatasetSpec, ForestKind, Scale, Task};
    use tahoe_forest::train_for_spec;
    use tahoe_forest::{Node, Tree};

    fn stub(attr: u32) -> Tree {
        Tree::new(vec![
            Node::Decision {
                attribute: attr,
                threshold: 0.0,
                default_left: true,
                left: 1,
                right: 2,
                left_prob: 0.5,
            },
            Node::Leaf { value: 1.0 },
            Node::Leaf { value: 2.0 },
        ])
    }

    #[test]
    fn identical_trees_have_max_similarity() {
        let forest = Forest::new(
            vec![stub(0), stub(0), stub(5)],
            6,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
        let counts = pairwise_counts(&forest, 2);
        let c01 = super::super::lsh::pair_count(&counts, 0, 1);
        let c02 = super::super::lsh::pair_count(&counts, 0, 2);
        assert!(c01 > 0);
        assert_eq!(c02, 0, "different attributes share no tokens");
    }

    #[test]
    fn pairwise_order_groups_identical_trees() {
        let forest = Forest::new(
            vec![stub(0), stub(5), stub(0), stub(5)],
            6,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
        let order = pairwise_order(&forest, 2);
        // The two attribute-0 trees (0, 2) must be adjacent, as must (1, 3).
        let pos: Vec<usize> = (0..4).map(|t| order.iter().position(|&o| o == t).unwrap()).collect();
        assert_eq!(pos[0].abs_diff(pos[2]), 1);
        assert_eq!(pos[1].abs_diff(pos[3]), 1);
    }

    #[test]
    fn adjacency_score_rewards_similar_neighbours() {
        let forest = Forest::new(
            vec![stub(0), stub(5), stub(0)],
            6,
            ForestKind::Gbdt,
            Task::Regression,
            0.0,
        );
        let counts = pairwise_counts(&forest, 2);
        let good = adjacency_score(&[0, 2, 1], &counts);
        let bad = adjacency_score(&[0, 1, 2], &counts);
        assert!(good > bad);
    }

    #[test]
    fn trained_forest_has_nontrivial_similarity_structure() {
        let spec = DatasetSpec::by_name("ijcnn1").unwrap();
        let data = spec.generate(Scale::Smoke);
        let forest = train_for_spec(&spec, &data, Scale::Smoke);
        let counts = pairwise_counts(&forest, 2);
        // Trees trained on the same data share at least some tokens.
        assert!(!counts.is_empty());
    }
}
