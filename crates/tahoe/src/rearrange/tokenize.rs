//! Tree tokenization (first step of §4.2's similarity pipeline).
//!
//! Each root-to-leaf path is split into windows of `T_nodes` consecutive
//! nodes (adjacent windows share one node, matching Fig. 3 where `T = 2`
//! yields the edge tokens `1-2`, `2-4`, ...). A token records the nodes'
//! *heap positions* and *attribute indices* — two trees produce equal tokens
//! exactly when they share both local topology and tested attributes, which
//! is the paper's definition of similar trees ("traversed using the similar
//! paths and accessing similar attributes").

use std::collections::HashSet;

use tahoe_forest::{Node, Tree};

/// One token: serialized window content plus its SimHash weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Serialized `(position, attribute)` pairs of the window's nodes.
    pub bytes: Vec<u8>,
    /// Node probability of the window's last node (the paper's weight).
    pub weight: f32,
}

/// Tokenizes a tree with windows of `t_nodes` nodes.
///
/// Identical windows reached via different leaves are emitted once.
///
/// # Panics
///
/// Panics if `t_nodes < 2`.
#[must_use]
pub fn tokenize(tree: &Tree, t_nodes: usize) -> Vec<Token> {
    assert!(t_nodes >= 2, "a token needs at least two nodes");
    let probs = tree.node_probabilities();
    let positions = crate::format::layout::heap_positions(tree, &vec![false; tree.n_nodes()]);
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut tokens = Vec::new();
    // Enumerate root-to-leaf paths depth-first.
    let mut stack: Vec<(u32, Vec<u32>)> = vec![(0, vec![0])];
    while let Some((id, path)) = stack.pop() {
        match tree.node(id) {
            Node::Decision { left, right, .. } => {
                let mut lp = path.clone();
                lp.push(*left);
                stack.push((*left, lp));
                let mut rp = path;
                rp.push(*right);
                stack.push((*right, rp));
            }
            Node::Leaf { .. } => {
                emit_windows(tree, &path, &probs, &positions, t_nodes, &mut seen, &mut tokens);
            }
        }
    }
    tokens
}

fn emit_windows(
    tree: &Tree,
    path: &[u32],
    probs: &[f32],
    positions: &[u64],
    t_nodes: usize,
    seen: &mut HashSet<(u32, u32)>,
    tokens: &mut Vec<Token>,
) {
    let stride = t_nodes - 1;
    let mut start = 0usize;
    loop {
        let end = (start + t_nodes).min(path.len());
        if end - start < 2 {
            break;
        }
        let window = &path[start..end];
        let key = (window[0], window[window.len() - 1]);
        if seen.insert(key) {
            let mut bytes = Vec::with_capacity(window.len() * 12);
            for &id in window {
                bytes.extend_from_slice(&positions[id as usize].to_le_bytes());
                let attr = tree.node(id).attribute().map_or(u32::MAX, |a| a);
                bytes.extend_from_slice(&attr.to_le_bytes());
            }
            tokens.push(Token {
                bytes,
                weight: probs[window[window.len() - 1] as usize],
            });
        }
        if end == path.len() {
            break;
        }
        start += stride;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_forest::Node as HNode;

    /// Fig. 3's example shape: full binary tree of depth 2 (7 nodes).
    fn full_depth2() -> Tree {
        let d = |a: u32, l: u32, r: u32| HNode::Decision {
            attribute: a,
            threshold: 0.0,
            default_left: true,
            left: l,
            right: r,
            left_prob: 0.6,
        };
        Tree::new(vec![
            d(0, 1, 2),
            d(1, 3, 4),
            d(2, 5, 6),
            HNode::Leaf { value: 1.0 },
            HNode::Leaf { value: 2.0 },
            HNode::Leaf { value: 3.0 },
            HNode::Leaf { value: 4.0 },
        ])
    }

    #[test]
    fn edge_tokens_match_fig3_count() {
        // T = 2 on a 7-node full tree → 6 edge tokens, as in Fig. 3.
        let tokens = tokenize(&full_depth2(), 2);
        assert_eq!(tokens.len(), 6);
    }

    #[test]
    fn shared_prefix_windows_are_deduplicated() {
        // Paths 0-1-3 and 0-1-4 share edge 0-1; it must appear once.
        let tokens = tokenize(&full_depth2(), 2);
        let distinct: HashSet<&[u8]> = tokens.iter().map(|t| t.bytes.as_slice()).collect();
        assert_eq!(distinct.len(), tokens.len());
    }

    #[test]
    fn weights_are_node_probabilities() {
        let tree = full_depth2();
        let tokens = tokenize(&tree, 2);
        let probs = tree.node_probabilities();
        for t in &tokens {
            // Every weight must equal some node's probability.
            assert!(
                probs.iter().any(|p| (p - t.weight).abs() < 1e-6),
                "weight {} unknown",
                t.weight
            );
        }
    }

    #[test]
    fn identical_trees_produce_identical_tokens() {
        let a = tokenize(&full_depth2(), 2);
        let b = tokenize(&full_depth2(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_attributes_change_tokens() {
        let mut nodes: Vec<HNode> = full_depth2().nodes().to_vec();
        if let HNode::Decision { attribute, .. } = &mut nodes[0] {
            *attribute = 9;
        }
        let other = Tree::new(nodes);
        let a: HashSet<Vec<u8>> = tokenize(&full_depth2(), 2).into_iter().map(|t| t.bytes).collect();
        let b: HashSet<Vec<u8>> = tokenize(&other, 2).into_iter().map(|t| t.bytes).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn larger_windows_cover_long_paths() {
        // Depth-2 paths have 3 nodes; T = 4 gives one whole-path window each
        // once the shared prefix dedup collapses.
        let tokens = tokenize(&full_depth2(), 4);
        assert!(!tokens.is_empty());
        for t in &tokens {
            // 3 nodes x 12 bytes.
            assert_eq!(t.bytes.len(), 36);
        }
    }

    #[test]
    fn single_leaf_tree_has_no_tokens() {
        let t = Tree::leaf(1.0);
        assert!(tokenize(&t, 2).is_empty());
    }
}
