//! Weighted SimHash checksums (paper §4.2, "Applying SimHash").
//!
//! Each token is hashed to `L_hash` bits; each bit contributes `+weight` or
//! `-weight` to the corresponding checksum component, where the weight is the
//! node probability of the token's last node ("Adding this weight is
//! necessary to increase the effectiveness of LSH", §4.2). The checksum is
//! then normalized to a bit vector for the LSH stage.

use super::sha1::hash_bits;
use super::tokenize::Token;

/// Accumulates the weighted SimHash checksum of a token set.
#[must_use]
pub fn simhash(tokens: &[Token], l_hash: usize) -> Vec<f32> {
    let mut checksum = vec![0.0f32; l_hash];
    for token in tokens {
        let bits = hash_bits(&token.bytes, l_hash);
        for (acc, bit) in checksum.iter_mut().zip(bits) {
            if bit {
                *acc += token.weight;
            } else {
                *acc -= token.weight;
            }
        }
    }
    checksum
}

/// Normalizes a checksum to bits: `>= 0 → 1`, `< 0 → 0` (paper §4.2,
/// "Applying LSH", representation normalization).
#[must_use]
pub fn normalize(checksum: &[f32]) -> Vec<bool> {
    checksum.iter().map(|&v| v >= 0.0).collect()
}

/// Hamming similarity between two normalized checksums (diagnostic).
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn hamming_similarity(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "checksum lengths differ");
    if a.is_empty() {
        return 1.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(bytes: &[u8], weight: f32) -> Token {
        Token {
            bytes: bytes.to_vec(),
            weight,
        }
    }

    #[test]
    fn empty_token_set_gives_zero_checksum() {
        let c = simhash(&[], 16);
        assert_eq!(c, vec![0.0; 16]);
        // Zero normalizes to all-ones (>= 0).
        assert_eq!(normalize(&c), vec![true; 16]);
    }

    #[test]
    fn identical_token_sets_give_identical_checksums() {
        let t = vec![token(b"a", 0.5), token(b"b", 0.25)];
        assert_eq!(simhash(&t, 64), simhash(&t, 64));
    }

    #[test]
    fn single_token_checksum_has_weight_magnitude() {
        let c = simhash(&[token(b"x", 0.75)], 32);
        assert!(c.iter().all(|v| (v.abs() - 0.75).abs() < 1e-6));
    }

    #[test]
    fn similar_sets_are_closer_than_dissimilar() {
        // Sets sharing most tokens must have more similar checksums than
        // disjoint sets — the core SimHash property.
        let base: Vec<Token> = (0..40).map(|i| token(format!("t{i}").as_bytes(), 1.0)).collect();
        let mut near = base.clone();
        near[0] = token(b"mutated", 1.0);
        let far: Vec<Token> =
            (0..40).map(|i| token(format!("u{i}").as_bytes(), 1.0)).collect();
        let l = 128;
        let nb = normalize(&simhash(&base, l));
        let nn = normalize(&simhash(&near, l));
        let nf = normalize(&simhash(&far, l));
        let sim_near = hamming_similarity(&nb, &nn);
        let sim_far = hamming_similarity(&nb, &nf);
        assert!(
            sim_near > sim_far + 0.1,
            "near {sim_near} not clearly above far {sim_far}"
        );
    }

    #[test]
    fn weights_bias_the_checksum() {
        // A heavy token should dominate a light conflicting one.
        let heavy = token(b"heavy", 10.0);
        let light = token(b"light", 0.1);
        let c = simhash(&[heavy.clone(), light], 64);
        let heavy_only = simhash(&[heavy], 64);
        let nc = normalize(&c);
        let nh = normalize(&heavy_only);
        assert_eq!(nc, nh);
    }

    #[test]
    fn hamming_similarity_bounds() {
        let a = vec![true, false, true];
        assert!((hamming_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let b = vec![false, true, false];
        assert!(hamming_similarity(&a, &b).abs() < 1e-12);
    }
}
