//! Similarity-driven tree ordering (paper §4.2, "Map trees into groups and
//! sort").
//!
//! The paper places tree `A` next to tree `B` when their collision count is
//! the largest among `A`'s counts (Fig. 3: order `T2 T3 T1` because `T2&T3`
//! collide most, then `T1&T3`). We implement that as a greedy chain: start
//! from the globally most-similar pair, then repeatedly append the unplaced
//! tree most similar to the chain's tail; when the tail has no similar
//! unplaced tree, restart from the most similar remaining pair (or any
//! remaining tree). Ties break toward lower indices for determinism.

use super::lsh::{pair_count, CollisionCounts};

/// Produces a tree order (layout position → original index) from collision
/// counts.
#[must_use]
pub fn order_by_similarity(n_trees: usize, counts: &CollisionCounts) -> Vec<usize> {
    if n_trees == 0 {
        return Vec::new();
    }
    let mut placed = vec![false; n_trees];
    let mut order = Vec::with_capacity(n_trees);
    // Sorted pair list: highest count first, then lexicographic.
    let mut pairs: Vec<(u32, (u32, u32))> = counts
        .iter()
        .filter(|&(&(a, b), _)| (a as usize) < n_trees && (b as usize) < n_trees)
        .map(|(&p, &c)| (c, p))
        .collect();
    pairs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut pair_cursor = 0usize;
    while order.len() < n_trees {
        // Start (or restart) the chain from the best unplaced pair.
        let mut tail: Option<usize> = None;
        while pair_cursor < pairs.len() {
            let (_, (a, b)) = pairs[pair_cursor];
            if !placed[a as usize] && !placed[b as usize] {
                placed[a as usize] = true;
                placed[b as usize] = true;
                order.push(a as usize);
                order.push(b as usize);
                tail = Some(b as usize);
                break;
            }
            pair_cursor += 1;
        }
        let Some(mut tail) = tail else {
            // No collision pairs left; append remaining trees in index order.
            for (t, p) in placed.iter_mut().enumerate() {
                if !*p {
                    *p = true;
                    order.push(t);
                }
            }
            break;
        };
        // Extend the chain while the tail has similar unplaced trees.
        loop {
            let mut best: Option<(u32, usize)> = None;
            #[allow(clippy::needless_range_loop)] // `t` is also the tree id.
            for t in 0..n_trees {
                if placed[t] {
                    continue;
                }
                let c = pair_count(counts, tail as u32, t as u32);
                if c > 0 && best.is_none_or(|(bc, bt)| c > bc || (c == bc && t < bt)) {
                    best = Some((c, t));
                }
            }
            match best {
                Some((_, t)) => {
                    placed[t] = true;
                    order.push(t);
                    tail = t;
                }
                None => break,
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn counts(pairs: &[((u32, u32), u32)]) -> CollisionCounts {
        pairs.iter().copied().collect::<HashMap<_, _>>()
    }

    #[test]
    fn fig3_example_order() {
        // Paper Fig. 3: collisions T1&T2 = 0, T2&T3 = 2, T1&T3 = 1
        // → order T2, T3, T1 (indices 1, 2, 0).
        let c = counts(&[((0, 1), 0), ((1, 2), 2), ((0, 2), 1)]);
        assert_eq!(order_by_similarity(3, &c), vec![1, 2, 0]);
    }

    #[test]
    fn order_is_a_permutation() {
        let c = counts(&[((0, 3), 5), ((1, 2), 4), ((4, 5), 1)]);
        let order = order_by_similarity(7, &c);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn chain_follows_similarity() {
        // 0-1 strongest, then 1-2, then 2-3.
        let c = counts(&[((0, 1), 9), ((1, 2), 5), ((2, 3), 3)]);
        assert_eq!(order_by_similarity(4, &c), vec![0, 1, 2, 3]);
    }

    #[test]
    fn no_collisions_preserves_index_order() {
        let c = CollisionCounts::new();
        assert_eq!(order_by_similarity(4, &c), vec![0, 1, 2, 3]);
    }

    #[test]
    fn disjoint_groups_form_separate_chains() {
        let c = counts(&[((2, 3), 9), ((0, 1), 8)]);
        let order = order_by_similarity(4, &c);
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(order_by_similarity(0, &CollisionCounts::new()).is_empty());
    }

    #[test]
    fn determinism() {
        let c = counts(&[((0, 1), 2), ((2, 3), 2), ((1, 2), 2)]);
        let a = order_by_similarity(4, &c);
        let b = order_by_similarity(4, &c);
        assert_eq!(a, b);
    }
}
