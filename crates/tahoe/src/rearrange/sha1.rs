//! SHA-1 (FIPS 180-1), implemented from the specification.
//!
//! The paper's SimHash step hashes each token with SHA1 (§4.2, citing its
//! reference \[16\]).
//! SHA-1 is cryptographically broken but remains a perfectly good mixing
//! function for similarity hashing; we implement it from scratch rather than
//! pulling a crypto dependency.

/// SHA-1 digest of `data` (20 bytes).
#[must_use]
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];
    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Expands `data` into `n_bits` hash bits using SHA-1 in counter mode.
///
/// Block `i` contributes `sha1(data || i_le)`; blocks are concatenated and
/// truncated to `n_bits`. The paper's `L_hash` is 128, which one block
/// covers; counter mode keeps the function total for any length.
#[must_use]
pub fn hash_bits(data: &[u8], n_bits: usize) -> Vec<bool> {
    let mut bits = Vec::with_capacity(n_bits);
    let mut counter = 0u32;
    let mut buf = Vec::with_capacity(data.len() + 4);
    while bits.len() < n_bits {
        buf.clear();
        buf.extend_from_slice(data);
        buf.extend_from_slice(&counter.to_le_bytes());
        let digest = sha1(&buf);
        for byte in digest {
            for bit in 0..8 {
                if bits.len() == n_bits {
                    break;
                }
                bits.push((byte >> (7 - bit)) & 1 == 1);
            }
        }
        counter += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8; 20]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_test_vector_abc() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_test_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_test_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn long_input_crosses_block_boundary() {
        // 64-byte input forces the padding into a second block.
        let input = vec![b'a'; 64];
        assert_eq!(hex(&sha1(&input)), "0098ba824b5c16427bd7a1122a5a442a25ec644d");
    }

    #[test]
    fn hash_bits_is_deterministic_and_sized() {
        let a = hash_bits(b"token", 128);
        let b = hash_bits(b"token", 128);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert_ne!(a, hash_bits(b"token2", 128));
    }

    #[test]
    fn hash_bits_extends_beyond_one_digest() {
        let bits = hash_bits(b"x", 400);
        assert_eq!(bits.len(), 400);
        // The first 160 bits must differ from the next 160 (different
        // counter blocks).
        assert_ne!(bits[..160], bits[160..320]);
    }

    #[test]
    fn hash_bits_are_balanced() {
        let bits = hash_bits(b"balance-check", 1600);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((600..=1000).contains(&ones), "ones {ones} far from half");
    }
}
