//! Locality-sensitive hashing over normalized checksums (paper §4.2,
//! "Applying LSH").
//!
//! Each normalized checksum is divided into `M` chunks; each chunk is hashed
//! with a Rabin–Karp polynomial hash into a bucket. Two trees whose chunks
//! collide are counted as similar once per colliding chunk; the collision
//! counts drive the tree ordering.

use std::collections::HashMap;

/// Rabin–Karp polynomial hash of a bit chunk.
///
/// Uses a 64-bit rolling polynomial with a large odd base — collisions
/// between *different* chunks are negligible at these chunk lengths, so a
/// bucket collision means chunk equality, exactly what the similarity count
/// wants.
#[must_use]
pub fn rabin_karp(bits: &[bool]) -> u64 {
    const BASE: u64 = 1_000_003;
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bits {
        h = h.wrapping_mul(BASE).wrapping_add(u64::from(b) + 1);
    }
    h
}

/// Pairwise collision counts `(i, j) → count`, with `i < j`.
pub type CollisionCounts = HashMap<(u32, u32), u32>;

/// Counts chunk collisions between all trees.
///
/// # Panics
///
/// Panics if checksums have differing lengths or `m_chunks` is zero.
#[must_use]
pub fn count_collisions(normalized: &[Vec<bool>], m_chunks: usize) -> CollisionCounts {
    assert!(m_chunks > 0, "need at least one chunk");
    let mut counts: CollisionCounts = HashMap::new();
    if normalized.is_empty() {
        return counts;
    }
    let l = normalized[0].len();
    for c in normalized {
        assert_eq!(c.len(), l, "checksum lengths differ");
    }
    let chunk_len = (l / m_chunks).max(1);
    let n_chunks = l / chunk_len;
    for chunk_idx in 0..n_chunks {
        let start = chunk_idx * chunk_len;
        let end = start + chunk_len;
        // Bucket trees by chunk hash.
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (tree, checksum) in normalized.iter().enumerate() {
            let h = rabin_karp(&checksum[start..end]);
            buckets.entry(h).or_default().push(tree as u32);
        }
        for members in buckets.values() {
            for (a_idx, &a) in members.iter().enumerate() {
                for &b in &members[a_idx + 1..] {
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    counts
}

/// Collision count for an unordered pair.
#[must_use]
pub fn pair_count(counts: &CollisionCounts, a: u32, b: u32) -> u32 {
    let key = if a < b { (a, b) } else { (b, a) };
    counts.get(&key).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rabin_karp_distinguishes_order_and_length() {
        assert_ne!(rabin_karp(&[true, false]), rabin_karp(&[false, true]));
        assert_ne!(rabin_karp(&[true]), rabin_karp(&[true, true]));
        assert_eq!(rabin_karp(&[true, false]), rabin_karp(&[true, false]));
    }

    #[test]
    fn identical_checksums_collide_in_every_chunk() {
        let c = vec![vec![true; 16], vec![true; 16]];
        let counts = count_collisions(&c, 4);
        assert_eq!(pair_count(&counts, 0, 1), 4);
    }

    #[test]
    fn disjoint_checksums_do_not_collide() {
        let c = vec![vec![true; 16], vec![false; 16]];
        let counts = count_collisions(&c, 4);
        assert_eq!(pair_count(&counts, 0, 1), 0);
    }

    #[test]
    fn partial_similarity_counts_matching_chunks() {
        // First half equal, second half different → 2 of 4 chunks collide.
        let mut a = vec![true; 16];
        let b = a.clone();
        a[8..].iter_mut().for_each(|v| *v = false);
        let counts = count_collisions(&[a, b], 4);
        assert_eq!(pair_count(&counts, 0, 1), 2);
    }

    #[test]
    fn more_similar_pairs_count_higher() {
        let base = vec![true; 32];
        let mut near = base.clone();
        near[0] = false; // One chunk disturbed.
        let mut far = base.clone();
        for (i, v) in far.iter_mut().enumerate() {
            *v = i % 2 == 0;
        }
        let counts = count_collisions(&[base, near, far], 8);
        assert!(pair_count(&counts, 0, 1) > pair_count(&counts, 0, 2));
    }

    #[test]
    fn pair_count_is_symmetric() {
        let c = vec![vec![true; 8], vec![true; 8]];
        let counts = count_collisions(&c, 2);
        assert_eq!(pair_count(&counts, 0, 1), pair_count(&counts, 1, 0));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(count_collisions(&[], 4).is_empty());
    }
}
