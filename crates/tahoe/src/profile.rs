//! Per-kernel profiler re-exports (DESIGN.md §2.10).
//!
//! The profiler substrate — [`KernelProfile`] capture in `KernelSim::finish`,
//! log-bucketed [`LatencyHistogram`]s, and [`DriftRecord`] storage — lives in
//! [`tahoe_gpu_sim::profile`]; this module re-exports it so engine-level code
//! and downstream consumers (bench harness, CLI) have one import path. The
//! engine pushes one [`DriftRecord`] per launch (predicted vs. simulated
//! cost, `engine::Engine::infer_batch`) and the serving simulator feeds
//! request latencies into the serving histogram.

pub use tahoe_gpu_sim::profile::{
    DriftRecord, HistogramBucket, HistogramExport, KernelProfile, LatencyHistogram,
    LaunchStats, OccupancyLimiter, ProfilesExport, TimeBreakdown, HISTOGRAM_BUCKETS,
};
