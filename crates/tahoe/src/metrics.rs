//! Evaluation metrics shared by the experiments (§3, §7.2, §7.3).

use tahoe_gpu_sim::kernel::KernelResult;
use tahoe_gpu_sim::metrics::coefficient_of_variation;

use crate::telemetry::{Counter, TelemetrySink};

/// Average coefficient of variation of per-thread busy time across the
/// sampled blocks (Table 3's "A.C.V.").
///
/// Threads that did no work (e.g. when there are fewer trees than threads)
/// are excluded: they are predictably idle rather than imbalanced, and the
/// paper's per-thread measurements (Fig. 2c) cover working threads.
#[must_use]
pub fn thread_acv(kernel: &KernelResult) -> f64 {
    thread_acv_with_sink(kernel, &TelemetrySink::Disabled)
}

/// As [`thread_acv`], reporting coverage into `sink`: blocks with at least
/// two busy threads bump [`Counter::AcvBlocksCounted`]; blocks the statistic
/// skips (fewer than two busy threads — previously dropped silently) bump
/// [`Counter::AcvBlocksSkipped`], so Table 3 can report how much of the
/// sample the A.C.V. actually covers.
#[must_use]
pub fn thread_acv_with_sink(kernel: &KernelResult, sink: &TelemetrySink) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    let mut skipped = 0u64;
    for block in &kernel.thread_busy_per_block {
        let busy: Vec<f64> = block.iter().copied().filter(|&b| b > 0.0).collect();
        if busy.len() < 2 {
            skipped += 1;
            continue;
        }
        sum += coefficient_of_variation(&busy);
        n += 1;
    }
    sink.add(Counter::AcvBlocksCounted, n as u64);
    sink.add(Counter::AcvBlocksSkipped, skipped);
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Speedup of `fast` over `slow` given their simulated times.
#[must_use]
pub fn speedup(slow_ns: f64, fast_ns: f64) -> f64 {
    if fast_ns == 0.0 {
        0.0
    } else {
        slow_ns / fast_ns
    }
}

/// One row of the Fig. 2a-style per-level report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelRow {
    /// Tree level (0 = root).
    pub level: u32,
    /// Mean adjacent-lane address distance at that level (bytes).
    pub mean_distance: f64,
    /// Global-load efficiency (requested / fetched) at that level.
    pub efficiency: f64,
}

/// Extracts the per-level coalescing profile from a kernel run.
#[must_use]
pub fn level_profile(kernel: &KernelResult) -> Vec<LevelRow> {
    kernel
        .levels
        .iter()
        .map(|(&level, stats)| LevelRow {
            level,
            mean_distance: stats.mean_distance(),
            efficiency: stats.access.efficiency(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use crate::strategy::{run, Strategy};
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn acv_is_positive_for_imbalanced_forests() {
        let fx = Fixture::trained("higgs");
        let r = run(Strategy::SharedData, &context(&fx, Detail::Sampled(2))).unwrap();
        let acv = thread_acv(&r.kernel);
        assert!(acv > 0.0, "depth-jittered forests must show imbalance");
        assert!(acv < 3.0, "CV {acv} looks corrupted");
    }

    #[test]
    fn acv_coverage_counters_split_counted_and_skipped() {
        let fx = Fixture::trained("higgs");
        let r = run(Strategy::SharedData, &context(&fx, Detail::Sampled(4))).unwrap();
        let sink = TelemetrySink::recording();
        let with_sink = thread_acv_with_sink(&r.kernel, &sink);
        assert_eq!(with_sink, thread_acv(&r.kernel), "sink must not change the statistic");
        let snap = sink.snapshot();
        let counted = snap.counters["acv_blocks_counted"];
        let skipped = snap.counters["acv_blocks_skipped"];
        assert_eq!(
            counted + skipped,
            r.kernel.thread_busy_per_block.len() as u64,
            "every sampled block is either counted or skipped"
        );
        assert!(counted > 0, "traversal blocks have busy threads");
    }

    #[test]
    fn speedup_math() {
        assert!((speedup(10.0, 5.0) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn level_profile_is_sorted_and_rooted() {
        let fx = Fixture::trained("letter");
        let r = run(Strategy::SharedData, &context(&fx, Detail::Sampled(2))).unwrap();
        let profile = level_profile(&r.kernel);
        assert!(!profile.is_empty());
        assert_eq!(profile[0].level, 0);
        for w in profile.windows(2) {
            assert!(w[0].level < w[1].level);
        }
        for row in &profile {
            assert!(row.efficiency > 0.0 && row.efficiency <= 1.0);
        }
    }
}
