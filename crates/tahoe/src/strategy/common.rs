//! Shared machinery for the inference-strategy kernels.

use std::cell::RefCell;

use tahoe_datasets::SampleMatrix;
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::{Detail, KernelResult, KernelSim};
use tahoe_gpu_sim::memo::{BlockKey, KeyHasher};
use tahoe_gpu_sim::memory::GlobalBuffer;
use tahoe_gpu_sim::{BlockSim, WarpSim};

use crate::format::{DeviceForest, NodeEncoding};
use crate::telemetry::TelemetryCtx;

/// The four inference strategies of §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Strategy {
    /// FIL's algorithm: samples in shared memory, trees round-robin across
    /// threads, block-wide reduction per sample.
    SharedData,
    /// Whole forest per thread, everything in global memory, reduction-free.
    Direct,
    /// Whole forest in shared memory, one sample per thread, reduction-free.
    SharedForest,
    /// Forest split across blocks' shared memories; global reduction per
    /// batch.
    SplittingSharedForest,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::SharedData,
        Strategy::Direct,
        Strategy::SharedForest,
        Strategy::SplittingSharedForest,
    ];

    /// Paper name of the strategy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::SharedData => "shared data",
            Strategy::Direct => "direct",
            Strategy::SharedForest => "shared forest",
            Strategy::SplittingSharedForest => "splitting shared forest",
        }
    }

    /// Whether the strategy needs a block-wide reduction.
    #[must_use]
    pub fn has_block_reduction(self) -> bool {
        self == Strategy::SharedData
    }

    /// Whether the strategy needs a device-wide reduction.
    #[must_use]
    pub fn has_global_reduction(self) -> bool {
        self == Strategy::SplittingSharedForest
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Inputs of one strategy launch.
#[derive(Clone, Copy)]
pub struct LaunchContext<'a> {
    /// Target device.
    pub device: &'a DeviceSpec,
    /// Device-formatted forest.
    pub forest: &'a DeviceForest,
    /// The sample batch.
    pub samples: &'a SampleMatrix,
    /// Simulated allocation holding the batch (row-major f32).
    pub sample_buf: GlobalBuffer,
    /// Block-sampling level for the simulation.
    pub detail: Detail,
    /// Threads per block (Algorithm 1 line 14 tunes this; see
    /// [`crate::tune`]). Must be a positive multiple of the warp size.
    pub block_threads: usize,
    /// Where (and at what simulated time) this launch records telemetry.
    /// [`TelemetryCtx::disabled`] records nothing.
    pub telemetry: TelemetryCtx<'a>,
}

impl LaunchContext<'_> {
    /// The context's block size, clamped to the device's limits and rounded
    /// to whole warps.
    #[must_use]
    pub fn threads(&self) -> usize {
        let warp = self.device.warp_size as usize;
        let max = self.device.max_threads_per_block as usize;
        (self.block_threads.max(warp) / warp * warp).min(max)
    }

    /// Memo fingerprint of the sample window `[start, end)` this block works
    /// on (see [`sample_window_key`]); `salt` names the tree slice the block
    /// stages (`0` for whole-forest strategies, the part index for
    /// splitting-shared-forest). The forest's
    /// [`DeviceForest::encoding_key`] — resolved encoding, packed widths,
    /// lane alignments — is folded in so the cache never false-shares across
    /// node encodings.
    #[must_use]
    pub fn window_key(&self, salt: u64, start: usize, end: usize) -> BlockKey {
        sample_window_key(
            self.samples,
            self.sample_buf,
            self.device.transaction_bytes,
            self.forest.encoding_key(self.device.transaction_bytes),
            salt,
            start,
            end,
        )
    }
}

/// Launch geometry a strategy chose (feeds the performance models'
/// `Num_of_threads` / `Num_of_thrd_blocks`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Threads per block.
    pub threads_per_block: usize,
    /// Blocks in the grid.
    pub grid_blocks: usize,
    /// Shared memory per block (bytes).
    pub smem_per_block: usize,
    /// Forest parts (splitting shared forest's `P`; 1 elsewhere). The grid
    /// may tile samples on top: `grid_blocks = parts × tiles`.
    pub parts: usize,
}

impl Geometry {
    /// Sample tiles in the grid (`grid_blocks / parts`).
    #[must_use]
    pub fn tiles(&self) -> usize {
        (self.grid_blocks / self.parts.max(1)).max(1)
    }
}

/// Result of one strategy launch.
#[derive(Clone, Debug)]
pub struct StrategyRun {
    /// Which strategy ran.
    pub strategy: Strategy,
    /// Simulated kernel outcome.
    pub kernel: KernelResult,
    /// Geometry used.
    pub geometry: Geometry,
    /// Samples processed.
    pub n_samples: usize,
}

impl StrategyRun {
    /// Simulated throughput in samples per microsecond (Fig. 5/6's y-axis).
    #[must_use]
    pub fn throughput_samples_per_us(&self) -> f64 {
        if self.kernel.total_ns == 0.0 {
            0.0
        } else {
            self.n_samples as f64 / (self.kernel.total_ns / 1_000.0)
        }
    }

    /// Simulated ns per sample.
    #[must_use]
    pub fn ns_per_sample(&self) -> f64 {
        self.kernel.total_ns / self.n_samples as f64
    }
}

/// Default threads per block (FIL's default; Algorithm 1 line 14 may tune
/// it per launch).
pub const THREADS_PER_BLOCK: usize = 256;

/// Creates the kernel tracer for a strategy launch, attaching the context's
/// telemetry so the launch shows up (as `label`) in exported traces. All four
/// strategies go through this — keep new ones on it so their launches are
/// observable too.
#[must_use]
pub fn launch_kernel<'a>(
    ctx: &LaunchContext<'a>,
    label: &str,
    grid_blocks: usize,
    threads_per_block: usize,
    smem_per_block: usize,
) -> KernelSim<'a> {
    let mut sim = KernelSim::new(ctx.device, grid_blocks, threads_per_block, smem_per_block);
    sim.set_trace(ctx.telemetry.sink, label, ctx.telemetry.t0_ns);
    sim.set_node_bytes(ctx.forest.node_bytes() as u64);
    sim
}

/// Round-robin tree assignment: thread `t` owns layout trees
/// `t, t + T, t + 2T, ...` (§2: "trees in the tree ensemble are evenly
/// assigned to threads in a round-robin way").
#[must_use]
pub fn round_robin_trees(n_trees: usize, n_threads: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); n_threads];
    for tree in 0..n_trees {
        out[tree % n_threads].push(tree as u32);
    }
    out
}

/// Simulated address of `samples[sample][attr]`.
#[must_use]
pub fn sample_attr_addr(
    buf: GlobalBuffer,
    n_attributes: usize,
    sample: usize,
    attr: usize,
) -> u64 {
    buf.elem_addr((sample * n_attributes + attr) as u64, 4)
}

/// Deterministic memo key for a block whose workload is the sample window
/// `[start, end)` over a fixed tree slice (DESIGN.md §2.12).
///
/// Two blocks with equal keys are guaranteed to produce bit-identical
/// [`tahoe_gpu_sim::BlockResult`]s, because a strategy block's trace depends
/// on its window only through:
///
/// - the traversal *paths*, determined by the window's f32 content (hashed
///   exactly, bit-for-bit — so `-0.0` vs `0.0` or NaN payloads never alias);
/// - the *number* of rounds/lanes, determined by the window length;
/// - transaction-line counts and adjacent-lane distances of attribute /
///   staging reads. Between two windows of equal content, corresponding
///   addresses differ by one uniform shift `(start_a - start_b) * row_bytes`;
///   line partitions (and hence coalescing counts) are invariant under a
///   uniform shift iff the windows' base addresses are congruent modulo the
///   device's transaction size, which the key hashes explicitly. Distances
///   are shift-invariant outright. Node addresses don't vary per block at
///   all for a fixed tree slice, which `salt` pins;
/// - the node-access *shape*: the classic encoding reads whole node records,
///   the packed encoding issues joint per-lane reads whose widths and
///   alignments come from the forest image. `encoding` carries
///   [`DeviceForest::encoding_key`] so blocks built against different
///   encodings (or differently aligned lanes) can never share a cache entry.
///
/// Empty windows hash as `(encoding, salt, len = 0)` with no address term:
/// such blocks only restage their slice, which the salt already determines.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn sample_window_key(
    samples: &SampleMatrix,
    sample_buf: GlobalBuffer,
    transaction_bytes: u64,
    encoding: u64,
    salt: u64,
    start: usize,
    end: usize,
) -> BlockKey {
    let end = end.max(start);
    let mut h = KeyHasher::new();
    h.write_u64(encoding);
    h.write_u64(salt);
    h.write_u64((end - start) as u64);
    if start < end {
        let base = sample_attr_addr(sample_buf, samples.n_attributes(), start, 0);
        h.write_u64(base % transaction_bytes.max(1));
        for sample in start..end {
            h.write_f32s(samples.row(sample));
        }
    }
    h.finish()
}

/// Reusable buffers for [`simulate_staging`]'s access loop.
#[derive(Default)]
struct StagingScratch {
    lanes: Vec<u8>,
    accesses: Vec<(u8, u64)>,
}

thread_local! {
    static STAGING_SCRATCH: RefCell<StagingScratch> = RefCell::new(StagingScratch::default());
}

/// Simulates a block cooperatively streaming `n_words` consecutive f32 words
/// from global memory into shared memory (fully coalesced reads + shared
/// writes), spreading the work over the block's warps.
///
/// Used for the sample staging of shared-data and the forest staging of
/// splitting-shared-forest. Returns nothing; costs accrue on the block.
/// Access buffers are reused from a per-thread pool, so blocks fanned out by
/// `KernelSim::simulate_blocks` stage without per-step allocations.
pub fn simulate_staging(block: &mut BlockSim<'_>, base_addr: u64, n_words: usize, n_warps: usize) {
    let warp_size = block.device().warp_size as usize;
    let total_steps = n_words.div_ceil(warp_size);
    STAGING_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.lanes.clear();
        scratch.lanes.extend(0..warp_size as u8);
        for w in 0..n_warps {
            let mut warp = block.warp();
            // Warp w handles steps w, w + W, ... (grid-stride loop).
            let mut step = w;
            while step < total_steps {
                scratch.accesses.clear();
                let start = step * warp_size;
                let end = (start + warp_size).min(n_words);
                for (lane, word) in (start..end).enumerate() {
                    scratch.accesses.push((lane as u8, base_addr + word as u64 * 4));
                }
                warp.gmem_read_streamed(&scratch.accesses, 4, None);
                warp.smem_access(&scratch.lanes[..end - start], 4);
                step += n_warps;
            }
            // Staging is cooperative block-wide work, not a per-thread
            // workload: blank the lane-busy times so imbalance metrics
            // (Fig. 2c, Table 3) measure traversal threads only, as the
            // paper's profiling does.
            let mut result = warp.finish();
            for busy in &mut result.lane_busy_ns {
                *busy = 0.0;
            }
            block.push_warp(result);
        }
    });
}

/// Issues the packed encoding's joint struct-of-arrays node fetch: the
/// bits/value(/child) lanes of the same slots, one dependent latency total
/// (see [`WarpSim::gmem_read_joint`]).
pub(crate) fn packed_node_read(
    warp: &mut WarpSim<'_>,
    forest: &DeviceForest,
    node_accesses: &[(u8, u64)],
    value_accesses: &[(u8, u64)],
    child_accesses: &[(u8, u64)],
    level: Option<u32>,
) {
    let lanes = forest.lanes();
    let mut sets: [(&[(u8, u64)], u64); 3] = [(&[], 0); 3];
    sets[0] = (node_accesses, lanes[0].elem_bytes as u64);
    sets[1] = (value_accesses, lanes[1].elem_bytes as u64);
    let mut n_sets = 2;
    if let Some(child_lane) = lanes.get(2) {
        sets[2] = (child_accesses, child_lane.elem_bytes as u64);
        n_sets = 3;
    }
    warp.gmem_read_joint(&sets[..n_sets], level);
}

/// Simulates a block staging layout trees `[from, to)` of the forest into
/// shared memory.
///
/// Classic encoding streams the single whole-node lane starting at the
/// slice's first root — the historical behaviour, preserved byte-for-byte
/// (word count truncates, base is the root's address). The packed encoding
/// streams each struct-of-arrays lane separately, so the smaller image shows
/// up directly as fewer staged words (and fewer streamed transactions in the
/// coalescing report).
pub fn stage_forest_slice(
    block: &mut BlockSim<'_>,
    forest: &DeviceForest,
    from: usize,
    to: usize,
    n_warps: usize,
) {
    if from >= to {
        return;
    }
    let slice_bytes = forest.trees_smem_bytes(from, to);
    if slice_bytes == 0 {
        return;
    }
    let first_root = forest.roots()[from];
    match forest.encoding() {
        NodeEncoding::Classic => {
            simulate_staging(block, forest.node_addr(first_root), slice_bytes / 4, n_warps);
        }
        NodeEncoding::Packed => {
            let n_nodes = slice_bytes / forest.node_bytes();
            for (lane_idx, lane) in forest.lanes().iter().enumerate() {
                let words = (n_nodes * lane.elem_bytes).div_ceil(4);
                simulate_staging(
                    block,
                    forest.lane_addr(lane_idx, first_root),
                    words,
                    n_warps,
                );
            }
        }
    }
}

/// Per-lane traversal state machine over one tree, shared by the
/// thread-per-sample strategies.
///
/// `lane_samples[lane] = Some(sample_idx)` for active lanes. Runs the level-
/// synchronous loop: node read (from `node_src`), attribute read (from
/// `attr_src`), node evaluation, advance — until every lane reaches a leaf.
pub struct TraversalConfig {
    /// Where node reads come from.
    pub nodes_shared: bool,
    /// Where attribute reads come from.
    pub attrs_shared: bool,
    /// Tag gmem node reads with the tree level (Fig. 2a instrumentation).
    pub tag_levels: bool,
}

/// Walks `tree` for every lane's sample, charging accesses to `warp`.
#[allow(clippy::too_many_arguments)]
pub fn traverse_tree_warp(
    warp: &mut WarpSim<'_>,
    forest: &DeviceForest,
    samples: &SampleMatrix,
    sample_buf: GlobalBuffer,
    layout_tree: usize,
    lane_samples: &[Option<usize>],
    cfg: &TraversalConfig,
    scratch: &mut TraversalScratch,
) {
    let root = forest.roots()[layout_tree];
    scratch.slots.clear();
    scratch
        .slots
        .extend(lane_samples.iter().map(|s| s.map(|_| root)));
    let n_attr = samples.n_attributes();
    let packed = forest.encoding() == NodeEncoding::Packed;
    let mut level = 0u32;
    loop {
        // Gather active lanes' node reads. Lane 0 is the whole record
        // (classic) or the structural-bits entry (packed); the packed
        // encoding additionally gathers the value and child lanes for a
        // joint struct-of-arrays fetch.
        scratch.node_accesses.clear();
        scratch.value_accesses.clear();
        scratch.child_accesses.clear();
        for (lane, slot) in scratch.slots.iter().enumerate() {
            if let Some(slot) = slot {
                scratch
                    .node_accesses
                    .push((lane as u8, forest.lane_addr(0, *slot)));
                if packed {
                    scratch
                        .value_accesses
                        .push((lane as u8, forest.lane_addr(1, *slot)));
                    if forest.lanes().len() > 2 {
                        scratch
                            .child_accesses
                            .push((lane as u8, forest.lane_addr(2, *slot)));
                    }
                }
            }
        }
        if scratch.node_accesses.is_empty() {
            break;
        }
        let node_bytes = forest.node_bytes() as u64;
        if cfg.nodes_shared {
            scratch.active_lanes.clear();
            scratch
                .active_lanes
                .extend(scratch.node_accesses.iter().map(|&(l, _)| l));
            warp.smem_access(&scratch.active_lanes, node_bytes);
        } else {
            let tag = cfg.tag_levels.then_some(level);
            if packed {
                // All lanes are indexed by the already-known slot, so the
                // loads overlap: one dependent latency, every lane's
                // bandwidth charged (see `WarpSim::gmem_read_joint`).
                packed_node_read(
                    warp,
                    forest,
                    &scratch.node_accesses,
                    &scratch.value_accesses,
                    &scratch.child_accesses,
                    tag,
                );
            } else {
                warp.gmem_read(&scratch.node_accesses, node_bytes, tag);
            }
        }
        // Attribute reads + evaluation for lanes at decision nodes.
        scratch.attr_accesses.clear();
        scratch.eval_lanes.clear();
        #[allow(clippy::needless_range_loop)] // `lane` is the SIMT lane id.
        for lane in 0..scratch.slots.len() {
            let Some(slot) = scratch.slots[lane] else { continue };
            let node = forest.node(slot);
            if node.leaf {
                scratch.slots[lane] = None;
                continue;
            }
            let sample = lane_samples[lane].expect("active lane has a sample");
            scratch.eval_lanes.push(lane as u8);
            scratch.attr_accesses.push((
                lane as u8,
                sample_attr_addr(sample_buf, n_attr, sample, node.attribute as usize),
            ));
            let value = samples.get(sample, node.attribute as usize);
            scratch.slots[lane] = Some(node.next_slot(value).expect("decision nodes route"));
        }
        if !scratch.eval_lanes.is_empty() {
            if cfg.attrs_shared {
                warp.smem_access(&scratch.eval_lanes, 4);
            } else {
                warp.gmem_read(&scratch.attr_accesses, 4, None);
            }
            warp.node_eval(&scratch.eval_lanes);
        }
        level += 1;
    }
}

/// Reusable buffers for the traversal loop (allocation-free inner loop).
#[derive(Default)]
pub struct TraversalScratch {
    slots: Vec<Option<u32>>,
    node_accesses: Vec<(u8, u64)>,
    value_accesses: Vec<(u8, u64)>,
    child_accesses: Vec<(u8, u64)>,
    attr_accesses: Vec<(u8, u64)>,
    active_lanes: Vec<u8>,
    eval_lanes: Vec<u8>,
}

/// Per-worker reusable buffers for one block's strategy simulation.
///
/// Blocks fan out across host threads (`KernelSim::simulate_blocks`), so the
/// scratch lives in a thread-local pool instead of being threaded through the
/// closure: each worker reuses its buffers across every block it claims, and
/// a 1-thread run reuses one set across the whole grid.
#[derive(Default)]
pub struct BlockScratch {
    /// Traversal-loop buffers.
    pub traversal: TraversalScratch,
    /// Per-warp lane → sample assignment.
    pub lane_samples: Vec<Option<usize>>,
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::default());
}

/// Runs `f` with the calling worker thread's reusable [`BlockScratch`].
///
/// # Panics
///
/// Panics on re-entrant use from the same thread (the strategies call it
/// once per simulated block, never nested).
pub fn with_block_scratch<R>(f: impl FnOnce(&mut BlockScratch) -> R) -> R {
    BLOCK_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_trees_evenly() {
        let a = round_robin_trees(10, 4);
        assert_eq!(a[0], vec![0, 4, 8]);
        assert_eq!(a[1], vec![1, 5, 9]);
        assert_eq!(a[2], vec![2, 6]);
        assert_eq!(a[3], vec![3, 7]);
    }

    #[test]
    fn round_robin_with_more_threads_than_trees() {
        let a = round_robin_trees(2, 4);
        assert_eq!(a[0], vec![0]);
        assert_eq!(a[1], vec![1]);
        assert!(a[2].is_empty());
    }

    #[test]
    fn window_keys_fingerprint_content_alignment_and_slice() {
        use tahoe_gpu_sim::memory::DeviceMemory;

        let mut mem = DeviceMemory::new();
        // Two identical 4-sample windows tiled back to back: 4 attributes per
        // row = 16 B per row, 64 B per window, so window 1 starts 64 B after
        // window 0 — *not* a multiple of the 128 B transaction size.
        let tile: Vec<f32> = (0..16).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut values = tile.clone();
        values.extend_from_slice(&tile);
        let samples = SampleMatrix::from_vec(8, 4, values);
        let buf = mem.alloc((samples.n_samples() * samples.sample_bytes()) as u64);

        let key =
            |m: &SampleMatrix, salt, s0, s1| sample_window_key(m, buf, 128, 0, salt, s0, s1);

        // Same window, same everything: deterministic.
        assert_eq!(key(&samples, 0, 0, 4), key(&samples, 0, 0, 4));
        // Identical content but misaligned base (64 % 128 != 0): must miss.
        assert_ne!(key(&samples, 0, 0, 4), key(&samples, 0, 4, 8));
        // A different encoding fingerprint must miss even when the window,
        // salt, and alignment all match.
        assert_ne!(
            sample_window_key(&samples, buf, 128, 1, 0, 0, 4),
            sample_window_key(&samples, buf, 128, 2, 0, 0, 4)
        );
        // Re-tile at a 128 B-aligned stride: window 2 starts 8 rows = 128 B
        // in, so identical content now hits.
        let mut aligned = tile.clone();
        aligned.extend_from_slice(&tile);
        aligned.extend_from_slice(&tile);
        aligned.extend_from_slice(&tile);
        let big = SampleMatrix::from_vec(16, 4, aligned);
        let big_buf = mem.alloc((big.n_samples() * big.sample_bytes()) as u64);
        let bkey = |m: &SampleMatrix, s0: usize, s1: usize| {
            sample_window_key(m, big_buf, 128, 0, 0, s0, s1)
        };
        assert_eq!(bkey(&big, 0, 4), bkey(&big, 8, 12));
        // One f32 nudged by one ULP in an otherwise identical window: miss.
        let mut poked = big.clone();
        poked.row_mut(9)[2] = f32::from_bits(poked.row(9)[2].to_bits() ^ 1);
        assert_ne!(bkey(&big, 8, 12), bkey(&poked, 8, 12));
        assert_eq!(bkey(&big, 0, 4), bkey(&poked, 0, 4), "untouched window unaffected");
        // Different tree slice (salt): miss even with identical windows.
        assert_ne!(key(&samples, 0, 0, 4), key(&samples, 1, 0, 4));
        // Window length participates even when content prefixes match.
        assert_ne!(key(&samples, 0, 0, 3), key(&samples, 0, 0, 4));
        // Empty and inverted windows are equal (salt + zero length only).
        assert_eq!(key(&samples, 3, 5, 5), key(&samples, 3, 7, 2));
        assert_ne!(key(&samples, 3, 5, 5), key(&samples, 4, 5, 5));
    }

    #[test]
    fn strategy_names_and_reduction_flags() {
        assert_eq!(Strategy::SharedData.name(), "shared data");
        assert!(Strategy::SharedData.has_block_reduction());
        assert!(!Strategy::Direct.has_block_reduction());
        assert!(Strategy::SplittingSharedForest.has_global_reduction());
        assert!(!Strategy::SharedForest.has_global_reduction());
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
