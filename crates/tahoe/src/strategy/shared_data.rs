//! The *shared data* strategy — FIL's inference algorithm (paper §2).
//!
//! Each thread block stages a chunk of samples into shared memory; trees are
//! assigned to threads round-robin; for every staged sample all threads
//! traverse their trees (nodes from global memory, attributes from shared
//! memory) and a block-wide reduction combines the per-tree partial sums.
//!
//! Two launch-shaping details mirror production FIL rather than the paper's
//! one-sentence description:
//!
//! - blocks are 256 threads regardless of tree count (sample staging needs
//!   the whole block's lanes);
//! - the staged chunk is "as many samples as fit in shared memory" (§2), but
//!   never so large that the grid cannot occupy the device — a real launch
//!   would not put a 100-sample batch into a single block.

use tahoe_gpu_sim::kernel::sample_plan;

use super::common::{
    launch_kernel, packed_node_read, round_robin_trees, simulate_staging, Geometry,
    LaunchContext, Strategy, StrategyRun,
};
use crate::format::{DeviceForest, NodeEncoding};

/// Launch shape shared by `geometry` and `run`.
struct Shape {
    threads: usize,
    chunk: usize,
    grid: usize,
    smem: usize,
}

fn shape(ctx: &LaunchContext<'_>) -> Shape {
    let capacity = ctx.device.shared_mem_per_block;
    let sample_bytes = ctx.samples.sample_bytes().max(4);
    let n = ctx.samples.n_samples().max(1);
    // Fill shared memory, but keep at least ~2 blocks per SM of work.
    let by_smem = (capacity / sample_bytes).max(1);
    let by_grid = n.div_ceil(2 * ctx.device.num_sms as usize).max(1);
    let chunk = by_smem.min(by_grid).min(n);
    Shape {
        threads: ctx.threads(),
        chunk,
        grid: n.div_ceil(chunk),
        smem: (chunk * sample_bytes).min(capacity),
    }
}

/// Launch geometry for this context.
#[must_use]
pub fn geometry(ctx: &LaunchContext<'_>) -> Geometry {
    let s = shape(ctx);
    Geometry {
        threads_per_block: s.threads,
        grid_blocks: s.grid,
        smem_per_block: s.smem,
        parts: 1,
    }
}

/// Runs the strategy on the simulator.
///
/// # Panics
///
/// Panics if the batch is empty.
#[must_use]
pub fn run(ctx: &LaunchContext<'_>) -> StrategyRun {
    let n = ctx.samples.n_samples();
    assert!(n > 0, "cannot infer an empty batch");
    let s = shape(ctx);
    let geo = geometry(ctx);
    let warp = ctx.device.warp_size as usize;
    let n_warps = s.threads.div_ceil(warp);
    let assignment = round_robin_trees(ctx.forest.n_trees(), s.threads);
    let max_rounds = ctx.forest.n_trees().div_ceil(s.threads);
    // The reduction combines one partial per tree (threads with several trees
    // pre-accumulate), so its cost scales with min(trees, threads).
    let reduce_values = ctx.forest.n_trees().min(s.threads);
    let mut kernel = launch_kernel(ctx, Strategy::SharedData.name(), s.grid, s.threads, s.smem);
    let n_attr = ctx.samples.n_attributes();
    let plan = sample_plan(s.grid, ctx.detail);
    // Memo key: every block round-robins the whole forest (salt 0) over the
    // sample chunk `[block * chunk, block * chunk + chunk)` it stages.
    let key = |block_idx: usize| {
        let s0 = block_idx * s.chunk;
        let s1 = (s0 + s.chunk).min(n);
        ctx.window_key(0, s0.min(s1), s1)
    };
    kernel.simulate_blocks_keyed(&plan, key, |block_idx, mut block| {
        let s0 = block_idx * s.chunk;
        let s1 = (s0 + s.chunk).min(n);
        // Stage the chunk's samples into shared memory (coalesced).
        let words = (s1 - s0) * n_attr;
        if words > 0 {
            let base = ctx.sample_buf.elem_addr((s0 * n_attr) as u64, 4);
            simulate_staging(&mut block, base, words, n_warps);
        }
        // Traversal: warp-level lockstep over (sample, tree round, level).
        with_warp_scratch(|scratch| {
            for w in 0..n_warps {
                let mut warp_sim = block.warp();
                for sample in s0..s1 {
                    for r in 0..max_rounds {
                        scratch.lane_trees.clear();
                        for lane in 0..warp {
                            let thread = w * warp + lane;
                            scratch.lane_trees.push(assignment[thread].get(r).copied());
                        }
                        traverse_assigned_trees(
                            &mut warp_sim,
                            ctx.forest,
                            ctx.samples,
                            sample,
                            scratch,
                        );
                    }
                }
                block.push_warp(warp_sim.finish());
            }
        });
        // One block-wide reduction per staged sample.
        for _ in s0..s1 {
            block.block_reduce(reduce_values);
        }
        block.finish()
    });
    StrategyRun {
        strategy: Strategy::SharedData,
        kernel: kernel.finish(),
        geometry: geo,
        n_samples: n,
    }
}

/// Reusable buffers for the lockstep loop, pooled per worker thread:
/// `simulate_blocks` fans blocks out across host threads, and each worker
/// reuses one scratch across every block it claims.
#[derive(Default)]
struct WarpScratch {
    lane_trees: Vec<Option<u32>>,
    slots: Vec<Option<u32>>,
    node_accesses: Vec<(u8, u64)>,
    value_accesses: Vec<(u8, u64)>,
    child_accesses: Vec<(u8, u64)>,
    eval_lanes: Vec<u8>,
}

thread_local! {
    static WARP_SCRATCH: std::cell::RefCell<WarpScratch> =
        std::cell::RefCell::new(WarpScratch::default());
}

/// Runs `f` with the calling worker thread's reusable [`WarpScratch`].
fn with_warp_scratch<R>(f: impl FnOnce(&mut WarpScratch) -> R) -> R {
    WARP_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Level-synchronous traversal where each lane walks its *own* tree for the
/// same sample (the thread-per-tree pattern of shared data); reads
/// `scratch.lane_trees` as the lane → tree assignment.
fn traverse_assigned_trees(
    warp: &mut tahoe_gpu_sim::WarpSim<'_>,
    forest: &DeviceForest,
    samples: &tahoe_datasets::SampleMatrix,
    sample: usize,
    scratch: &mut WarpScratch,
) {
    scratch.slots.clear();
    for t in &scratch.lane_trees {
        scratch
            .slots
            .push(t.map(|tree| forest.roots()[tree as usize]));
    }
    let row = samples.row(sample);
    let packed = forest.encoding() == NodeEncoding::Packed;
    let mut level = 0u32;
    loop {
        scratch.node_accesses.clear();
        scratch.value_accesses.clear();
        scratch.child_accesses.clear();
        for (lane, slot) in scratch.slots.iter().enumerate() {
            if let Some(slot) = slot {
                scratch
                    .node_accesses
                    .push((lane as u8, forest.lane_addr(0, *slot)));
                if packed {
                    scratch
                        .value_accesses
                        .push((lane as u8, forest.lane_addr(1, *slot)));
                    if forest.lanes().len() > 2 {
                        scratch
                            .child_accesses
                            .push((lane as u8, forest.lane_addr(2, *slot)));
                    }
                }
            }
        }
        if scratch.node_accesses.is_empty() {
            break;
        }
        if packed {
            packed_node_read(
                warp,
                forest,
                &scratch.node_accesses,
                &scratch.value_accesses,
                &scratch.child_accesses,
                Some(level),
            );
        } else {
            warp.gmem_read(&scratch.node_accesses, forest.node_bytes() as u64, Some(level));
        }
        scratch.eval_lanes.clear();
        for lane in 0..scratch.slots.len() {
            let Some(slot) = scratch.slots[lane] else { continue };
            let node = forest.node(slot);
            if node.leaf {
                scratch.slots[lane] = None;
                continue;
            }
            scratch.eval_lanes.push(lane as u8);
            let value = row[node.attribute as usize];
            scratch.slots[lane] = Some(node.next_slot(value).expect("decision nodes route"));
        }
        if !scratch.eval_lanes.is_empty() {
            // Attributes come from shared memory in this strategy.
            warp.smem_access(&scratch.eval_lanes, 4);
            warp.node_eval(&scratch.eval_lanes);
        }
        level += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn geometry_respects_shared_memory_and_grid_floor() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Full);
        let geo = geometry(&ctx);
        assert!(geo.smem_per_block <= ctx.device.shared_mem_per_block);
        // Small batches spread across the device instead of one giant block.
        let min_blocks = ctx.samples.n_samples().min(2 * ctx.device.num_sms as usize);
        assert!(geo.grid_blocks >= min_blocks / 2, "grid {}", geo.grid_blocks);
    }

    #[test]
    fn run_reports_reduction_time() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Sampled(2));
        let run = run(&ctx);
        assert!(run.kernel.block_reduction_wall_ns > 0.0, "shared data always reduces");
        assert!(run.kernel.global_reduction_ns == 0.0);
        assert!(run.throughput_samples_per_us() > 0.0);
    }

    #[test]
    fn node_reads_are_tagged_by_level() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Sampled(1));
        let run = run(&ctx);
        assert!(!run.kernel.levels.is_empty());
        assert!(run.kernel.levels.contains_key(&0), "root level must be present");
    }

    #[test]
    fn more_trees_mean_more_node_traffic_and_reduction() {
        let fx_small = Fixture::trained_with_trees("letter", 10);
        let fx_big = Fixture::trained_with_trees("letter", 40);
        let small = run(&context(&fx_small, Detail::Sampled(2)));
        let big = run(&context(&fx_big, Detail::Sampled(2)));
        assert!(big.kernel.gmem.requested_bytes > small.kernel.gmem.requested_bytes);
        // Reduction cost per sample grows with the tree count (Fig. 2b's
        // mechanism) — compare per-sample wall shares.
        assert!(
            big.kernel.block_reduction_wall_ns > small.kernel.block_reduction_wall_ns * 1.2
        );
    }
}
