//! The *splitting shared forest* strategy (paper §5.1).
//!
//! The forest is split into `P` consecutive parts, each small enough for one
//! block's shared memory; each block stages one part and evaluates it for its
//! samples; a device-wide segmented reduction combines the `P` partial sums
//! per sample. The forest restage and the global reduction amortize over the
//! batch, which is why this strategy wins at large batch sizes (Fig. 6).
//!
//! One refinement over the paper's one-block-per-part description: when `P`
//! is smaller than the device's block concurrency, samples are additionally
//! tiled across `T` block groups (`grid = P × T`), each staging its part
//! again. Without this, a forest splitting into fewer parts than SMs would
//! idle most of the device; the extra restaging traffic is charged honestly
//! and appears in the performance model (Eq. 7's staging term scales by `T`).

use tahoe_gpu_sim::kernel::sample_plan;
use tahoe_gpu_sim::occupancy::concurrent_blocks;

use super::common::{
    launch_kernel, stage_forest_slice, traverse_tree_warp, with_block_scratch, Geometry,
    LaunchContext, Strategy, StrategyRun, TraversalConfig,
};
use crate::format::DeviceForest;

/// Splits layout trees into consecutive parts each fitting `budget` bytes.
///
/// Returns `None` if a single tree exceeds the budget.
#[must_use]
pub fn partition_trees(
    forest: &DeviceForest,
    budget: usize,
) -> Option<Vec<std::ops::Range<usize>>> {
    let n = forest.n_trees();
    let mut parts = Vec::new();
    let mut start = 0usize;
    while start < n {
        let mut end = start;
        let mut bytes = 0usize;
        while end < n {
            let tree_bytes = forest.trees_smem_bytes(end, end + 1);
            if tree_bytes > budget {
                return None;
            }
            if bytes + tree_bytes > budget {
                break;
            }
            bytes += tree_bytes;
            end += 1;
        }
        parts.push(start..end);
        start = end;
    }
    Some(parts)
}

/// Computes `(parts, tiles, smem)` for a context; `None` when infeasible.
fn shape(ctx: &LaunchContext<'_>) -> Option<(Vec<std::ops::Range<usize>>, usize, usize)> {
    let parts = partition_trees(ctx.forest, ctx.device.shared_mem_per_block)?;
    let smem = parts
        .iter()
        .map(|p| ctx.forest.trees_smem_bytes(p.start, p.end))
        .max()
        .unwrap_or(0);
    let n = ctx.samples.n_samples().max(1);
    let threads = ctx.threads();
    let concurrent = concurrent_blocks(ctx.device, threads, smem);
    let max_tiles = n.div_ceil(threads).max(1);
    let tiles = (concurrent / parts.len().max(1)).clamp(1, max_tiles);
    Some((parts, tiles, smem))
}

/// Launch geometry: `P × T` blocks.
///
/// Returns `None` if some tree cannot fit shared memory at all.
#[must_use]
pub fn geometry(ctx: &LaunchContext<'_>) -> Option<Geometry> {
    let (parts, tiles, smem) = shape(ctx)?;
    Some(Geometry {
        threads_per_block: ctx.threads(),
        grid_blocks: parts.len() * tiles,
        smem_per_block: smem,
        parts: parts.len(),
    })
}

/// Runs the strategy; `None` when infeasible.
///
/// # Panics
///
/// Panics if the batch is empty.
#[must_use]
pub fn run(ctx: &LaunchContext<'_>) -> Option<StrategyRun> {
    let n = ctx.samples.n_samples();
    assert!(n > 0, "cannot infer an empty batch");
    let (parts, tiles, smem) = shape(ctx)?;
    let geo = geometry(ctx)?;
    let n_parts = parts.len();
    let warp = ctx.device.warp_size as usize;
    let threads = geo.threads_per_block;
    let n_warps = threads / warp;
    let tile_len = n.div_ceil(tiles);
    let cfg = TraversalConfig {
        nodes_shared: true,
        attrs_shared: false,
        tag_levels: false,
    };
    let mut kernel = launch_kernel(
        ctx,
        Strategy::SplittingSharedForest.name(),
        geo.grid_blocks,
        threads,
        smem,
    );
    let plan = sample_plan(geo.grid_blocks, ctx.detail);
    // Memo key: the block stages tree part `block % P` (the salt) and
    // evaluates it for sample tile `block / P`. The last tile can be empty
    // (`t0 > n`); such blocks only restage their part, so the key collapses
    // to (salt, empty window) — exactly the work they share.
    let key = |block_idx: usize| {
        let t0 = (block_idx / n_parts) * tile_len;
        let t1 = (t0 + tile_len).min(n);
        ctx.window_key((block_idx % n_parts) as u64, t0.min(t1), t1)
    };
    kernel.simulate_blocks_keyed(&plan, key, |block_idx, mut block| {
        let part = parts[block_idx % n_parts].clone();
        let tile = block_idx / n_parts;
        let t0 = tile * tile_len;
        let t1 = (t0 + tile_len).min(n);
        // Stage this part's trees from global to shared memory (coalesced;
        // the packed encoding streams each image lane separately).
        stage_forest_slice(&mut block, ctx.forest, part.start, part.end, n_warps);
        let rounds = (t1.saturating_sub(t0)).div_ceil(threads);
        with_block_scratch(|scratch| {
            for w in 0..n_warps {
                let mut warp_sim = block.warp();
                for round in 0..rounds {
                    scratch.lane_samples.clear();
                    for lane in 0..warp {
                        let sample = t0 + round * threads + w * warp + lane;
                        scratch.lane_samples.push((sample < t1).then_some(sample));
                    }
                    if scratch.lane_samples.iter().all(Option::is_none) {
                        continue;
                    }
                    for tree in part.clone() {
                        traverse_tree_warp(
                            &mut warp_sim,
                            ctx.forest,
                            ctx.samples,
                            ctx.sample_buf,
                            tree,
                            &scratch.lane_samples,
                            &cfg,
                            &mut scratch.traversal,
                        );
                    }
                }
                block.push_warp(warp_sim.finish());
            }
        });
        block.finish()
    });
    // One segmented reduction over P partials per sample for the batch.
    kernel.global_reduce_values(n_parts, (n_parts * n) as u64, 4);
    Some(StrategyRun {
        strategy: Strategy::SplittingSharedForest,
        kernel: kernel.finish(),
        geometry: geo,
        n_samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn partition_covers_all_trees_consecutively() {
        let fx = Fixture::trained("higgs");
        let ctx = context(&fx, Detail::Full);
        let parts = partition_trees(ctx.forest, 4 * 1024).unwrap();
        assert!(parts.len() > 1, "small budget must force multiple parts");
        let mut next = 0;
        for p in &parts {
            assert_eq!(p.start, next);
            assert!(p.end > p.start);
            assert!(ctx.forest.trees_smem_bytes(p.start, p.end) <= 4 * 1024);
            next = p.end;
        }
        assert_eq!(next, ctx.forest.n_trees());
    }

    #[test]
    fn oversized_tree_is_infeasible() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Full);
        assert!(partition_trees(ctx.forest, 8).is_none());
    }

    #[test]
    fn grid_tiles_samples_to_fill_the_device() {
        let fx = Fixture::trained("higgs");
        let ctx = context(&fx, Detail::Sampled(1));
        let geo = geometry(&ctx).unwrap();
        assert_eq!(geo.grid_blocks % geo.parts, 0);
        let tiles = geo.tiles();
        // Either the device is filled or samples ran out.
        let concurrent = concurrent_blocks(ctx.device, geo.threads_per_block, geo.smem_per_block);
        let max_tiles = ctx.samples.n_samples().div_ceil(geo.threads_per_block);
        assert!(geo.grid_blocks >= concurrent.min(geo.parts * max_tiles) / 2);
        assert!(tiles <= max_tiles);
    }

    #[test]
    fn run_includes_global_reduction() {
        let fx = Fixture::trained("higgs");
        let run = run(&context(&fx, Detail::Sampled(2))).unwrap();
        assert!(run.kernel.global_reduction_ns > 0.0);
        assert_eq!(run.kernel.block_reduction_wall_ns, 0.0);
    }

    #[test]
    fn global_reduction_amortizes_with_batch_size() {
        // Per-sample reduction cost must shrink as the batch grows — the
        // mechanism behind the Fig. 6 crossover.
        let small = Fixture::trained_with_batch("higgs", 64);
        let large = Fixture::trained_with_batch("higgs", 512);
        let rs = run(&context(&small, Detail::Sampled(2))).unwrap();
        let rl = run(&context(&large, Detail::Sampled(2))).unwrap();
        let per_sample_small = rs.kernel.global_reduction_ns / rs.n_samples as f64;
        let per_sample_large = rl.kernel.global_reduction_ns / rl.n_samples as f64;
        assert!(
            per_sample_large < per_sample_small,
            "{per_sample_large} !< {per_sample_small}"
        );
    }
}
