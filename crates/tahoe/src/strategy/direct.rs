//! The *direct* strategy (paper §5.1).
//!
//! Each thread owns one sample and traverses the entire forest for it; no
//! shared memory, no reductions. All reads hit global memory: node reads are
//! moderately coalesced (threads on the same tree at the same level), while
//! attribute reads scatter across samples.

use tahoe_gpu_sim::kernel::sample_plan;

use super::common::{
    launch_kernel, traverse_tree_warp, with_block_scratch, Geometry, LaunchContext, Strategy,
    StrategyRun, TraversalConfig,
};

/// Launch geometry: one thread per sample.
#[must_use]
pub fn geometry(ctx: &LaunchContext<'_>) -> Geometry {
    let n = ctx.samples.n_samples();
    let threads = ctx.threads();
    Geometry {
        threads_per_block: threads,
        grid_blocks: n.div_ceil(threads).max(1),
        smem_per_block: 0,
        parts: 1,
    }
}

/// Runs the strategy on the simulator.
///
/// # Panics
///
/// Panics if the batch is empty.
#[must_use]
pub fn run(ctx: &LaunchContext<'_>) -> StrategyRun {
    let n = ctx.samples.n_samples();
    assert!(n > 0, "cannot infer an empty batch");
    let geo = geometry(ctx);
    let warp = ctx.device.warp_size as usize;
    let n_warps = geo.threads_per_block / warp;
    let cfg = TraversalConfig {
        nodes_shared: false,
        attrs_shared: false,
        tag_levels: true,
    };
    let mut kernel =
        launch_kernel(ctx, Strategy::Direct.name(), geo.grid_blocks, geo.threads_per_block, 0);
    let plan = sample_plan(geo.grid_blocks, ctx.detail);
    // Memo key: every block traverses the whole forest (salt 0) for the
    // sample window `[first, first + threads)` — blocks with bit-identical
    // windows at congruent base addresses trace identically.
    let key = |block_idx: usize| {
        let s0 = block_idx * geo.threads_per_block;
        let s1 = (s0 + geo.threads_per_block).min(n);
        ctx.window_key(0, s0.min(s1), s1)
    };
    kernel.simulate_blocks_keyed(&plan, key, |block_idx, mut block| {
        with_block_scratch(|scratch| {
            for w in 0..n_warps {
                scratch.lane_samples.clear();
                for lane in 0..warp {
                    let sample = block_idx * geo.threads_per_block + w * warp + lane;
                    scratch.lane_samples.push((sample < n).then_some(sample));
                }
                if scratch.lane_samples.iter().all(Option::is_none) {
                    continue;
                }
                let mut warp_sim = block.warp();
                for tree in 0..ctx.forest.n_trees() {
                    traverse_tree_warp(
                        &mut warp_sim,
                        ctx.forest,
                        ctx.samples,
                        ctx.sample_buf,
                        tree,
                        &scratch.lane_samples,
                        &cfg,
                        &mut scratch.traversal,
                    );
                }
                block.push_warp(warp_sim.finish());
            }
        });
        block.finish()
    });
    StrategyRun {
        strategy: Strategy::Direct,
        kernel: kernel.finish(),
        geometry: geo,
        n_samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn direct_is_reduction_free() {
        let fx = Fixture::trained("letter");
        let run = run(&context(&fx, Detail::Sampled(2)));
        assert_eq!(run.kernel.block_reduction_wall_ns, 0.0);
        assert_eq!(run.kernel.global_reduction_ns, 0.0);
    }

    #[test]
    fn direct_uses_no_shared_memory() {
        let fx = Fixture::trained("letter");
        let run = run(&context(&fx, Detail::Sampled(2)));
        assert_eq!(run.geometry.smem_per_block, 0);
        assert_eq!(run.kernel.smem.requested_bytes, 0);
    }

    #[test]
    fn attribute_reads_are_poorly_coalesced() {
        // Thread-per-sample attribute reads scatter across rows, so overall
        // gmem efficiency must be well below 1.
        let fx = Fixture::trained("letter");
        let run = run(&context(&fx, Detail::Sampled(4)));
        assert!(
            run.kernel.gmem.efficiency() < 0.9,
            "efficiency {}",
            run.kernel.gmem.efficiency()
        );
    }

    #[test]
    fn grid_covers_every_sample_once() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Full);
        let geo = geometry(&ctx);
        assert!(geo.grid_blocks * geo.threads_per_block >= ctx.samples.n_samples());
        assert!((geo.grid_blocks - 1) * geo.threads_per_block < ctx.samples.n_samples());
    }
}
