//! The *shared forest* strategy (paper §5.1).
//!
//! The whole forest is staged into shared memory once and reused for every
//! sample; each thread owns one sample and traverses independently
//! (reduction-free). Only feasible when the forest fits a block's shared
//! memory; the paper ignores the (amortized) staging cost, and so do we
//! (Eq. 6: "We ignore the time of loading the forest … easily amortized").

use tahoe_gpu_sim::kernel::sample_plan;

use super::common::{
    launch_kernel, traverse_tree_warp, with_block_scratch, Geometry, LaunchContext, Strategy,
    StrategyRun, TraversalConfig,
};

/// Whether the forest fits in one block's shared memory.
#[must_use]
pub fn feasible(ctx: &LaunchContext<'_>) -> bool {
    ctx.forest.forest_smem_bytes() <= ctx.device.shared_mem_per_block
}

/// Launch geometry: one thread per sample, forest-sized shared memory.
///
/// Returns `None` when the forest does not fit (paper: "the corresponding
/// performance result is not shown").
#[must_use]
pub fn geometry(ctx: &LaunchContext<'_>) -> Option<Geometry> {
    if !feasible(ctx) {
        return None;
    }
    let n = ctx.samples.n_samples();
    let threads = ctx.threads();
    Some(Geometry {
        threads_per_block: threads,
        grid_blocks: n.div_ceil(threads).max(1),
        smem_per_block: ctx.forest.forest_smem_bytes(),
        parts: 1,
    })
}

/// Runs the strategy; `None` when infeasible.
///
/// # Panics
///
/// Panics if the batch is empty.
#[must_use]
pub fn run(ctx: &LaunchContext<'_>) -> Option<StrategyRun> {
    let n = ctx.samples.n_samples();
    assert!(n > 0, "cannot infer an empty batch");
    let geo = geometry(ctx)?;
    let warp = ctx.device.warp_size as usize;
    let n_warps = geo.threads_per_block / warp;
    let cfg = TraversalConfig {
        nodes_shared: true,
        attrs_shared: false,
        tag_levels: false,
    };
    let mut kernel = launch_kernel(
        ctx,
        Strategy::SharedForest.name(),
        geo.grid_blocks,
        geo.threads_per_block,
        geo.smem_per_block,
    );
    let plan = sample_plan(geo.grid_blocks, ctx.detail);
    // Memo key: whole forest in shared memory for every block (salt 0);
    // the block's trace is a function of its sample window alone.
    let key = |block_idx: usize| {
        let s0 = block_idx * geo.threads_per_block;
        let s1 = (s0 + geo.threads_per_block).min(n);
        ctx.window_key(0, s0.min(s1), s1)
    };
    kernel.simulate_blocks_keyed(&plan, key, |block_idx, mut block| {
        with_block_scratch(|scratch| {
            for w in 0..n_warps {
                scratch.lane_samples.clear();
                for lane in 0..warp {
                    let sample = block_idx * geo.threads_per_block + w * warp + lane;
                    scratch.lane_samples.push((sample < n).then_some(sample));
                }
                if scratch.lane_samples.iter().all(Option::is_none) {
                    continue;
                }
                let mut warp_sim = block.warp();
                for tree in 0..ctx.forest.n_trees() {
                    traverse_tree_warp(
                        &mut warp_sim,
                        ctx.forest,
                        ctx.samples,
                        ctx.sample_buf,
                        tree,
                        &scratch.lane_samples,
                        &cfg,
                        &mut scratch.traversal,
                    );
                }
                block.push_warp(warp_sim.finish());
            }
        });
        block.finish()
    });
    Some(StrategyRun {
        strategy: Strategy::SharedForest,
        kernel: kernel.finish(),
        geometry: geo,
        n_samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::testutil::{context, Fixture};
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn feasibility_tracks_forest_size() {
        // letter at Smoke scale is small; it must fit.
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Sampled(2));
        assert!(feasible(&ctx), "small forest must fit shared memory");
    }

    #[test]
    fn infeasible_forest_returns_none() {
        let fx = Fixture::trained("higgs"); // 40 trees x depth ≤ 8 at Smoke —
                                            // still small, so force a tiny device.
        let mut ctx = context(&fx, Detail::Sampled(2));
        let mut tiny = ctx.device.clone();
        tiny.shared_mem_per_block = 64;
        tiny.shared_mem_per_sm = 64;
        ctx.device = &tiny;
        assert!(run(&ctx).is_none());
    }

    #[test]
    fn node_reads_hit_shared_memory() {
        let fx = Fixture::trained("letter");
        let run = run(&context(&fx, Detail::Sampled(2))).unwrap();
        assert!(run.kernel.smem.requested_bytes > 0);
        // Remaining gmem traffic is attribute reads only: 4 bytes each.
        assert!(run.kernel.gmem.requested_bytes.is_multiple_of(4));
        assert_eq!(run.kernel.block_reduction_wall_ns, 0.0);
    }

    #[test]
    fn shared_forest_beats_direct_on_small_forests() {
        // With nodes in shared memory, node traffic leaves global memory; on
        // a reuse-heavy workload the strategy must be at least as fast as
        // direct.
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Sampled(4));
        let sf = run(&ctx).unwrap();
        let d = crate::strategy::direct::run(&ctx);
        assert!(
            sf.kernel.total_ns <= d.kernel.total_ns,
            "shared forest {} vs direct {}",
            sf.kernel.total_ns,
            d.kernel.total_ns
        );
    }
}
