//! The four inference strategies of §5, as simulated GPU kernels.
//!
//! Every strategy consumes a [`LaunchContext`] (device + device-formatted
//! forest + sample batch) and produces a [`StrategyRun`] with the simulated
//! kernel outcome. Strategies that need shared-memory capacity return
//! `None` when the forest cannot fit (paper §5.2: shared forest "can only be
//! applied to five datasets").

pub mod common;
pub mod direct;
pub mod shared_data;
pub mod shared_forest;
pub mod split_shared_forest;

pub use common::{Geometry, LaunchContext, Strategy, StrategyRun};

/// Runs one strategy; `None` when infeasible on this context.
#[must_use]
pub fn run(strategy: Strategy, ctx: &LaunchContext<'_>) -> Option<StrategyRun> {
    match strategy {
        Strategy::SharedData => Some(shared_data::run(ctx)),
        Strategy::Direct => Some(direct::run(ctx)),
        Strategy::SharedForest => shared_forest::run(ctx),
        Strategy::SplittingSharedForest => split_shared_forest::run(ctx),
    }
}

/// Launch geometry a strategy would use; `None` when infeasible.
#[must_use]
pub fn geometry(strategy: Strategy, ctx: &LaunchContext<'_>) -> Option<Geometry> {
    match strategy {
        Strategy::SharedData => Some(shared_data::geometry(ctx)),
        Strategy::Direct => Some(direct::geometry(ctx)),
        Strategy::SharedForest => shared_forest::geometry(ctx),
        Strategy::SplittingSharedForest => split_shared_forest::geometry(ctx),
    }
}

/// Runs every feasible strategy (Fig. 5's per-dataset comparison).
#[must_use]
pub fn run_all(ctx: &LaunchContext<'_>) -> Vec<StrategyRun> {
    Strategy::ALL
        .into_iter()
        .filter_map(|s| run(s, ctx))
        .collect()
}

/// Test fixtures shared by the strategy unit tests and integration tests.
#[doc(hidden)]
pub mod testutil {
    use tahoe_datasets::{DatasetSpec, Scale, SampleMatrix};
    use tahoe_forest::Forest;
    use tahoe_gpu_sim::device::DeviceSpec;
    use tahoe_gpu_sim::kernel::Detail;
    use tahoe_gpu_sim::memory::DeviceMemory;
    use tahoe_gpu_sim::GlobalBuffer;

    use crate::format::{DeviceForest, FormatConfig, LayoutPlan};

    use super::LaunchContext;

    /// Owns everything a [`LaunchContext`] borrows.
    pub struct Fixture {
        /// Target device (P100 by default, as in Fig. 5).
        pub device: DeviceSpec,
        /// Trained host forest.
        pub forest: Forest,
        /// Device-formatted forest (identity plan, adaptive encoding).
        pub device_forest: DeviceForest,
        /// Inference samples.
        pub samples: SampleMatrix,
        /// Simulated batch allocation.
        pub sample_buf: GlobalBuffer,
    }

    impl Fixture {
        /// Trains a Smoke-scale forest for a Table 2 dataset.
        ///
        /// # Panics
        ///
        /// Panics on an unknown dataset name.
        #[must_use]
        pub fn trained(name: &str) -> Self {
            Self::build(name, None, None)
        }

        /// As [`Fixture::trained`], truncating the forest to `n` trees.
        #[must_use]
        pub fn trained_with_trees(name: &str, n: usize) -> Self {
            Self::build(name, Some(n), None)
        }

        /// As [`Fixture::trained`], truncating the batch to `n` samples.
        #[must_use]
        pub fn trained_with_batch(name: &str, n: usize) -> Self {
            Self::build(name, None, Some(n))
        }

        /// As [`Fixture::trained`], using the packed struct-of-arrays node
        /// encoding (DESIGN.md §2.13) instead of the classic one.
        #[must_use]
        pub fn trained_packed(name: &str) -> Self {
            let mut fx = Self::build(name, None, None);
            let mut mem = DeviceMemory::new();
            fx.sample_buf =
                mem.alloc((fx.samples.n_samples() * fx.samples.n_attributes() * 4) as u64);
            let plan = LayoutPlan::identity(&fx.forest);
            fx.device_forest =
                DeviceForest::build(&fx.forest, &plan, FormatConfig::packed(), &mut mem);
            fx
        }

        fn build(name: &str, trees: Option<usize>, batch: Option<usize>) -> Self {
            let spec = DatasetSpec::by_name(name).expect("known dataset");
            let data = spec.generate(Scale::Smoke);
            let (train, infer) = data.split_train_infer();
            let mut forest = tahoe_forest::train_for_spec(&spec, &train, Scale::Smoke);
            if let Some(n) = trees {
                forest = forest.truncated(n.min(forest.n_trees()));
            }
            let mut samples = infer.samples;
            if let Some(n) = batch {
                let keep: Vec<usize> = (0..n.min(samples.n_samples())).collect();
                samples = samples.select(&keep);
            }
            let mut mem = DeviceMemory::new();
            let sample_buf =
                mem.alloc((samples.n_samples() * samples.n_attributes() * 4) as u64);
            let plan = LayoutPlan::identity(&forest);
            let device_forest =
                DeviceForest::build(&forest, &plan, FormatConfig::adaptive(), &mut mem);
            Self {
                device: DeviceSpec::tesla_p100(),
                forest,
                device_forest,
                samples,
                sample_buf,
            }
        }
    }

    /// Builds a launch context over a fixture.
    #[must_use]
    pub fn context<'a>(fx: &'a Fixture, detail: Detail) -> LaunchContext<'a> {
        LaunchContext {
            device: &fx.device,
            forest: &fx.device_forest,
            samples: &fx.samples,
            sample_buf: fx.sample_buf,
            detail,
            block_threads: super::common::THREADS_PER_BLOCK,
            telemetry: crate::telemetry::TelemetryCtx::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{context, Fixture};
    use super::*;
    use tahoe_gpu_sim::kernel::Detail;

    #[test]
    fn run_all_returns_every_feasible_strategy() {
        let fx = Fixture::trained("letter");
        let runs = run_all(&context(&fx, Detail::Sampled(2)));
        // Small forest: all four are feasible.
        assert_eq!(runs.len(), 4);
        let names: Vec<&str> = runs.iter().map(|r| r.strategy.name()).collect();
        assert_eq!(
            names,
            vec!["shared data", "direct", "shared forest", "splitting shared forest"]
        );
    }

    #[test]
    fn all_strategies_report_positive_time() {
        let fx = Fixture::trained("ijcnn1");
        for r in run_all(&context(&fx, Detail::Sampled(2))) {
            assert!(r.kernel.total_ns > 0.0, "{}", r.strategy);
            assert!(r.throughput_samples_per_us() > 0.0, "{}", r.strategy);
            assert!(r.ns_per_sample() > 0.0, "{}", r.strategy);
        }
    }

    #[test]
    fn geometry_matches_run() {
        let fx = Fixture::trained("letter");
        let ctx = context(&fx, Detail::Sampled(2));
        for s in Strategy::ALL {
            let geo = geometry(s, &ctx).unwrap();
            let run = run(s, &ctx).unwrap();
            assert_eq!(run.geometry, geo, "{s}");
            assert_eq!(run.kernel.grid_blocks, geo.grid_blocks, "{s}");
        }
    }
}
