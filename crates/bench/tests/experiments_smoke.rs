//! Smoke tests: every experiment must run end-to-end at Smoke scale and
//! produce structurally sane results. (Full-scale numbers are checked by the
//! `all` binary and recorded in EXPERIMENTS.md.)

use tahoe_bench::env::Env;
use tahoe_bench::experiments;
use tahoe_datasets::Scale;
use tahoe_gpu_sim::kernel::Detail;

fn smoke_env() -> Env {
    Env {
        scale: Scale::Smoke,
        detail: Detail::Sampled(2),
        ..Env::default()
    }
}

#[test]
fn motivation_runs_and_shows_decay() {
    let r = experiments::motivation::run(&smoke_env());
    assert!(!r.levels.is_empty());
    assert!(r.overall_efficiency > 0.0 && r.overall_efficiency <= 1.0);
    assert!(!r.reduction.is_empty());
    for row in &r.reduction {
        assert!(row.reduction_fraction > 0.0 && row.reduction_fraction < 1.0);
    }
    assert!(r.thread_cv > 0.0);
    // Distance grows from the first to the last level.
    let first = r.levels.first().unwrap();
    let last = r.levels.last().unwrap();
    assert!(last.distance > first.distance);
}

#[test]
fn strategy_row_covers_feasible_strategies() {
    let spec = tahoe_datasets::DatasetSpec::by_name("letter").unwrap();
    let p = tahoe_bench::prepare(&spec, Scale::Smoke);
    let row = experiments::strategies::strategy_row(&smoke_env(), &p, 500);
    assert_eq!(row.throughput.len(), 4);
    // Letter's small forest makes all four feasible.
    assert!(row.throughput.iter().all(Option::is_some));
    for t in row.throughput.iter().flatten() {
        assert!(*t > 0.0);
    }
}

#[test]
fn ablations_run_at_smoke_scale() {
    let r = experiments::ablations::run(&smoke_env());
    assert!(r.weighted_order_score >= 0.0);
    assert!(r.training_prob_speedup > 0.0);
    assert!(r.oracle_prob_speedup > 0.0);
    assert!(r.sampling_error >= 0.0 && r.sampling_error < 1.0);
    assert!(r.infinite_sm_speedup > 0.0);
    assert!(r.varlen_speedup > 0.5);
}

/// Regression: the §7.5 weak-scaling check used to replay the identical
/// batch through one deterministic engine, so `weak_variance` was
/// dead-certain 0.0 and the paper's "< 5 %" bound was vacuous. The reworked
/// experiment perturbs per-device shards (offset windows + size jitter), so
/// the measured variance must be non-degenerate — strictly positive — while
/// still landing under the paper's bound.
#[test]
fn weak_scaling_variance_is_nonzero_but_small() {
    let spec = tahoe_datasets::DatasetSpec::by_name("letter").unwrap();
    let p = tahoe_bench::prepare(&spec, Scale::Smoke);
    let r = experiments::scaling::run_for(&smoke_env(), std::slice::from_ref(&p), &[1, 2, 4]);
    assert_eq!(r.rows.len(), 1);
    let row = &r.rows[0];
    assert!(
        row.weak_variance > 0.0,
        "weak variance degenerated back to zero — the check is vacuous again"
    );
    assert!(
        row.weak_variance < 0.05,
        "weak variance {} breaches the paper's 5% bound",
        row.weak_variance
    );
    // Every weak point simulated real per-device work.
    for w in &row.weak {
        assert!(!w.per_device.is_empty());
        assert!(w.time_ns.is_finite() && w.time_ns > 0.0);
        for d in &w.per_device {
            assert!(d.elapsed_ns.is_finite() && d.elapsed_ns > 0.0);
            assert!(d.n_samples > 0);
        }
    }
    // Strong scaling simulated every non-empty partition, and no speedup
    // cell ever renders as `inf` or a bogus 0.00.
    let batch_len = row.strong[0].per_device[0].n_samples;
    for s in &row.strong {
        assert_eq!(s.per_device.len(), s.n_gpus.min(batch_len));
        match s.speedup {
            Some(v) => assert!(v.is_finite() && v > 0.0),
            None => assert!(s.n_gpus > batch_len),
        }
    }
}

#[test]
fn forest_read_efficiency_is_bounded() {
    let spec = tahoe_datasets::DatasetSpec::by_name("ijcnn1").unwrap();
    let p = tahoe_bench::prepare(&spec, Scale::Smoke);
    let batch = tahoe_bench::batch_of(&p.infer, 400);
    let mut engine = tahoe::engine::Engine::fil(
        tahoe_gpu_sim::device::DeviceSpec::tesla_p100(),
        p.forest.clone(),
    );
    let r = engine.infer(&batch);
    let eff = experiments::coalescing::forest_read_efficiency(&r.run.kernel);
    assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff}");
}
