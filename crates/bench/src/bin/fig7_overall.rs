//! Regenerates the paper's Fig. 7 (Tahoe vs FIL, 15 datasets x 3 GPUs x 2
//! batch regimes).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::overall::run(&env);
    tahoe_bench::experiments::overall::report_fig7(&result);
}
