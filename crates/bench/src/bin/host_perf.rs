//! Host wall-clock benchmark of the parallel simulation pipeline.
//!
//! Times the Fig. 5 strategy sweep (all datasets × four strategies on P100)
//! end-to-end twice — block simulation forced to a single worker, then with
//! the default worker pool — and writes `results/BENCH_host_sim.json` so
//! future performance work has a recorded baseline. Forest training/loading
//! happens before the timed region; the sweep only exercises the simulator
//! hot path this PR parallelized.
//!
//! The speedup is bounded by the host's core count (a 1-core CI box records
//! ≈ 1×); the record includes the worker count so readers can interpret it.
//!
//! A second phase times the block-memo cache (DESIGN.md §2.12) on a
//! repeated-geometry batch at `--detail full` — memo off vs memo on in one
//! process via `set_sim_memo`, with the hit rate read back from the
//! telemetry counters. The phase is a spot check as much as a benchmark: it
//! exits non-zero if the repeated-geometry plan reports zero hits, which
//! would mean the strategy key material regressed. A third phase does the
//! same for the tuning-decision cache (DESIGN.md §2.16): repeated identical
//! batches with the cache off vs on, exiting non-zero when the hit rate
//! drops to 90% or below — a repeated batch must hit on every launch after
//! the first. A final spot check pins
//! `TelemetrySink::Disabled` as a strict no-op for the windowed time-series
//! sampler (DESIGN.md §2.14) — the timed phases assume telemetry-off costs
//! nothing.

use std::time::Instant;

use serde::Serialize;

use tahoe::engine::{Engine, EngineOptions};
use tahoe::strategy::Strategy;
use tahoe::telemetry::TelemetrySink;
use tahoe::tune::set_tune_cache;
use tahoe_bench::experiments::strategies::strategy_row;
use tahoe_bench::experiments::HIGH_BATCH;
use tahoe_bench::report::write_json;
use tahoe_bench::{prepare, prepare_all, Env};
use tahoe_datasets::{DatasetSpec, SampleMatrix};
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::Detail;
use tahoe_gpu_sim::memo::set_sim_memo;
use tahoe_gpu_sim::parallel::{set_sim_threads, sim_threads};

/// `BENCH_host_sim.json` record.
#[derive(Serialize)]
struct HostSimBench {
    /// Worker threads the parallel phase used.
    workers: usize,
    /// Host cores reported by the OS.
    host_cores: usize,
    /// Wall seconds of the sweep with 1 simulation worker.
    sequential_s: f64,
    /// Wall seconds of the sweep with the default worker pool.
    parallel_s: f64,
    /// `sequential_s / parallel_s`.
    speedup: f64,
    /// Datasets swept.
    datasets: usize,
    /// Scale the forests were trained at.
    scale: String,
    /// Sampled blocks per simulated kernel.
    detail: String,
    /// Dataset the memo phase ran on (full detail, repeated-geometry batch).
    memo_dataset: String,
    /// Samples in the memo phase's batch.
    memo_batch: usize,
    /// Wall seconds of the memo phase with the cache off.
    memo_off_s: f64,
    /// Wall seconds of the memo phase with the cache on.
    memo_on_s: f64,
    /// `memo_off_s / memo_on_s`.
    memo_speedup: f64,
    /// Cache hits the memoized run recorded.
    memo_hits: u64,
    /// Cache misses (unique blocks actually simulated).
    memo_misses: u64,
    /// `memo_hits / (memo_hits + memo_misses)`.
    memo_hit_rate: f64,
    /// Repeated identical batches the tuning-cache phase launched.
    tune_batches: usize,
    /// Wall seconds of the tuning-cache phase with the cache off.
    tune_cold_s: f64,
    /// Wall seconds of the tuning-cache phase with the cache on.
    tune_warm_s: f64,
    /// `tune_cold_s / tune_warm_s`.
    tune_speedup: f64,
    /// Tuning-cache hits the recording run observed.
    tuning_cache_hits: u64,
    /// Tuning-cache misses (distinct cache keys actually swept).
    tuning_cache_misses: u64,
    /// `tuning_cache_hits / (tuning_cache_hits + tuning_cache_misses)`.
    tuning_cache_hit_rate: f64,
}

/// Tiles the first `m` rows of the inference split (`m` = largest power of
/// two ≤ min(n, 512)) to `size` samples. A power-of-two tile keeps block
/// windows repeating with a period of at most two blocks for any
/// warp-multiple block size, so the memo cache is guaranteed repeats —
/// unlike `batch_of`'s `i % n` tiling, whose period can exceed the grid.
fn repeated_batch(samples: &SampleMatrix, size: usize) -> SampleMatrix {
    let mut m = 1usize;
    while m * 2 <= samples.n_samples().min(512) {
        m *= 2;
    }
    let idx: Vec<usize> = (0..size).map(|i| i % m).collect();
    samples.select(&idx)
}

/// Times the direct strategy on `batch` with the memo cache forced to
/// `memo`, telemetry disabled (the hot path under test), best of two runs.
fn timed_memo_run(p: &tahoe_bench::Prepared, batch: &SampleMatrix, memo: bool) -> f64 {
    let opts = EngineOptions {
        detail: Detail::Full,
        functional: false,
        ..EngineOptions::tahoe()
    };
    let mut engine = Engine::new(DeviceSpec::tesla_p100(), p.forest.clone(), opts);
    set_sim_memo(Some(memo));
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let _ = engine.infer_with(batch, Some(Strategy::Direct));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    set_sim_memo(None);
    best
}

/// Times `n` repeated identical batches through a fresh engine with the
/// tuning-decision cache forced to `cache`, telemetry disabled, best of two
/// runs. The warm run re-sweeps the tuning ladder once and replays the
/// cached plan thereafter; the cold run pays the sweep on every launch.
fn timed_tune_run(
    p: &tahoe_bench::Prepared,
    batch: &SampleMatrix,
    n: usize,
    cache: bool,
) -> f64 {
    set_tune_cache(Some(cache));
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let mut engine = Engine::new(
            DeviceSpec::tesla_p100(),
            p.forest.clone(),
            EngineOptions {
                functional: false,
                ..EngineOptions::tahoe()
            },
        );
        let t0 = Instant::now();
        for _ in 0..n {
            let _ = engine.infer(batch);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    set_tune_cache(None);
    best
}

fn main() {
    let env = Env::from_args();
    let prepared = prepare_all(env.scale);
    let sweep = |label: &str| {
        let t0 = Instant::now();
        for p in &prepared {
            let _ = strategy_row(&env, p, HIGH_BATCH);
        }
        let secs = t0.elapsed().as_secs_f64();
        println!("[host_perf] {label}: {secs:.2} s");
        secs
    };
    // Untimed warm-up: the first sweep after process start pays one-time
    // costs (page faults, batch materialization) that would otherwise be
    // billed to whichever phase runs first. Each phase then reports the
    // faster of two repetitions to shed one-sided scheduler noise.
    sweep("warm-up (untimed)");
    let best_of_2 = |label: &str| sweep(label).min(sweep(label));
    set_sim_threads(Some(1));
    let sequential_s = best_of_2("sequential (1 worker)");
    set_sim_threads(None);
    let workers = sim_threads(usize::MAX);
    let parallel_s = best_of_2(&format!("parallel ({workers} workers)"));

    // Memo phase: full detail, direct strategy, letter, with the batch tiled
    // so block geometry (and content) provably repeats.
    let memo_dataset = "letter";
    let memo_p = prepare(
        &DatasetSpec::by_name(memo_dataset).expect("known dataset"),
        env.scale,
    );
    let batch = repeated_batch(&memo_p.infer.samples, HIGH_BATCH);
    let memo_off_s = timed_memo_run(&memo_p, &batch, false);
    println!("[host_perf] memo off ({memo_dataset}, full detail): {memo_off_s:.2} s");
    let memo_on_s = timed_memo_run(&memo_p, &batch, true);
    println!("[host_perf] memo on  ({memo_dataset}, full detail): {memo_on_s:.2} s");
    // Untimed recording run: read the hit rate back from the counters.
    let sink = TelemetrySink::recording();
    set_sim_memo(Some(true));
    let mut engine = Engine::with_telemetry(
        DeviceSpec::tesla_p100(),
        memo_p.forest.clone(),
        EngineOptions {
            detail: Detail::Full,
            functional: false,
            ..EngineOptions::tahoe()
        },
        sink.clone(),
    );
    let _ = engine.infer_with(&batch, Some(Strategy::Direct));
    set_sim_memo(None);
    let snap = sink.snapshot();
    let (memo_hits, memo_misses) = (snap.counters["memo_hits"], snap.counters["memo_misses"]);
    if memo_hits == 0 {
        eprintln!(
            "[host_perf] FAIL: repeated-geometry batch ({} samples) reported zero memo hits \
             ({memo_misses} misses) — strategy key material regressed",
            batch.n_samples()
        );
        std::process::exit(1);
    }
    // Tuning-cache phase (DESIGN.md §2.16): repeated identical batches, so
    // every launch after the first must replay the cached tuning sweep.
    let tune_batches = 32;
    let tune_cold_s = timed_tune_run(&memo_p, &batch, tune_batches, false);
    println!("[host_perf] tuning cache off ({tune_batches} repeated batches): {tune_cold_s:.2} s");
    let tune_warm_s = timed_tune_run(&memo_p, &batch, tune_batches, true);
    println!("[host_perf] tuning cache on  ({tune_batches} repeated batches): {tune_warm_s:.2} s");
    // Untimed recording run: read the hit rate back from the counters.
    let sink = TelemetrySink::recording();
    set_tune_cache(Some(true));
    let mut engine = Engine::with_telemetry(
        DeviceSpec::tesla_p100(),
        memo_p.forest.clone(),
        EngineOptions {
            functional: false,
            ..EngineOptions::tahoe()
        },
        sink.clone(),
    );
    for _ in 0..tune_batches {
        let _ = engine.infer(&batch);
    }
    set_tune_cache(None);
    let snap = sink.snapshot();
    let (tuning_cache_hits, tuning_cache_misses) = (
        snap.counters["tuning_cache_hits"],
        snap.counters["tuning_cache_misses"],
    );
    let tuning_cache_hit_rate =
        tuning_cache_hits as f64 / (tuning_cache_hits + tuning_cache_misses).max(1) as f64;
    if tuning_cache_hits == 0 || tuning_cache_hit_rate <= 0.9 {
        eprintln!(
            "[host_perf] FAIL: {tune_batches} repeated batches reported a \
             {:.1}% tuning-cache hit rate ({tuning_cache_hits} hits / \
             {tuning_cache_misses} misses) — cache key material regressed",
            100.0 * tuning_cache_hit_rate
        );
        std::process::exit(1);
    }
    println!(
        "[host_perf] tuning-cache hit rate {:.1}% ({tuning_cache_hits} hits / \
         {tuning_cache_misses} misses), speedup {:.2}x",
        100.0 * tuning_cache_hit_rate,
        if tune_warm_s > 0.0 { tune_cold_s / tune_warm_s } else { 1.0 }
    );

    // Disabled-sink spot check (DESIGN.md §2.14): the timed phases above run
    // with telemetry off and rely on the windowed sampler being a strict
    // no-op — nothing recorded, nothing exported. A regression here would
    // silently tax every simulation in this benchmark.
    let disabled = TelemetrySink::Disabled;
    disabled.ts_add_interval(0, tahoe::telemetry::timeseries::BUSY_NS, 0.0, 5e6, 5e6);
    disabled.ts_gauge(0, tahoe::telemetry::timeseries::QUEUE_DEPTH, 0.0, 3.0);
    disabled.record_latency_window(0.0, 1_000.0);
    disabled.record_slo_window(0.0, true);
    let export = disabled.timeseries();
    if !export.series.is_empty()
        || !export.latency_windows.is_empty()
        || !export.slo_windows.is_empty()
    {
        eprintln!("[host_perf] FAIL: disabled sink recorded time-series samples");
        std::process::exit(1);
    }

    let memo_hit_rate = memo_hits as f64 / (memo_hits + memo_misses) as f64;
    println!(
        "[host_perf] memo hit rate {:.1}% ({memo_hits} hits / {memo_misses} misses), \
         speedup {:.2}x",
        100.0 * memo_hit_rate,
        if memo_on_s > 0.0 { memo_off_s / memo_on_s } else { 1.0 }
    );

    let record = HostSimBench {
        workers,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        sequential_s,
        parallel_s,
        speedup: if parallel_s > 0.0 { sequential_s / parallel_s } else { 1.0 },
        datasets: prepared.len(),
        scale: format!("{:?}", env.scale).to_lowercase(),
        detail: match env.detail {
            Detail::Full => "full".to_string(),
            Detail::Sampled(n) => n.to_string(),
        },
        memo_dataset: memo_dataset.to_string(),
        memo_batch: batch.n_samples(),
        memo_off_s,
        memo_on_s,
        memo_speedup: if memo_on_s > 0.0 { memo_off_s / memo_on_s } else { 1.0 },
        memo_hits,
        memo_misses,
        memo_hit_rate,
        tune_batches,
        tune_cold_s,
        tune_warm_s,
        tune_speedup: if tune_warm_s > 0.0 { tune_cold_s / tune_warm_s } else { 1.0 },
        tuning_cache_hits,
        tuning_cache_misses,
        tuning_cache_hit_rate,
    };
    println!(
        "[host_perf] speedup {:.2}x with {} workers on {} host cores",
        record.speedup, record.workers, record.host_cores
    );
    write_json("BENCH_host_sim", &record);
}
