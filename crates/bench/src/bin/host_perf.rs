//! Host wall-clock benchmark of the parallel simulation pipeline.
//!
//! Times the Fig. 5 strategy sweep (all datasets × four strategies on P100)
//! end-to-end twice — block simulation forced to a single worker, then with
//! the default worker pool — and writes `results/BENCH_host_sim.json` so
//! future performance work has a recorded baseline. Forest training/loading
//! happens before the timed region; the sweep only exercises the simulator
//! hot path this PR parallelized.
//!
//! The speedup is bounded by the host's core count (a 1-core CI box records
//! ≈ 1×); the record includes the worker count so readers can interpret it.

use std::time::Instant;

use serde::Serialize;

use tahoe_bench::experiments::strategies::strategy_row;
use tahoe_bench::experiments::HIGH_BATCH;
use tahoe_bench::report::write_json;
use tahoe_bench::{prepare_all, Env};
use tahoe_gpu_sim::parallel::{set_sim_threads, sim_threads};

/// `BENCH_host_sim.json` record.
#[derive(Serialize)]
struct HostSimBench {
    /// Worker threads the parallel phase used.
    workers: usize,
    /// Host cores reported by the OS.
    host_cores: usize,
    /// Wall seconds of the sweep with 1 simulation worker.
    sequential_s: f64,
    /// Wall seconds of the sweep with the default worker pool.
    parallel_s: f64,
    /// `sequential_s / parallel_s`.
    speedup: f64,
    /// Datasets swept.
    datasets: usize,
    /// Scale the forests were trained at.
    scale: String,
    /// Sampled blocks per simulated kernel.
    detail: String,
}

fn main() {
    let env = Env::from_args();
    let prepared = prepare_all(env.scale);
    let sweep = |label: &str| {
        let t0 = Instant::now();
        for p in &prepared {
            let _ = strategy_row(&env, p, HIGH_BATCH);
        }
        let secs = t0.elapsed().as_secs_f64();
        println!("[host_perf] {label}: {secs:.2} s");
        secs
    };
    // Untimed warm-up: the first sweep after process start pays one-time
    // costs (page faults, batch materialization) that would otherwise be
    // billed to whichever phase runs first. Each phase then reports the
    // faster of two repetitions to shed one-sided scheduler noise.
    sweep("warm-up (untimed)");
    let best_of_2 = |label: &str| sweep(label).min(sweep(label));
    set_sim_threads(Some(1));
    let sequential_s = best_of_2("sequential (1 worker)");
    set_sim_threads(None);
    let workers = sim_threads(usize::MAX);
    let parallel_s = best_of_2(&format!("parallel ({workers} workers)"));
    let record = HostSimBench {
        workers,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        sequential_s,
        parallel_s,
        speedup: if parallel_s > 0.0 { sequential_s / parallel_s } else { 1.0 },
        datasets: prepared.len(),
        scale: format!("{:?}", env.scale).to_lowercase(),
        detail: match env.detail {
            tahoe_gpu_sim::kernel::Detail::Full => "full".to_string(),
            tahoe_gpu_sim::kernel::Detail::Sampled(n) => n.to_string(),
        },
    };
    println!(
        "[host_perf] speedup {:.2}x with {} workers on {} host cores",
        record.speedup, record.workers, record.host_cores
    );
    write_json("BENCH_host_sim", &record);
}
