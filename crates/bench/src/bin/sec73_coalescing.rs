//! Regenerates Sec. 7.3's memory-coalescence quantification.

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::coalescing::run(&env);
    tahoe_bench::experiments::coalescing::report(&result);
}
