//! Regenerates Sec. 7.3's blockwise-reduction removal census.

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::reduction_census::run(&env);
    tahoe_bench::experiments::reduction_census::report(&result);
}
