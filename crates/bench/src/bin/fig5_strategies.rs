//! Regenerates the paper's Fig. 5 (four strategies x 15 datasets on P100).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::strategies::run_fig5(&env);
    tahoe_bench::experiments::strategies::report_fig5(&result);
    env.export_telemetry();
}
