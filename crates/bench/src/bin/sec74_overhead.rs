//! Regenerates Sec. 7.4's overhead analysis.

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::overhead::run(&env);
    tahoe_bench::experiments::overhead::report(&result);
}
