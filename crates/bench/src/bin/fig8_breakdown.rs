//! Regenerates the paper's Fig. 8 (per-technique contribution breakdown).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::breakdown::run(&env);
    tahoe_bench::experiments::breakdown::report(&result);
}
