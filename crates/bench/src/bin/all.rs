//! Runs the full experiment suite: every table and figure of the paper's
//! evaluation, plus the reproduction's ablations.

use tahoe_bench::experiments as exp;

fn main() {
    let env = tahoe_bench::Env::from_args();
    println!("[all] running with {env:?}");

    let motivation = exp::motivation::run(&env);
    exp::motivation::report(&motivation);

    let fig5 = exp::strategies::run_fig5(&env);
    exp::strategies::report_fig5(&fig5);

    let fig6 = exp::strategies::run_fig6(&env);
    exp::strategies::report_fig6(&fig6);

    let overall = exp::overall::run(&env);
    exp::overall::report_fig7(&overall);
    exp::overall::report_table3(&overall);

    let breakdown = exp::breakdown::run(&env);
    exp::breakdown::report(&breakdown);

    let scaling = exp::scaling::run(&env);
    exp::scaling::report(&scaling);

    let coalescing = exp::coalescing::run(&env);
    exp::coalescing::report(&coalescing);

    let census = exp::reduction_census::run(&env);
    exp::reduction_census::report(&census);

    let accuracy = exp::model_accuracy::run(&env);
    exp::model_accuracy::report(&accuracy);

    let overhead = exp::overhead::run(&env);
    exp::overhead::report(&overhead);

    let ablations = exp::ablations::run(&env);
    exp::ablations::report(&ablations);

    let format = exp::format::run(&env);
    exp::format::report(&format);

    env.export_telemetry();
    println!("\n[all] done — JSON records in results/");
}
