//! Builds `results/SUMMARY.md` from the JSON records the experiment binaries
//! write — a machine-generated digest of every reproduced table and figure,
//! ready to paste into `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p tahoe-bench --bin all        # produce results/*.json
//! cargo run --release -p tahoe-bench --bin report_md  # digest them
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde_json::Value;

fn main() {
    let dir = std::env::var("TAHOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = Path::new(&dir);
    let mut out = String::from("# Results summary (machine-generated)\n");
    let mut missing = Vec::new();
    let mut section = |name: &str, f: &dyn Fn(&Value, &mut String)| {
        let path = dir.join(format!("{name}.json"));
        match fs::read_to_string(&path)
            .ok()
            .and_then(|t| serde_json::from_str::<Value>(&t).ok())
        {
            Some(v) => f(&v, &mut out),
            None => missing.push(name.to_string()),
        }
    };

    section("fig2_motivation", &|v, out| {
        let _ = writeln!(out, "\n## Fig. 2 — motivation");
        let _ = writeln!(
            out,
            "- overall forest-read efficiency: {:.1}% (paper 27.2%); deepest levels {:.1}% (paper 13.7%)",
            100.0 * v["overall_efficiency"].as_f64().unwrap_or(0.0),
            100.0 * v["deep_efficiency"].as_f64().unwrap_or(0.0),
        );
        if let Some(levels) = v["levels"].as_array() {
            if let (Some(first), Some(last)) = (levels.get(1), levels.last()) {
                let _ = writeln!(
                    out,
                    "- adjacent-thread distance: {:.0} B (level 1) -> {:.0} B (deepest)",
                    first["distance"].as_f64().unwrap_or(0.0),
                    last["distance"].as_f64().unwrap_or(0.0),
                );
            }
        }
        if let Some(red) = v["reduction"].as_array() {
            let shares: Vec<String> = red
                .iter()
                .map(|r| {
                    format!(
                        "{}:{:.0}%",
                        r["n_trees"],
                        100.0 * r["reduction_fraction"].as_f64().unwrap_or(0.0)
                    )
                })
                .collect();
            let _ = writeln!(out, "- reduction share by trees: {} (paper 35-72%)", shares.join(" "));
        }
        let _ = writeln!(
            out,
            "- per-thread CV under FIL: {:.1}% (paper 49.1%)",
            100.0 * v["thread_cv"].as_f64().unwrap_or(0.0)
        );
    });

    section("fig5_strategies", &|v, out| {
        let _ = writeln!(out, "\n## Fig. 5 — strategy winners (P100, 100K)");
        if let Some(rows) = v["rows"].as_array() {
            for r in rows {
                let _ = writeln!(
                    out,
                    "- {}: {}",
                    r["dataset"].as_str().unwrap_or("?"),
                    r["winner"].as_str().unwrap_or("?")
                );
            }
        }
    });

    section("fig7_overall", &|v, out| {
        let _ = writeln!(out, "\n## Fig. 7 — Tahoe vs FIL speedups");
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        for device in ["Tesla K80", "Tesla P100", "Tesla V100"] {
            for high in [true, false] {
                let s: Vec<f64> = rows
                    .iter()
                    .filter(|r| {
                        r["device"].as_str() == Some(device)
                            && r["high_parallelism"].as_bool() == Some(high)
                    })
                    .filter_map(|r| r["speedup"].as_f64())
                    .collect();
                if s.is_empty() {
                    continue;
                }
                let geomean =
                    (s.iter().map(|x| x.ln()).sum::<f64>() / s.len() as f64).exp();
                let max = s.iter().copied().fold(0.0f64, f64::max);
                let min = s.iter().copied().fold(f64::INFINITY, f64::min);
                let _ = writeln!(
                    out,
                    "- {device} {}: geomean {geomean:.2}x, max {max:.2}x, min {min:.2}x",
                    if high { "high" } else { "low" }
                );
            }
        }
    });

    section("table3_imbalance", &|v, out| {
        let _ = writeln!(out, "\n## Table 3 — A.C.V. (FIL -> Tahoe)");
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        for device in ["Tesla K80", "Tesla P100", "Tesla V100"] {
            for high in [true, false] {
                let s: Vec<&Value> = rows
                    .iter()
                    .filter(|r| {
                        r["device"].as_str() == Some(device)
                            && r["high_parallelism"].as_bool() == Some(high)
                    })
                    .collect();
                if s.is_empty() {
                    continue;
                }
                let mean = |key: &str| {
                    s.iter().filter_map(|r| r[key].as_f64()).sum::<f64>() / s.len() as f64
                };
                let _ = writeln!(
                    out,
                    "- {device} {}: {:.1}% -> {:.1}%",
                    if high { "high" } else { "low" },
                    100.0 * mean("fil_acv"),
                    100.0 * mean("tahoe_acv"),
                );
            }
        }
    });

    section("sec73_reduction", &|v, out| {
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        let count = |high: bool| {
            let s: Vec<&Value> = rows
                .iter()
                .filter(|r| r["high_parallelism"].as_bool() == Some(high))
                .collect();
            let removed = s
                .iter()
                .filter(|r| r["strategy"].as_str() != Some("SharedData"))
                .count();
            (removed, s.len())
        };
        let (rh, th) = count(true);
        let (rl, tl) = count(false);
        let _ = writeln!(out, "\n## §7.3 — reduction removal census");
        let _ = writeln!(out, "- high: {rh}/{th} (paper 27/45); low: {rl}/{tl} (paper 13/45)");
    });

    section("sec73_model_accuracy", &|v, out| {
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        let correct = rows
            .iter()
            .filter(|r| r["predicted_best"] == r["actual_best"])
            .count();
        let wrong: Vec<f64> = rows
            .iter()
            .filter(|r| r["predicted_best"] != r["actual_best"])
            .filter_map(|r| {
                Some(r["chosen_ns"].as_f64()? / r["optimal_ns"].as_f64()?)
            })
            .collect();
        let loss = if wrong.is_empty() {
            1.0
        } else {
            (wrong.iter().map(|x| x.ln()).sum::<f64>() / wrong.len() as f64).exp()
        };
        let _ = writeln!(out, "\n## §7.3 — model accuracy");
        let _ = writeln!(
            out,
            "- correct top choice: {correct}/{} (paper 87/90); geomean loss when wrong {loss:.3}x",
            rows.len()
        );
    });

    section("sec74_overhead", &|v, out| {
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        let savings: Vec<f64> = rows
            .iter()
            .filter_map(|r| {
                Some(1.0 - r["adaptive_bytes"].as_f64()? / r["traditional_bytes"].as_f64()?)
            })
            .collect();
        let best_ratio = rows
            .iter()
            .filter_map(|r| {
                Some(r["pairwise_ns"].as_f64()? / r["lsh_total_ns"].as_f64()?.max(1.0))
            })
            .fold(0.0f64, f64::max);
        let _ = writeln!(out, "\n## §7.4 — overheads");
        let _ = writeln!(
            out,
            "- storage saving: up to {:.1}% (paper up to 23.6%); best brute-force/LSH ratio {best_ratio:.1}x (paper >37x at 3000 trees)",
            100.0 * savings.iter().copied().fold(0.0f64, f64::max)
        );
    });

    section("ablations", &|v, out| {
        let _ = writeln!(out, "\n## Ablations");
        for (key, label) in [
            ("weighted_order_score", "LSH ordering score (weighted)"),
            ("unweighted_order_score", "LSH ordering score (unweighted)"),
            ("exact_order_score", "exact pairwise ordering score"),
            ("training_prob_speedup", "speedup w/ training probabilities"),
            ("oracle_prob_speedup", "speedup w/ oracle probabilities"),
            ("sampling_error", "sampled-vs-full timing error"),
            ("infinite_sm_speedup", "speedup on infinite-SM device"),
            ("varlen_speedup", "variable-length index speedup"),
        ] {
            if let Some(x) = v[key].as_f64() {
                let _ = writeln!(out, "- {label}: {x:.3}");
            }
        }
    });

    section("BENCH_format", &|v, out| {
        let _ = writeln!(out, "\n## Node encoding — classic vs packed");
        let _ = writeln!(
            out,
            "| dataset | mode | B/node | image (MiB) | staged txns | feasible batch |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        for r in &rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} -> {} | {:.2} -> {:.2} | {} -> {} | {} -> {} |",
                r["dataset"].as_str().unwrap_or("?"),
                r["mode"].as_str().unwrap_or("?"),
                r["classic_node_bytes"],
                r["packed_node_bytes"],
                r["classic_image_bytes"].as_f64().unwrap_or(0.0) / (1024.0 * 1024.0),
                r["packed_image_bytes"].as_f64().unwrap_or(0.0) / (1024.0 * 1024.0),
                r["classic_gmem_transactions"],
                r["packed_gmem_transactions"],
                r["classic_feasible_batch"],
                r["packed_feasible_batch"],
            );
        }
        let best_sparse = v["sparse_rows"]
            .as_array()
            .into_iter()
            .flatten()
            .filter_map(|r| {
                Some((r["dataset"].as_str()?, r["node_bytes_ratio"].as_f64()?))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((name, ratio)) = best_sparse {
            let _ = writeln!(
                out,
                "- best forced-sparse bytes-per-node saving: {ratio:.2}x ({name})"
            );
        }
    });

    section("fig9_scaling", &|v, out| {
        let _ = writeln!(out, "\n## Fig. 9 — multi-GPU scaling (V100s)");
        let rows = v["rows"].as_array().cloned().unwrap_or_default();
        let mut max_weak = 0.0f64;
        for r in &rows {
            let strong = r["strong"].as_array().cloned().unwrap_or_default();
            // `speedup` is null for counts with empty partitions (more
            // devices than samples), so those never win `best`.
            let best = strong
                .iter()
                .filter_map(|s| Some((s["n_gpus"].as_u64()?, s["speedup"].as_f64()?)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let devices: usize = strong
                .iter()
                .filter_map(|s| s["per_device"].as_array().map(Vec::len))
                .sum();
            let wv = r["weak_variance"].as_f64().unwrap_or(0.0);
            max_weak = max_weak.max(wv);
            if let Some((n, s)) = best {
                let _ = writeln!(
                    out,
                    "- {}: best strong speedup {s:.2}x at {n} GPUs ({devices} partitions simulated); weak variance {:.2}%",
                    r["dataset"].as_str().unwrap_or("?"),
                    100.0 * wv,
                );
            }
        }
        let _ = writeln!(out, "- max weak-scaling variance: {:.2}% (paper <5%)", 100.0 * max_weak);
    });

    // Telemetry is opt-in (`--trace`/`--metrics`), so the snapshot is digested
    // only when present rather than reported as missing.
    if let Some(v) = fs::read_to_string(dir.join("telemetry_metrics.json"))
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        let c = |name: &str| v["counters"][name].as_u64().unwrap_or(0);
        let _ = writeln!(out, "\n## Telemetry counters");
        let _ = writeln!(
            out,
            "- kernel launches: {} ({} blocks simulated); spans recorded: {}",
            c("kernel_launches"),
            c("simulated_blocks"),
            v["span_count"].as_u64().unwrap_or(0),
        );
        let fetched = c("gmem_fetched_bytes");
        if fetched > 0 {
            let _ = writeln!(
                out,
                "- global-load efficiency: {:.1}% ({} requested / {} fetched bytes, {} uncoalesced)",
                100.0 * c("gmem_requested_bytes") as f64 / fetched as f64,
                c("gmem_requested_bytes"),
                fetched,
                c("gmem_uncoalesced_bytes"),
            );
        }
        let _ = writeln!(
            out,
            "- reductions: {} block-level, {} global",
            c("block_reductions"),
            c("global_reductions"),
        );
        let acv_total = c("acv_blocks_counted") + c("acv_blocks_skipped");
        if acv_total > 0 {
            let _ = writeln!(
                out,
                "- A.C.V. coverage: {}/{acv_total} sampled blocks counted ({} skipped with <2 busy threads)",
                c("acv_blocks_counted"),
                c("acv_blocks_skipped"),
            );
        }
        let _ = writeln!(
            out,
            "- allocator: {} allocs / {} frees, high water {:.1} MiB, {} OOM retries",
            c("device_allocs"),
            c("device_frees"),
            c("alloc_high_water_bytes") as f64 / (1024.0 * 1024.0),
            c("device_oom_events"),
        );
    }

    // Kernel profiles are opt-in too (`--profile` or any telemetry flag).
    if let Some(v) = fs::read_to_string(dir.join("kernel_profiles.json"))
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        if let Some(section) = kernel_profiles_section(&v) {
            out.push_str(&section);
        }
    }

    // Windowed time-series samples (`--timeseries` or any telemetry flag).
    if let Some(v) = fs::read_to_string(dir.join("timeseries.json"))
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        if let Some(section) = serving_over_time_section(&v) {
            out.push_str(&section);
        }
    }

    // Flight-recorder export (`--decisions` or any telemetry flag).
    if let Some(v) = fs::read_to_string(dir.join("decision_audit.json"))
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        if let Some(section) = worst_p99_attribution_section(&v) {
            out.push_str(&section);
        }
    }

    if !missing.is_empty() {
        let _ = writeln!(out, "\n(missing records: {})", missing.join(", "));
    }
    let path = dir.join("SUMMARY.md");
    fs::write(&path, &out).expect("write summary");
    println!("wrote {}", path.display());
    print!("{out}");
}

/// Digests `kernel_profiles.json` (a serialized `ProfilesExport`) into the
/// "Kernel profiles" section: one table row per strategy label with mean
/// occupancy, coalescing efficiency, wall-time shares, and mean absolute
/// model-vs-simulator error. Returns `None` when no launches were profiled.
fn kernel_profiles_section(v: &Value) -> Option<String> {
    let kernels = v["kernels"].as_array()?;
    if kernels.is_empty() {
        return None;
    }
    let mut labels: Vec<&str> = Vec::new();
    for k in kernels {
        let label = k["label"].as_str().unwrap_or("?");
        if !labels.contains(&label) {
            labels.push(label);
        }
    }
    let drift = v["drift"].as_array().cloned().unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "\n## Kernel profiles");
    let _ = writeln!(
        out,
        "| strategy | launches | occupancy | coalescing | traversal | staging | reduction | bw stall | memo hits | model err |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for label in labels {
        let ks: Vec<&Value> = kernels
            .iter()
            .filter(|k| k["label"].as_str() == Some(label))
            .collect();
        let n = ks.len() as f64;
        let mean = |key: &str| {
            ks.iter().filter_map(|k| k[key].as_f64()).sum::<f64>() / n
        };
        let part = |key: &str| {
            ks.iter()
                .filter_map(|k| k["breakdown"][key].as_f64())
                .sum::<f64>()
        };
        let total: f64 = ks.iter().filter_map(|k| k["total_ns"].as_f64()).sum();
        let share = |ns: f64| 100.0 * ns / total.max(f64::MIN_POSITIVE);
        let errors: Vec<f64> = drift
            .iter()
            .filter(|d| d["strategy"].as_str() == Some(label))
            .filter_map(|d| d["relative_error"].as_f64())
            .map(f64::abs)
            .collect();
        let model_err = if errors.is_empty() {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * errors.iter().sum::<f64>() / errors.len() as f64)
        };
        let sum_u64 = |key: &str| -> u64 {
            ks.iter().filter_map(|k| k[key].as_u64()).sum()
        };
        let (hits, misses) = (sum_u64("memo_hits"), sum_u64("memo_misses"));
        let memo = if hits + misses == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
        };
        let _ = writeln!(
            out,
            "| {label} | {} | {:.0}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {memo} | {model_err} |",
            ks.len(),
            100.0 * mean("achieved_occupancy"),
            100.0 * mean("gmem_coalescing_efficiency"),
            share(part("traversal_ns")),
            share(part("staging_ns")),
            share(part("block_reduction_ns") + part("global_reduction_ns")),
            share(part("bandwidth_stall_ns")),
        );
    }
    let durations = &v["kernel_durations"];
    let count = durations["count"].as_u64().unwrap_or(0);
    if count > 0 {
        let _ = writeln!(
            out,
            "- kernel durations: {count} launches, mean {:.1} us, max {:.1} us",
            durations["sum_ns"].as_u64().unwrap_or(0) as f64 / count as f64 / 1e3,
            durations["max_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
        );
    }
    let serving = &v["serving_latencies"];
    let count = serving["count"].as_u64().unwrap_or(0);
    if count > 0 {
        let _ = writeln!(
            out,
            "- serving latencies: {count} requests, mean {:.1} us, max {:.1} us",
            serving["sum_ns"].as_u64().unwrap_or(0) as f64 / count as f64 / 1e3,
            serving["max_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
        );
    }
    Some(out)
}

/// Digests `timeseries.json` (a serialized `TimeSeriesExport`) into the
/// "Serving over time" section: peak queue depth, per-device busy-fraction
/// utilization (mean and peak window), the worst windowed p99 latency, and
/// windowed SLO attainment. Returns `None` when no series were sampled.
fn serving_over_time_section(v: &Value) -> Option<String> {
    let window_ns = v["window_ns"].as_f64().filter(|&w| w > 0.0)?;
    let series = v["series"].as_array()?;
    if series.is_empty() {
        return None;
    }
    let points_of = |s: &Value| s["points"].as_array().cloned().unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "\n## Serving over time ({:.3} ms windows)", window_ns / 1e6);

    let queue_peak = series
        .iter()
        .filter(|s| s["name"].as_str() == Some("queue_depth"))
        .flat_map(|s| points_of(s).into_iter().filter_map(|p| p["value"].as_f64()))
        .fold(f64::NEG_INFINITY, f64::max);
    if queue_peak.is_finite() {
        let _ = writeln!(out, "- peak queue depth: {queue_peak:.0} requests");
    }

    for s in series.iter().filter(|s| s["name"].as_str() == Some("busy_ns")) {
        let busy: Vec<f64> = points_of(s)
            .into_iter()
            .filter_map(|p| p["value"].as_f64())
            .collect();
        if busy.is_empty() {
            continue;
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64 / window_ns;
        let peak = busy.iter().copied().fold(0.0f64, f64::max) / window_ns;
        let _ = writeln!(
            out,
            "- device {} utilization: mean {:.1}%, peak window {:.1}% over {} windows",
            s["device"],
            100.0 * mean,
            100.0 * peak,
            busy.len(),
        );
    }

    let latency = v["latency_windows"].as_array().cloned().unwrap_or_default();
    let worst = latency
        .iter()
        .filter_map(|w| Some((w["p99_ns"].as_f64()?, w["window"].as_u64()?)))
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    if let Some((p99, window)) = worst {
        let requests: u64 = latency.iter().filter_map(|w| w["count"].as_u64()).sum();
        let _ = writeln!(
            out,
            "- windowed latency: worst p99 <= {:.1} us (window {window}); {requests} requests over {} windows",
            p99 / 1e3,
            latency.len(),
        );
    }

    let slo = v["slo_windows"].as_array().cloned().unwrap_or_default();
    let (total, met) = slo.iter().fold((0u64, 0u64), |(t, m), w| {
        (
            t + w["total"].as_u64().unwrap_or(0),
            m + w["met"].as_u64().unwrap_or(0),
        )
    });
    if total > 0 {
        let floor = slo
            .iter()
            .filter_map(|w| w["attainment"].as_f64())
            .fold(f64::INFINITY, f64::min);
        let _ = writeln!(
            out,
            "- SLO attainment: {:.2}% overall, worst window {:.2}%",
            100.0 * met as f64 / total as f64,
            100.0 * floor,
        );
    }
    Some(out)
}

/// Digests `decision_audit.json` (a serialized `DecisionsExport`) into the
/// "Worst-p99 request attribution" section: where the slowest 1% of serving
/// requests spent their critical path (batch formation vs queueing vs kernel
/// vs reduction), plus a tuning-drift summary over the recorded decisions.
/// Returns `None` when no request paths were recorded.
fn worst_p99_attribution_section(v: &Value) -> Option<String> {
    let requests = v["requests"].as_array()?;
    let mut rows: Vec<(f64, f64, f64, f64, f64)> = requests
        .iter()
        .filter_map(|r| {
            Some((
                r["total_ns"].as_f64()?,
                r["form_ns"].as_f64()?,
                r["queue_ns"].as_f64()?,
                r["execute_ns"].as_f64()?,
                r["reduction_ns"].as_f64()?,
            ))
        })
        .collect();
    if rows.is_empty() {
        return None;
    }
    // `total_cmp`: a NaN latency must not scramble the sort (NaNs order last
    // in descending order rather than poisoning comparisons).
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let slow = &rows[..rows.len().div_ceil(100)];
    let total: f64 = slow.iter().map(|r| r.0).sum();
    let sum = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| slow.iter().map(f).sum::<f64>();
    let share = |ns: f64| 100.0 * ns / total.max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let _ = writeln!(out, "\n## Worst-p99 request attribution");
    let _ = writeln!(
        out,
        "- slowest 1% of requests: {}/{}, threshold >= {:.1} us, mean total {:.1} us",
        slow.len(),
        rows.len(),
        slow.last().map_or(0.0, |r| r.0) / 1e3,
        total / slow.len() as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "- breakdown: form {:.1}%, queue {:.1}%, kernel {:.1}%, reduction {:.1}%",
        share(sum(|r| r.1)),
        share(sum(|r| r.2)),
        share(sum(|r| r.3 - r.4)),
        share(sum(|r| r.4)),
    );
    let drift: Vec<f64> = v["decisions"]
        .as_array()
        .into_iter()
        .flatten()
        .filter_map(|d| d["relative_error"].as_f64())
        .map(f64::abs)
        .collect();
    if !drift.is_empty() {
        let _ = writeln!(
            out,
            "- tuning decisions: {} recorded, mean |drift| {:.1}%, max |drift| {:.1}%",
            drift.len(),
            100.0 * drift.iter().sum::<f64>() / drift.len() as f64,
            100.0 * drift.iter().copied().fold(0.0f64, f64::max),
        );
    }
    // Tuning-cache and calibration digests (DESIGN.md §2.16). Both are
    // guarded on the new fields actually being present, so exports written
    // before the flight recorder carried them simply omit the lines.
    let decisions: Vec<&Value> = v["decisions"].as_array().into_iter().flatten().collect();
    let cached: Vec<bool> = decisions
        .iter()
        .filter_map(|d| d["cache_hit"].as_bool())
        .collect();
    if !cached.is_empty() {
        let hits = cached.iter().filter(|h| **h).count();
        let _ = writeln!(
            out,
            "- tuning cache: {}/{} decisions served from cache ({:.1}% hit rate)",
            hits,
            cached.len(),
            100.0 * hits as f64 / cached.len() as f64,
        );
    }
    let abs_err_where = |pred: &dyn Fn(u64) -> bool| -> Vec<f64> {
        decisions
            .iter()
            .filter(|d| d["calibration_generation"].as_u64().is_some_and(pred))
            .filter_map(|d| d["relative_error"].as_f64())
            .map(f64::abs)
            .collect()
    };
    let raw = abs_err_where(&|g| g == 0);
    let calibrated = abs_err_where(&|g| g > 0);
    if !raw.is_empty() && !calibrated.is_empty() {
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let _ = writeln!(
            out,
            "- calibration: mean |drift| {:.2}% uncalibrated ({} gen-0 decisions) -> {:.2}% calibrated ({} decisions)",
            100.0 * mean(&raw),
            raw.len(),
            100.0 * mean(&calibrated),
            calibrated.len(),
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_groups_by_strategy_and_joins_drift() {
        let v: Value = serde_json::from_str(
            r#"{
              "kernels": [
                {"label": "direct", "total_ns": 100.0, "achieved_occupancy": 0.5,
                 "gmem_coalescing_efficiency": 0.25,
                 "memo_hits": 3, "memo_misses": 1,
                 "breakdown": {"traversal_ns": 80.0, "staging_ns": 0.0,
                               "block_reduction_ns": 0.0, "global_reduction_ns": 20.0,
                               "bandwidth_stall_ns": 0.0}},
                {"label": "direct", "total_ns": 100.0, "achieved_occupancy": 1.0,
                 "gmem_coalescing_efficiency": 0.75,
                 "memo_hits": 0, "memo_misses": 0,
                 "breakdown": {"traversal_ns": 100.0, "staging_ns": 0.0,
                               "block_reduction_ns": 0.0, "global_reduction_ns": 0.0,
                               "bandwidth_stall_ns": 0.0}},
                {"label": "shared data", "total_ns": 50.0, "achieved_occupancy": 1.0,
                 "gmem_coalescing_efficiency": 1.0,
                 "breakdown": {"traversal_ns": 50.0, "staging_ns": 0.0,
                               "block_reduction_ns": 0.0, "global_reduction_ns": 0.0,
                               "bandwidth_stall_ns": 0.0}}
              ],
              "kernel_durations": {"count": 3, "sum_ns": 250, "min_ns": 50,
                                   "max_ns": 100, "buckets": []},
              "serving_latencies": {"count": 0, "sum_ns": 0, "min_ns": 0,
                                    "max_ns": 0, "buckets": []},
              "drift": [
                {"strategy": "direct", "n_samples": 8, "predicted_ns": 110.0,
                 "simulated_ns": 100.0, "relative_error": 0.1},
                {"strategy": "direct", "n_samples": 8, "predicted_ns": 70.0,
                 "simulated_ns": 100.0, "relative_error": -0.3}
              ]
            }"#,
        )
        .expect("fixture parses");
        let section = kernel_profiles_section(&v).expect("non-empty digest");
        // direct: mean occupancy 75%, coalescing 50%, traversal 90%,
        // reduction 10%, memo 3 hits / 1 miss = 75%, mean |err| 20%; shared
        // data has no memo activity and no drift records.
        assert!(section.contains("## Kernel profiles"), "{section}");
        assert!(
            section
                .contains("| direct | 2 | 75% | 50.0% | 90.0% | 0.0% | 10.0% | 0.0% | 75.0% | 20.0% |"),
            "{section}"
        );
        assert!(
            section
                .contains("| shared data | 1 | 100% | 100.0% | 100.0% | 0.0% | 0.0% | 0.0% | - | - |"),
            "{section}"
        );
        assert!(section.contains("kernel durations: 3 launches"), "{section}");
        assert!(!section.contains("serving latencies:"), "{section}");
    }

    #[test]
    fn digest_is_none_without_kernels() {
        let v: Value = serde_json::from_str(r#"{"kernels": []}"#).expect("parses");
        assert!(kernel_profiles_section(&v).is_none());
        let v: Value = serde_json::from_str(r"{}").expect("parses");
        assert!(kernel_profiles_section(&v).is_none());
    }

    #[test]
    fn serving_over_time_digests_queue_utilization_and_slo() {
        let v: Value = serde_json::from_str(
            r#"{
              "window_ns": 1000000,
              "series": [
                {"device": 0, "name": "busy_ns", "kind": "sum", "points": [
                  {"window": 0, "start_ns": 0, "value": 250000.0},
                  {"window": 1, "start_ns": 1000000, "value": 750000.0}]},
                {"device": 0, "name": "queue_depth", "kind": "gauge", "points": [
                  {"window": 0, "start_ns": 0, "value": 3.0},
                  {"window": 1, "start_ns": 1000000, "value": 7.0}]}
              ],
              "latency_windows": [
                {"window": 0, "start_ns": 0, "count": 10, "mean_ns": 1000.0,
                 "p50_ns": 1024, "p95_ns": 2048, "p99_ns": 2048, "max_ns": 2000.0},
                {"window": 1, "start_ns": 1000000, "count": 30, "mean_ns": 2000.0,
                 "p50_ns": 2048, "p95_ns": 4096, "p99_ns": 8192, "max_ns": 8000.0}
              ],
              "slo_windows": [
                {"window": 0, "start_ns": 0, "total": 10, "met": 10, "attainment": 1.0},
                {"window": 1, "start_ns": 1000000, "total": 30, "met": 15, "attainment": 0.5}
              ]
            }"#,
        )
        .expect("fixture parses");
        let section = serving_over_time_section(&v).expect("non-empty digest");
        // busy: (0.25 + 0.75)/2 = 50% mean, 75% peak; queue peak 7;
        // worst p99 is window 1; SLO 25/40 = 62.5% overall, floor 50%.
        assert!(section.contains("## Serving over time (1.000 ms windows)"), "{section}");
        assert!(section.contains("peak queue depth: 7 requests"), "{section}");
        assert!(
            section.contains("device 0 utilization: mean 50.0%, peak window 75.0% over 2 windows"),
            "{section}"
        );
        assert!(
            section.contains("worst p99 <= 8.2 us (window 1); 40 requests over 2 windows"),
            "{section}"
        );
        assert!(
            section.contains("SLO attainment: 62.50% overall, worst window 50.00%"),
            "{section}"
        );
    }

    #[test]
    fn worst_p99_attribution_breaks_down_the_slowest_requests() {
        let v: Value = serde_json::from_str(
            r#"{
              "decisions": [
                {"device": 0, "batch": 0, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 110.0, "simulated_ns": 100.0,
                 "relative_error": 0.1, "candidates": []},
                {"device": 0, "batch": 1, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 80.0, "simulated_ns": 100.0,
                 "relative_error": -0.2, "candidates": []}
              ],
              "requests": [
                {"request": 0, "batch": 0, "device": 0, "arrival_ns": 0.0,
                 "form_ns": 10000.0, "queue_ns": 10000.0, "execute_ns": 40000.0,
                 "reduction_ns": 5000.0, "total_ns": 60000.0},
                {"request": 1, "batch": 1, "device": 0, "arrival_ns": 50.0,
                 "form_ns": 20000.0, "queue_ns": 30000.0, "execute_ns": 50000.0,
                 "reduction_ns": 10000.0, "total_ns": 100000.0},
                {"request": 2, "batch": 1, "device": 0, "arrival_ns": 100.0,
                 "form_ns": 10000.0, "queue_ns": 20000.0, "execute_ns": 50000.0,
                 "reduction_ns": 10000.0, "total_ns": 80000.0}
              ]
            }"#,
        )
        .expect("fixture parses");
        let section = worst_p99_attribution_section(&v).expect("non-empty digest");
        // ceil(3/100) = 1 slowest request: total 100 us with form 20, queue
        // 30, execute 50 (of which reduction 10 -> kernel 40); drift |0.1|
        // and |-0.2| -> mean 15%, max 20%.
        assert!(section.contains("## Worst-p99 request attribution"), "{section}");
        assert!(
            section.contains(
                "slowest 1% of requests: 1/3, threshold >= 100.0 us, mean total 100.0 us"
            ),
            "{section}"
        );
        assert!(
            section.contains("breakdown: form 20.0%, queue 30.0%, kernel 40.0%, reduction 10.0%"),
            "{section}"
        );
        assert!(
            section.contains("tuning decisions: 2 recorded, mean |drift| 15.0%, max |drift| 20.0%"),
            "{section}"
        );
        // Exports written before the flight recorder carried cache and
        // calibration fields omit those digest lines entirely.
        assert!(!section.contains("tuning cache:"), "{section}");
        assert!(!section.contains("calibration:"), "{section}");
    }

    #[test]
    fn worst_p99_attribution_digests_cache_and_calibration() {
        let v: Value = serde_json::from_str(
            r#"{
              "decisions": [
                {"device": 0, "batch": 0, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 110.0, "simulated_ns": 100.0,
                 "relative_error": 0.1, "calibration_generation": 0,
                 "cache_hit": false, "candidates": []},
                {"device": 0, "batch": 1, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 80.0, "simulated_ns": 100.0,
                 "relative_error": -0.2, "calibration_generation": 0,
                 "cache_hit": true, "candidates": []},
                {"device": 0, "batch": 2, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 99.0, "simulated_ns": 100.0,
                 "relative_error": -0.01, "calibration_generation": 1,
                 "cache_hit": true, "candidates": []},
                {"device": 0, "batch": 3, "n_samples": 32, "forced": false,
                 "chosen_strategy": "direct", "chosen_block_threads": 128,
                 "predicted_ns": 103.0, "simulated_ns": 100.0,
                 "relative_error": 0.03, "calibration_generation": 1,
                 "cache_hit": true, "candidates": []}
              ],
              "requests": [
                {"request": 0, "batch": 0, "device": 0, "arrival_ns": 0.0,
                 "form_ns": 10000.0, "queue_ns": 10000.0, "execute_ns": 40000.0,
                 "reduction_ns": 5000.0, "total_ns": 60000.0}
              ]
            }"#,
        )
        .expect("fixture parses");
        let section = worst_p99_attribution_section(&v).expect("non-empty digest");
        // 3 of 4 decisions hit the cache; gen-0 mean |drift| = (10+20)/2 =
        // 15%, gen-1 mean = (1+3)/2 = 2%.
        assert!(
            section.contains("tuning cache: 3/4 decisions served from cache (75.0% hit rate)"),
            "{section}"
        );
        assert!(
            section.contains(
                "calibration: mean |drift| 15.00% uncalibrated (2 gen-0 decisions) -> 2.00% calibrated (2 decisions)"
            ),
            "{section}"
        );
    }

    #[test]
    fn worst_p99_attribution_is_none_without_requests() {
        let v: Value =
            serde_json::from_str(r#"{"decisions": [], "requests": []}"#).expect("parses");
        assert!(worst_p99_attribution_section(&v).is_none());
        let v: Value = serde_json::from_str(r"{}").expect("parses");
        assert!(worst_p99_attribution_section(&v).is_none());
    }

    #[test]
    fn serving_over_time_is_none_without_series() {
        let v: Value =
            serde_json::from_str(r#"{"window_ns": 1000000, "series": []}"#).expect("parses");
        assert!(serving_over_time_section(&v).is_none());
        let v: Value = serde_json::from_str(r"{}").expect("parses");
        assert!(serving_over_time_section(&v).is_none());
    }
}
