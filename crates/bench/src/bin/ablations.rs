//! Runs the reproduction's ablation studies (DESIGN.md Sec. 4).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::ablations::run(&env);
    tahoe_bench::experiments::ablations::report(&result);
}
