//! Diffs two `results/` snapshots and flags metric regressions.
//!
//! ```text
//! cargo run --release -p tahoe-bench --bin bench_diff -- \
//!     <baseline_dir> <candidate_dir> [--threshold 0.10] [--warn-only]
//! ```
//!
//! Every `*.json` record in each directory is flattened to its numeric
//! leaves, keyed `file.json:dotted.path` (array elements by index). A metric
//! present in both snapshots whose relative change exceeds the threshold is
//! reported as drift; keys present on only one side are each listed
//! explicitly as warnings but never fail the run (experiments come and go
//! between snapshots). Exit status is 1 only when drift was found and
//! `--warn-only` was not given, so the diff can gate CI while staying
//! advisory during local iteration.
//!
//! Direction is deliberately ignored: the harness cannot know whether a
//! given counter is better high or low, so any move beyond the threshold is
//! surfaced and a human decides. Simulated metrics are deterministic — the
//! expected diff between two runs of the same code is *empty*, which keeps
//! even a tight threshold quiet.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use serde_json::Value;

const USAGE: &str = "usage: bench_diff <baseline_dir> <candidate_dir> \
[--threshold <frac>] [--warn-only] [--top <n>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_dir(Path::new(&opts.baseline)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let candidate = match load_dir(Path::new(&opts.candidate)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: candidate: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff(&baseline, &candidate, opts.threshold);
    print!("{}", report.render(opts.top));
    if !report.regressions.is_empty() && !opts.warn_only {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct Options {
    baseline: String,
    candidate: String,
    threshold: f64,
    warn_only: bool,
    top: usize,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut dirs: Vec<String> = Vec::new();
        let mut threshold: f64 = 0.10;
        let mut warn_only = false;
        let mut top = 20;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threshold" => {
                    let v = it.next().ok_or("missing value for --threshold")?;
                    threshold = v
                        .parse()
                        .map_err(|_| format!("bad number '{v}' for --threshold"))?;
                    if !(threshold.is_finite() && threshold >= 0.0) {
                        return Err(format!("--threshold must be finite and >= 0, got {v}"));
                    }
                }
                "--top" => {
                    let v = it.next().ok_or("missing value for --top")?;
                    top = v.parse().map_err(|_| format!("bad number '{v}' for --top"))?;
                }
                "--warn-only" => warn_only = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag '{other}'"));
                }
                dir => dirs.push(dir.to_string()),
            }
        }
        if dirs.len() != 2 {
            return Err(format!("expected 2 directories, got {}", dirs.len()));
        }
        let candidate = dirs.pop().expect("checked len");
        let baseline = dirs.pop().expect("checked len");
        Ok(Options { baseline, candidate, threshold, warn_only, top })
    }
}

/// Loads every `*.json` file in `dir` and flattens its numeric leaves into
/// `file.json:dotted.path` keys.
fn load_dir(dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    let mut out = BTreeMap::new();
    for path in files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        flatten(&format!("{name}:"), &value, &mut out);
    }
    if out.is_empty() {
        return Err(format!("no numeric metrics found under {}", dir.display()));
    }
    Ok(out)
}

/// Recursively collects numeric leaves under dotted paths.
fn flatten(prefix: &str, value: &Value, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Number(n) => {
            out.insert(prefix.trim_end_matches('.').to_string(), n.as_f64());
        }
        Value::Bool(b) => {
            out.insert(prefix.trim_end_matches('.').to_string(), f64::from(*b));
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}{i}."), item, out);
            }
        }
        Value::Object(entries) => {
            for (key, item) in entries {
                flatten(&format!("{prefix}{key}."), item, out);
            }
        }
        Value::Null | Value::String(_) => {}
    }
}

struct Drift {
    key: String,
    base: f64,
    cand: f64,
    /// Relative change; infinite when the baseline was exactly zero.
    rel: f64,
}

struct DiffReport {
    compared: usize,
    threshold: f64,
    regressions: Vec<Drift>,
    only_baseline: Vec<String>,
    only_candidate: Vec<String>,
}

/// Compares flattened snapshots: metrics in both dirs whose relative change
/// exceeds `threshold` become regressions, sorted worst-first.
fn diff(
    baseline: &BTreeMap<String, f64>,
    candidate: &BTreeMap<String, f64>,
    threshold: f64,
) -> DiffReport {
    let mut regressions = Vec::new();
    let mut compared = 0;
    for (key, &base) in baseline {
        let Some(&cand) = candidate.get(key) else {
            continue;
        };
        compared += 1;
        let rel = relative_change(base, cand);
        if rel.abs() > threshold {
            regressions.push(Drift { key: key.clone(), base, cand, rel });
        }
    }
    regressions.sort_by(|a, b| {
        b.rel
            .abs()
            .partial_cmp(&a.rel.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    let only_baseline: Vec<String> = baseline
        .keys()
        .filter(|k| !candidate.contains_key(*k))
        .cloned()
        .collect();
    let only_candidate: Vec<String> = candidate
        .keys()
        .filter(|k| !baseline.contains_key(*k))
        .cloned()
        .collect();
    DiffReport { compared, threshold, regressions, only_baseline, only_candidate }
}

/// `(cand - base) / |base|`; a zero baseline moving to non-zero counts as an
/// infinite change (always beyond any threshold), zero-to-zero as none.
fn relative_change(base: f64, cand: f64) -> f64 {
    if base == 0.0 {
        if cand == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(cand)
        }
    } else {
        (cand - base) / base.abs()
    }
}

impl DiffReport {
    fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} metrics (threshold {:.1}%): {} beyond threshold",
            self.compared,
            100.0 * self.threshold,
            self.regressions.len()
        );
        for d in self.regressions.iter().take(top) {
            let rel = if d.rel.is_finite() {
                format!("{:+.1}%", 100.0 * d.rel)
            } else {
                "new-nonzero".to_string()
            };
            let _ = writeln!(out, "  {:<12} {}  {} -> {}", rel, d.key, d.base, d.cand);
        }
        if self.regressions.len() > top {
            let _ = writeln!(out, "  ... and {} more", self.regressions.len() - top);
        }
        // One-sided keys are advisory: each is listed so a vanished or new
        // metric is visible in the log, but none affect the exit status.
        for (side, keys) in [
            ("baseline", &self.only_baseline),
            ("candidate", &self.only_candidate),
        ] {
            if keys.is_empty() {
                continue;
            }
            let _ = writeln!(out, "metrics only in {side}: {} (warnings, never fatal)", keys.len());
            for key in keys.iter().take(top) {
                let _ = writeln!(out, "  warning: only in {side}: {key}");
            }
            if keys.len() > top {
                let _ = writeln!(out, "  ... and {} more", keys.len() - top);
            }
        }
        if self.regressions.is_empty() {
            let _ = writeln!(out, "no drift beyond threshold");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "tahoe-bench-diff-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn write(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join(name), text).expect("write fixture");
    }

    #[test]
    fn flatten_walks_objects_arrays_and_bools() {
        let v: Value = serde_json::from_str(
            r#"{"a": 1, "b": {"c": 2.5}, "rows": [{"x": 3}, {"x": 4}],
                "flag": true, "name": "ignored", "none": null}"#,
        )
        .expect("parses");
        let mut out = BTreeMap::new();
        flatten("f.json:", &v, &mut out);
        assert_eq!(out.get("f.json:a"), Some(&1.0));
        assert_eq!(out.get("f.json:b.c"), Some(&2.5));
        assert_eq!(out.get("f.json:rows.0.x"), Some(&3.0));
        assert_eq!(out.get("f.json:rows.1.x"), Some(&4.0));
        assert_eq!(out.get("f.json:flag"), Some(&1.0));
        assert_eq!(out.len(), 5, "{out:?}");
    }

    #[test]
    fn identical_snapshots_pass_clean() {
        let base = scratch_dir("clean-base");
        let cand = scratch_dir("clean-cand");
        let record = r#"{"throughput": 12.5, "rows": [{"ns": 100}]}"#;
        write(&base, "BENCH_x.json", record);
        write(&cand, "BENCH_x.json", record);
        let b = load_dir(&base).expect("baseline loads");
        let c = load_dir(&cand).expect("candidate loads");
        let report = diff(&b, &c, 0.01);
        assert_eq!(report.compared, 2);
        assert!(report.regressions.is_empty(), "{}", report.render(10));
        assert!(report.render(10).contains("no drift beyond threshold"));
    }

    #[test]
    fn injected_regression_is_flagged_and_sorted_worst_first() {
        let base = scratch_dir("reg-base");
        let cand = scratch_dir("reg-cand");
        write(
            &base,
            "BENCH_x.json",
            r#"{"throughput": 10.0, "latency_ns": 100.0, "stable": 5.0}"#,
        );
        // throughput -40%, latency +11%, stable untouched.
        write(
            &cand,
            "BENCH_x.json",
            r#"{"throughput": 6.0, "latency_ns": 111.0, "stable": 5.0}"#,
        );
        let b = load_dir(&base).expect("baseline loads");
        let c = load_dir(&cand).expect("candidate loads");
        let report = diff(&b, &c, 0.10);
        assert_eq!(report.compared, 3);
        assert_eq!(report.regressions.len(), 2, "{}", report.render(10));
        assert_eq!(report.regressions[0].key, "BENCH_x.json:throughput");
        assert!((report.regressions[0].rel - -0.4).abs() < 1e-12);
        assert_eq!(report.regressions[1].key, "BENCH_x.json:latency_ns");
        // A looser threshold lets the small latency move through.
        assert_eq!(diff(&b, &c, 0.20).regressions.len(), 1);
    }

    #[test]
    fn zero_baseline_and_missing_keys_are_handled() {
        let base = scratch_dir("zero-base");
        let cand = scratch_dir("zero-cand");
        write(&base, "m.json", r#"{"was_zero": 0, "stays_zero": 0, "gone": 1}"#);
        write(&cand, "m.json", r#"{"was_zero": 3, "stays_zero": 0, "added": 2}"#);
        let b = load_dir(&base).expect("baseline loads");
        let c = load_dir(&cand).expect("candidate loads");
        let report = diff(&b, &c, 0.10);
        // Only the shared keys are compared; zero -> non-zero always trips.
        assert_eq!(report.compared, 2);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].key, "m.json:was_zero");
        assert!(report.regressions[0].rel.is_infinite());
        assert_eq!(report.only_baseline, vec!["m.json:gone".to_string()]);
        assert_eq!(report.only_candidate, vec!["m.json:added".to_string()]);
        let rendered = report.render(10);
        assert!(rendered.contains("new-nonzero"), "{rendered}");
        assert!(rendered.contains("only in baseline: 1"), "{rendered}");
        assert!(rendered.contains("warning: only in baseline: m.json:gone"), "{rendered}");
        assert!(rendered.contains("warning: only in candidate: m.json:added"), "{rendered}");
    }

    #[test]
    fn one_sided_keys_warn_but_never_regress() {
        let base = scratch_dir("onesided-base");
        let cand = scratch_dir("onesided-cand");
        // The shared key is identical; everything else is one-sided.
        write(&base, "m.json", r#"{"shared": 7, "old_a": 1, "old_b": 2}"#);
        write(&cand, "m.json", r#"{"shared": 7, "new_a": 3}"#);
        let b = load_dir(&base).expect("baseline loads");
        let c = load_dir(&cand).expect("candidate loads");
        let report = diff(&b, &c, 0.0);
        assert_eq!(report.compared, 1);
        assert!(report.regressions.is_empty(), "{}", report.render(10));
        assert_eq!(report.only_baseline.len(), 2);
        assert_eq!(report.only_candidate.len(), 1);
        let rendered = report.render(1);
        assert!(rendered.contains("no drift beyond threshold"), "{rendered}");
        assert!(rendered.contains("warning: only in baseline: m.json:old_a"), "{rendered}");
        // Listing is capped at --top per side with an explicit remainder.
        assert!(rendered.contains("... and 1 more"), "{rendered}");
        assert!(rendered.contains("warning: only in candidate: m.json:new_a"), "{rendered}");
    }

    #[test]
    fn options_parse_flags_and_reject_garbage() {
        let ok = Options::parse(&[
            "a".into(),
            "b".into(),
            "--threshold".into(),
            "0.25".into(),
            "--warn-only".into(),
        ])
        .expect("parses");
        assert_eq!(ok.baseline, "a");
        assert_eq!(ok.candidate, "b");
        assert!((ok.threshold - 0.25).abs() < 1e-12);
        assert!(ok.warn_only);
        assert!(Options::parse(&["a".into()]).is_err());
        assert!(Options::parse(&["a".into(), "b".into(), "--bogus".into()]).is_err());
        assert!(Options::parse(&[
            "a".into(),
            "b".into(),
            "--threshold".into(),
            "nan".into()
        ])
        .is_err());
    }
}
