//! Regenerates Sec. 7.3's performance-model accuracy study.

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::model_accuracy::run(&env);
    tahoe_bench::experiments::model_accuracy::report(&result);
}
