//! Regenerates the paper's Fig. 2 (motivation: coalescing decay, reduction
//! share, thread imbalance).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::motivation::run(&env);
    tahoe_bench::experiments::motivation::report(&result);
}
