//! Regenerates the paper's Fig. 9 (strong scaling on 1-128 V100s) and the
//! Sec. 7.5 weak-scaling check.

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::scaling::run(&env);
    tahoe_bench::experiments::scaling::report(&result);
    env.export_telemetry();
}
