//! Regenerates the `BENCH_format` node-encoding comparison (classic
//! whole-node records vs packed struct-of-arrays lanes).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::format::run(&env);
    tahoe_bench::experiments::format::report(&result);
    env.export_telemetry();
}
