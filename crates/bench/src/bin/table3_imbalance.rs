//! Regenerates the paper's Table 3 (A.C.V. thread imbalance, FIL vs Tahoe).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::overall::run(&env);
    tahoe_bench::experiments::overall::report_table3(&result);
    env.export_telemetry();
}
