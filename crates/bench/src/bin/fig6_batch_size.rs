//! Regenerates the paper's Fig. 6 (strategy crossover vs batch size).

fn main() {
    let env = tahoe_bench::Env::from_args();
    let result = tahoe_bench::experiments::strategies::run_fig6(&env);
    tahoe_bench::experiments::strategies::report_fig6(&result);
}
