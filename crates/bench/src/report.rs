//! Table rendering and JSON result records.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A printable, width-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count in MiB with 2 decimals.
#[must_use]
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Directory where experiment JSON records land.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TAHOE_RESULTS_DIR").map_or_else(
        |_| PathBuf::from("results"),
        PathBuf::from,
    );
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes an experiment's JSON record to `results/<name>.json`.
///
/// # Panics
///
/// Panics on filesystem or serialization failure (experiment records are
/// essential output; failing loudly is correct).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable record");
    fs::write(&path, json).expect("write result record");
    println!("[results] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Both data lines end aligned on the value column.
        assert!(lines[3].ends_with('1'));
        assert!(lines[4].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(0.276), "27.6%");
    }
}
