//! §7.3 "Quantifying effectiveness of removing blockwise reduction" — in how
//! many of the 45 (dataset × device) cases per regime does Tahoe's selected
//! strategy drop the block-wide reduction?

use serde::Serialize;

use tahoe::engine::Engine;
use tahoe::strategy::Strategy;

use crate::data::{batch_of, prepare_all};
use crate::env::Env;
use crate::experiments::{devices, tahoe_opts, HIGH_BATCH, LOW_BATCH};
use crate::report::{write_json, Table};

/// One (dataset, device, regime) selection.
#[derive(Clone, Debug, Serialize)]
pub struct CensusRow {
    /// Dataset name.
    pub dataset: String,
    /// Device name.
    pub device: String,
    /// `true` for the 100 K batch.
    pub high_parallelism: bool,
    /// Strategy Tahoe selected.
    pub strategy: Strategy,
}

/// §7.3 reduction-removal record.
#[derive(Clone, Debug, Serialize)]
pub struct CensusResult {
    /// Every selection.
    pub rows: Vec<CensusRow>,
}

impl CensusResult {
    /// `(removed, total)` for one regime.
    #[must_use]
    pub fn removed(&self, high: bool) -> (usize, usize) {
        let slice: Vec<&CensusRow> = self
            .rows
            .iter()
            .filter(|r| r.high_parallelism == high)
            .collect();
        let removed = slice
            .iter()
            .filter(|r| !r.strategy.has_block_reduction())
            .count();
        (removed, slice.len())
    }
}

/// Runs the census.
#[must_use]
pub fn run(env: &Env) -> CensusResult {
    let prepared = prepare_all(env.scale);
    let mut rows = Vec::new();
    for p in &prepared {
        for device in devices() {
            let mut engine = Engine::new(device.clone(), p.forest.clone(), tahoe_opts(env));
            for (high, size) in [(true, HIGH_BATCH), (false, LOW_BATCH)] {
                let batch = batch_of(&p.infer, size);
                let r = engine.infer(&batch);
                rows.push(CensusRow {
                    dataset: p.spec.name.to_string(),
                    device: device.name.to_string(),
                    high_parallelism: high,
                    strategy: r.strategy,
                });
            }
        }
    }
    CensusResult { rows }
}

/// Prints the census and writes the record.
pub fn report(result: &CensusResult) {
    let mut t = Table::new(
        "§7.3 — strategy selections (blockwise-reduction removal census)",
        &["dataset", "device", "regime", "strategy"],
    );
    for r in &result.rows {
        t.row(vec![
            r.dataset.clone(),
            r.device.clone(),
            if r.high_parallelism { "high" } else { "low" }.to_string(),
            r.strategy.name().to_string(),
        ]);
    }
    t.print();
    let (rh, th) = result.removed(true);
    let (rl, tl) = result.removed(false);
    println!(
        "block reduction removed in {rh}/{th} high-parallelism cases (paper: 27/45)\n\
         and {rl}/{tl} low-parallelism cases (paper: 13/45)"
    );
    write_json("sec73_reduction", result);
}
