//! Fig. 2 — the motivating experiment (paper §3).
//!
//! A Higgs forest with 120 trees of depth ≤ 10 runs under FIL (reorg format,
//! shared-data strategy) to expose the three problems Tahoe attacks:
//!
//! - **(a)** adjacent-thread address distance grows with tree level and
//!   global-load efficiency collapses near the leaves (paper: 27.2 % overall,
//!   13.7 % at levels 7–10);
//! - **(b)** block-reduction share of inference time grows with tree count
//!   (paper: 35–72 % for 10–200 trees);
//! - **(c)** per-thread execution times within a block vary wildly
//!   (paper: CV = 49.1 %).

use serde::Serialize;

use tahoe::engine::Engine;
use tahoe::metrics::{level_profile, thread_acv};
use tahoe_datasets::DatasetSpec;
use tahoe_forest::train_for_spec;
use tahoe_gpu_sim::device::DeviceSpec;

use crate::data::batch_of;
use crate::env::Env;
use crate::experiments::fil_opts;
use crate::report::{f2, pct, write_json, Table};

/// One per-level row of Fig. 2a.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LevelRow {
    /// Tree level.
    pub level: u32,
    /// Mean adjacent-thread address distance (bytes).
    pub distance: f64,
    /// Global-load efficiency at this level.
    pub efficiency: f64,
}

/// One tree-count row of Fig. 2b.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ReductionRow {
    /// Trees in the forest.
    pub n_trees: usize,
    /// Fraction of inference time spent reducing.
    pub reduction_fraction: f64,
}

/// Full Fig. 2 record.
#[derive(Clone, Debug, Serialize)]
pub struct MotivationResult {
    /// Fig. 2a rows.
    pub levels: Vec<LevelRow>,
    /// Overall global-load efficiency on forest reads.
    pub overall_efficiency: f64,
    /// Efficiency over the deepest four levels (paper's "levels 7–10").
    pub deep_efficiency: f64,
    /// Fig. 2b rows.
    pub reduction: Vec<ReductionRow>,
    /// Fig. 2c: average CV of per-thread busy time (paper: 49.1 %).
    pub thread_cv: f64,
}

/// Runs the motivating experiment.
#[must_use]
pub fn run(env: &Env) -> MotivationResult {
    // §3's setup: Higgs, 120 trees, depth ≤ 10, XGBoost — scaled via `env`.
    let base = DatasetSpec::by_name("higgs").expect("higgs exists");
    // Train 200 trees so the Fig. 2b sweep can reach the paper's range; the
    // Fig. 2a/2c runs use the first 120 (the Sec. 3 setup).
    let spec = DatasetSpec {
        n_trees: 200,
        max_depth: 10,
        ..base
    };
    let scale = env.scale;
    let data = spec.generate(scale);
    let (train, infer) = data.split_train_infer();
    let forest = train_for_spec(&spec, &train, scale);
    let device = DeviceSpec::tesla_p100();

    // Fig. 2a + 2c: one FIL run over a reasonably large batch, 120 trees.
    let batch = batch_of(&infer, 10_000);
    let fig2a_forest = forest.truncated(forest.n_trees().min(120));
    let mut fil = Engine::new(device.clone(), fig2a_forest, fil_opts(env));
    let result = fil.infer(&batch);
    let profile = level_profile(&result.run.kernel);
    let levels: Vec<LevelRow> = profile
        .iter()
        .map(|r| LevelRow {
            level: r.level,
            distance: r.mean_distance,
            efficiency: r.efficiency,
        })
        .collect();
    let overall_efficiency = result.run.kernel.gmem.efficiency();
    let deep_efficiency = {
        let mut requested = 0u64;
        let mut fetched = 0u64;
        let n_levels = profile.len();
        for (lvl, stats) in &result.run.kernel.levels {
            if *lvl as usize + 4 >= n_levels {
                requested += stats.access.requested_bytes;
                fetched += stats.access.fetched_bytes;
            }
        }
        if fetched == 0 {
            1.0
        } else {
            requested as f64 / fetched as f64
        }
    };
    let thread_cv = thread_acv(&result.run.kernel);

    // Fig. 2b: sweep the tree count, re-using prefixes of the forest (the
    // paper retrains per point; boosted prefixes are themselves valid
    // forests and preserve the trend).
    let mut reduction = Vec::new();
    for n in [10usize, 25, 50, 75, 100, 120, 150, 200] {
        if n > forest.n_trees() {
            break;
        }
        let truncated = forest.truncated(n);
        let mut engine = Engine::new(device.clone(), truncated, fil_opts(env));
        let r = engine.infer(&batch);
        reduction.push(ReductionRow {
            n_trees: n,
            reduction_fraction: r.run.kernel.reduction_fraction(),
        });
    }
    MotivationResult {
        levels,
        overall_efficiency,
        deep_efficiency,
        reduction,
        thread_cv,
    }
}

/// Prints the result tables and writes the JSON record.
pub fn report(result: &MotivationResult) {
    let mut a = Table::new(
        "Fig 2a — adjacent-thread address distance & load efficiency per level (FIL)",
        &["level", "distance (B)", "efficiency"],
    );
    for row in &result.levels {
        a.row(vec![row.level.to_string(), f2(row.distance), pct(row.efficiency)]);
    }
    a.print();
    println!(
        "overall forest-read efficiency: {} (paper: 27.2%); deepest levels: {} (paper: 13.7%)",
        pct(result.overall_efficiency),
        pct(result.deep_efficiency)
    );
    let mut b = Table::new(
        "Fig 2b — reduction share of inference time vs tree count (FIL)",
        &["trees", "reduction share"],
    );
    for row in &result.reduction {
        b.row(vec![row.n_trees.to_string(), pct(row.reduction_fraction)]);
    }
    b.print();
    println!("paper: 35%-72% over 10-200 trees");
    println!(
        "\nFig 2c — per-thread execution-time CV under FIL: {} (paper: 49.1%)",
        pct(result.thread_cv)
    );
    write_json("fig2_motivation", result);
}
