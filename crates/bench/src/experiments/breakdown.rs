//! Fig. 8 — contribution breakdown of the three techniques.
//!
//! The paper applies (a) probability-based node rearrangement, then (b)
//! similarity-based tree rearrangement on top, then (c) model-guided strategy
//! selection on top of both, measuring the speedup over FIL after each step;
//! a technique's contribution is its speedup delta normalized by the total.

use serde::Serialize;

use tahoe::engine::{Engine, EngineOptions};
use tahoe_gpu_sim::device::DeviceSpec;

use crate::data::{batch_of, prepare_all};
use crate::env::Env;
use crate::experiments::{fil_opts, tahoe_opts, HIGH_BATCH, LOW_BATCH};
use crate::report::{pct, write_json, Table};

/// One dataset's breakdown.
#[derive(Clone, Debug, Serialize)]
pub struct BreakdownRow {
    /// Dataset name.
    pub dataset: String,
    /// Dataset id.
    pub dataset_id: usize,
    /// `true` for the 100 K batch.
    pub high_parallelism: bool,
    /// Speedup over FIL after (a) node rearrangement.
    pub speedup_a: f64,
    /// Speedup after (a)+(b) tree rearrangement.
    pub speedup_ab: f64,
    /// Speedup after (a)+(b)+(c) strategy selection (full Tahoe).
    pub speedup_abc: f64,
}

impl BreakdownRow {
    /// `(node, tree, selection)` contribution fractions of the total gain.
    ///
    /// Negative deltas (a step that happened to regress on this dataset) are
    /// clamped to zero before normalizing, as a stacked-percentage chart
    /// requires.
    #[must_use]
    pub fn contributions(&self) -> (f64, f64, f64) {
        let a = (self.speedup_a - 1.0).max(0.0);
        let b = (self.speedup_ab - self.speedup_a).max(0.0);
        let c = (self.speedup_abc - self.speedup_ab).max(0.0);
        let total = a + b + c;
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (a / total, b / total, c / total)
    }
}

/// Fig. 8 record.
#[derive(Clone, Debug, Serialize)]
pub struct BreakdownResult {
    /// One row per (dataset, regime).
    pub rows: Vec<BreakdownRow>,
}

/// Runs the breakdown on the P100 (the paper's Fig. 8 per-dataset study).
#[must_use]
pub fn run(env: &Env) -> BreakdownResult {
    let prepared = prepare_all(env.scale);
    let device = DeviceSpec::tesla_p100();
    let step_a = EngineOptions {
        tree_rearrange: false,
        model_selection: false,
        ..tahoe_opts(env)
    };
    let step_ab = EngineOptions {
        model_selection: false,
        ..tahoe_opts(env)
    };
    let step_abc = tahoe_opts(env);
    let mut rows = Vec::new();
    for p in &prepared {
        let mut fil = Engine::new(device.clone(), p.forest.clone(), fil_opts(env));
        let mut ea = Engine::new(device.clone(), p.forest.clone(), step_a);
        let mut eab = Engine::new(device.clone(), p.forest.clone(), step_ab);
        let mut eabc = Engine::new(device.clone(), p.forest.clone(), step_abc);
        for (high, size) in [(true, HIGH_BATCH), (false, LOW_BATCH)] {
            let batch = batch_of(&p.infer, size);
            let base = fil.infer(&batch).run.kernel.total_ns;
            let ta = ea.infer(&batch).run.kernel.total_ns;
            let tab = eab.infer(&batch).run.kernel.total_ns;
            let tabc = eabc.infer(&batch).run.kernel.total_ns;
            rows.push(BreakdownRow {
                dataset: p.spec.name.to_string(),
                dataset_id: p.spec.id,
                high_parallelism: high,
                speedup_a: base / ta,
                speedup_ab: base / tab,
                speedup_abc: base / tabc,
            });
        }
    }
    BreakdownResult { rows }
}

/// Prints Fig. 8 and writes the record.
pub fn report(result: &BreakdownResult) {
    for high in [true, false] {
        let regime = if high { "high parallelism" } else { "low parallelism" };
        let mut t = Table::new(
            format!("Fig 8 — technique contribution breakdown, {regime}, P100"),
            &["id", "dataset", "node rearr.", "tree rearr.", "model select", "total speedup"],
        );
        for r in result.rows.iter().filter(|r| r.high_parallelism == high) {
            let (a, b, c) = r.contributions();
            t.row(vec![
                r.dataset_id.to_string(),
                r.dataset.clone(),
                pct(a),
                pct(b),
                pct(c),
                format!("{:.2}x", r.speedup_abc),
            ]);
        }
        t.print();
    }
    println!(
        "paper: node rearrangement dominates shallow forests (ids 5,7,10,15);\n\
         tree rearrangement dominates many-tree forests (ids 2,3,11,14);\n\
         strategy selection contributes least for low-parallelism tasks"
    );
    write_json("fig8_breakdown", result);
}
