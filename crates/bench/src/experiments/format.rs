//! `BENCH_format` — packed struct-of-arrays node encoding (DESIGN.md §2.13)
//! vs the classic whole-node records, across the Table 2 datasets.
//!
//! Two comparisons per dataset, both against the same adaptive layout so the
//! encoding is the only variable:
//!
//! 1. **Engine runs** (auto storage mode, shared-data strategy on the P100):
//!    device-image size, bytes per node, forest-read transactions, and the
//!    largest batch [`Engine::feasible`] admits on a memory-cramped device
//!    whose DRAM barely exceeds the classic image.
//! 2. **Forced-sparse images** (static accounting, no simulation): sparse
//!    mode stores explicit children, which is where the packed child lane's
//!    narrow tree-relative offsets pay off most — the paper's U8-packable
//!    datasets shrink by more than 2× here.

use serde::Serialize;

use tahoe::engine::{Engine, EngineOptions, NodeEncodingChoice};
use tahoe::format::{DeviceForest, FormatConfig, LayoutPlan, NodeEncoding, StorageMode};
use tahoe::strategy::Strategy;
use tahoe_datasets::SampleMatrix;
use tahoe_gpu_sim::device::DeviceSpec;

use crate::data::{batch_of, prepare_all, Prepared};
use crate::env::Env;
use crate::experiments::{tahoe_opts, HIGH_BATCH};
use crate::report::{f2, mib, write_json, Table};

/// Sample-memory slack granted to the cramped feasibility device beyond the
/// classic engine's resident footprint: small enough that the packed
/// encoding's image saving moves the admissible batch size, large enough
/// that both engines admit a non-trivial batch.
const FEASIBLE_SLACK_BYTES: u64 = 4 << 20;

/// One dataset's engine-level encoding comparison.
#[derive(Clone, Debug, Serialize)]
pub struct FormatRow {
    /// Dataset name.
    pub dataset: String,
    /// Attribute count (decides the packed structural width).
    pub n_attributes: u32,
    /// Storage mode both engines selected automatically.
    pub mode: String,
    /// Packed structural-entry width in bytes (1/2/4).
    pub packed_entry_bytes: usize,
    /// Classic bytes per node.
    pub classic_node_bytes: usize,
    /// Packed bytes per node (sum of every lane's entry width).
    pub packed_node_bytes: usize,
    /// Classic device-image bytes.
    pub classic_image_bytes: u64,
    /// Packed device-image bytes.
    pub packed_image_bytes: u64,
    /// classic / packed image ratio (> 1 means packed is smaller).
    pub image_ratio: f64,
    /// Total gmem transactions staging + running the splitting-shared-forest
    /// strategy (the profiler's coalescing report), classic encoding.
    pub classic_gmem_transactions: u64,
    /// Same, packed encoding: staging streams the smaller image, so this is
    /// strictly lower whenever packed shrinks bytes-per-node.
    pub packed_gmem_transactions: u64,
    /// Forest-read (level-tagged) gmem transactions under the direct
    /// strategy, classic encoding.
    pub classic_traversal_transactions: u64,
    /// Same, packed encoding. Per-level gmem traversal pays one extra
    /// address stream (bits + value lanes), so this side of the trade-off
    /// runs *higher* than classic — the perf model weighs it against the
    /// staging win.
    pub packed_traversal_transactions: u64,
    /// Largest feasible batch on the cramped device, classic encoding.
    pub classic_feasible_batch: usize,
    /// Largest feasible batch on the cramped device, packed encoding.
    pub packed_feasible_batch: usize,
}

/// One dataset's forced-sparse static image comparison.
#[derive(Clone, Debug, Serialize)]
pub struct SparseRow {
    /// Dataset name.
    pub dataset: String,
    /// Classic sparse bytes per node (flag + attr + value + two children).
    pub classic_node_bytes: usize,
    /// Packed sparse bytes per node (bits + value + child-offset lanes).
    pub packed_node_bytes: usize,
    /// classic / packed bytes-per-node ratio.
    pub node_bytes_ratio: f64,
    /// Classic sparse image bytes.
    pub classic_image_bytes: u64,
    /// Packed sparse image bytes.
    pub packed_image_bytes: u64,
}

/// `BENCH_format` record.
#[derive(Clone, Debug, Serialize)]
pub struct FormatResult {
    /// Device the engine comparison ran on.
    pub device: String,
    /// Batch size of the transaction comparison.
    pub batch: usize,
    /// Engine comparison, one row per dataset (auto storage mode).
    pub rows: Vec<FormatRow>,
    /// Forced-sparse static image accounting, one row per dataset.
    pub sparse_rows: Vec<SparseRow>,
}

/// Sums gmem transactions over the level-tagged (forest) reads.
fn forest_transactions(engine_result: &tahoe::engine::InferenceResult) -> u64 {
    engine_result
        .run
        .kernel
        .levels
        .values()
        .map(|stats| stats.access.transactions)
        .sum()
}

/// Largest batch the engine admits without OOM chunking, by binary search
/// over `Engine::feasible` (memory feasibility is monotone in batch size).
/// Probes tile the inference split directly — `batch_of`'s host-memory cap
/// would saturate probe sizes and break the search's monotonicity.
fn max_feasible_batch(engine: &Engine, p: &Prepared) -> usize {
    let split = p.infer.samples.n_samples();
    let probe = |n: usize| -> SampleMatrix {
        let idx: Vec<usize> = (0..n).map(|i| i % split).collect();
        p.infer.samples.select(&idx)
    };
    if !engine.feasible(Strategy::SharedData, &probe(1)) {
        return 0;
    }
    // A batch bigger than DRAM / sample bytes cannot fit under any encoding,
    // so it bounds the search: lo stays feasible, hi infeasible.
    let sample_bytes = p.infer.samples.sample_bytes().max(4);
    let mut lo = 1usize;
    let mut hi = (engine.device().dram_bytes as usize / sample_bytes) + 2;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if engine.feasible(Strategy::SharedData, &probe(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Builds a forced-sparse image of the given encoding and returns
/// (bytes per node, image bytes).
fn sparse_image(p: &Prepared, encoding: NodeEncoding) -> (usize, u64) {
    let config = FormatConfig {
        varlen_attr: true,
        mode: Some(StorageMode::Sparse),
        encoding,
    };
    let plan = LayoutPlan::identity(&p.forest);
    let mut mem = tahoe_gpu_sim::memory::DeviceMemory::new();
    let df = DeviceForest::build(&p.forest, &plan, config, &mut mem);
    (df.node_bytes(), df.image_bytes() as u64)
}

/// Runs the encoding comparison over all 15 datasets.
#[must_use]
pub fn run(env: &Env) -> FormatResult {
    let prepared = prepare_all(env.scale);
    let device = DeviceSpec::tesla_p100();
    // Pin the strategy (shared-data, like the §7.3 coalescing experiment) so
    // node encoding is the only difference between the two engines.
    let classic_opts = EngineOptions {
        model_selection: false,
        ..tahoe_opts(env)
    };
    let packed_opts = EngineOptions {
        node_encoding: NodeEncodingChoice::Packed,
        ..classic_opts
    };
    let mut rows = Vec::new();
    let mut sparse_rows = Vec::new();
    for p in &prepared {
        let batch = batch_of(&p.infer, HIGH_BATCH);
        let mut classic = Engine::new(device.clone(), p.forest.clone(), classic_opts);
        let mut packed = Engine::new(device.clone(), p.forest.clone(), packed_opts);

        // Cramped device: DRAM barely covers the classic engine's resident
        // image (recorded before any staging buffer exists), plus a fixed
        // sample budget. The packed engine's smaller image turns directly
        // into extra admissible samples.
        let classic_resident = classic.memory().in_use_bytes();
        let mut cramped = device.clone();
        cramped.dram_bytes = classic_resident + FEASIBLE_SLACK_BYTES;
        let classic_cramped = Engine::new(cramped.clone(), p.forest.clone(), classic_opts);
        let packed_cramped = Engine::new(cramped, p.forest.clone(), packed_opts);
        let classic_feasible = max_feasible_batch(&classic_cramped, p);
        let packed_feasible = max_feasible_batch(&packed_cramped, p);

        let rc = classic.infer_with(&batch, Some(Strategy::Direct));
        let rp = packed.infer_with(&batch, Some(Strategy::Direct));
        let rc_staged = classic.infer_with(&batch, Some(Strategy::SplittingSharedForest));
        let rp_staged = packed.infer_with(&batch, Some(Strategy::SplittingSharedForest));

        let (cdf, pdf) = (classic.device_forest(), packed.device_forest());
        assert_eq!(
            pdf.encoding(),
            NodeEncoding::Packed,
            "{}: every Table 2 dataset is packable",
            p.spec.name
        );
        rows.push(FormatRow {
            dataset: p.spec.name.to_string(),
            n_attributes: p.forest.n_attributes(),
            mode: format!("{:?}", cdf.mode()),
            packed_entry_bytes: pdf.packed_width().map_or(0, |w| w.bytes()),
            classic_node_bytes: cdf.node_bytes(),
            packed_node_bytes: pdf.node_bytes(),
            classic_image_bytes: cdf.image_bytes() as u64,
            packed_image_bytes: pdf.image_bytes() as u64,
            image_ratio: cdf.image_bytes() as f64 / pdf.image_bytes().max(1) as f64,
            classic_gmem_transactions: rc_staged.run.kernel.gmem.transactions,
            packed_gmem_transactions: rp_staged.run.kernel.gmem.transactions,
            classic_traversal_transactions: forest_transactions(&rc),
            packed_traversal_transactions: forest_transactions(&rp),
            classic_feasible_batch: classic_feasible,
            packed_feasible_batch: packed_feasible,
        });

        let (classic_nb, classic_ib) = sparse_image(p, NodeEncoding::Classic);
        let (packed_nb, packed_ib) = sparse_image(p, NodeEncoding::Packed);
        sparse_rows.push(SparseRow {
            dataset: p.spec.name.to_string(),
            classic_node_bytes: classic_nb,
            packed_node_bytes: packed_nb,
            node_bytes_ratio: classic_nb as f64 / packed_nb.max(1) as f64,
            classic_image_bytes: classic_ib,
            packed_image_bytes: packed_ib,
        });
    }
    FormatResult {
        device: device.name.to_string(),
        batch: HIGH_BATCH,
        rows,
        sparse_rows,
    }
}

/// Prints both encoding tables and writes the `BENCH_format` record.
pub fn report(result: &FormatResult) {
    let mut t = Table::new(
        format!(
            "node encoding — classic vs packed ({}, {} samples)",
            result.device, result.batch
        ),
        &[
            "dataset", "mode", "entry", "B/node c", "B/node p", "image c (MiB)",
            "image p (MiB)", "ratio", "staged txn c", "staged txn p", "feas. c", "feas. p",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            r.dataset.clone(),
            r.mode.clone(),
            format!("u{}", 8 * r.packed_entry_bytes),
            r.classic_node_bytes.to_string(),
            r.packed_node_bytes.to_string(),
            mib(r.classic_image_bytes),
            mib(r.packed_image_bytes),
            f2(r.image_ratio),
            r.classic_gmem_transactions.to_string(),
            r.packed_gmem_transactions.to_string(),
            r.classic_feasible_batch.to_string(),
            r.packed_feasible_batch.to_string(),
        ]);
    }
    t.print();

    let mut s = Table::new(
        "forced-sparse images — explicit children vs packed child-offset lane",
        &["dataset", "B/node classic", "B/node packed", "ratio", "image c (MiB)", "image p (MiB)"],
    );
    for r in &result.sparse_rows {
        s.row(vec![
            r.dataset.clone(),
            r.classic_node_bytes.to_string(),
            r.packed_node_bytes.to_string(),
            f2(r.node_bytes_ratio),
            mib(r.classic_image_bytes),
            mib(r.packed_image_bytes),
        ]);
    }
    s.print();
    println!(
        "packed = structural-bits lane (attr index + flags) + f32 value lane\n\
         (+ child-offset lane in sparse mode); classic = whole-node records.\n\
         Staged txns: total gmem transactions under splitting-shared-forest,\n\
         where staging streams the image — strictly fewer once packed shrinks\n\
         bytes-per-node. Per-level gmem traversal (direct/shared-data) instead\n\
         pays one extra address stream per level; that side of the trade-off\n\
         is recorded as *_traversal_transactions in the JSON.\n\
         Feasibility columns: largest batch Engine::feasible admits on a\n\
         device whose DRAM is the classic image + {} MiB of sample slack.",
        FEASIBLE_SLACK_BYTES >> 20
    );
    write_json("BENCH_format", result);
}
