//! Fig. 9 — strong scaling on 1–128 V100s, plus §7.5's weak scaling.
//!
//! Strong scaling partitions the inference batch evenly across devices and
//! simulates **every** non-empty partition on its own engine (a
//! [`GpuCluster`] of V100s); end-to-end time is the slowest device's, and
//! the record keeps per-device times and memory high-water marks. Counts
//! with more devices than samples are not genuine multi-GPU runs: their
//! empty partitions are skipped and their speedup is reported as `None`
//! (rendered as a dash, never `inf`).
//!
//! Weak scaling duplicates the dataset per device. Identical replays of one
//! deterministic simulator would measure exactly zero variance, so each
//! simulated device's shard is perturbed three ways: a distinct offset
//! window into the infer pool (content), a ±batch/64 size jitter
//! (partition-remainder skew), and the cluster's deterministic
//! silicon-lottery clock spread (`tahoe::cluster`, DESIGN.md §2.11) — the
//! first two alone can still vanish under balanced forests and
//! occupancy-wave quantization, so the lottery is what guarantees the
//! <5 % variance check measures something real. Only a deterministic
//! subset of devices is simulated per count ([`weak_device_sample`]);
//! exhaustive coverage would multiply the experiment cost ~16× without
//! adding signal (EXPERIMENTS.md).

use serde::Serialize;

use tahoe::cluster::{DeviceRun, GpuCluster};
use tahoe_datasets::SampleMatrix;
use tahoe_gpu_sim::device::DeviceSpec;

use crate::data::{batch_of, prepare_all, Prepared};
use crate::env::Env;
use crate::experiments::{tahoe_opts, HIGH_BATCH};
use crate::report::{f2, pct, write_json, Table};

/// Device counts swept (the paper's x-axis).
pub const GPU_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// One device's simulated share of a scaling point.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceTimeRecord {
    /// Device index within the cluster.
    pub device: usize,
    /// Samples the device served.
    pub n_samples: usize,
    /// Simulated kernel time (ns).
    pub elapsed_ns: f64,
    /// High-water simulated device-memory footprint (bytes).
    pub mem_high_water_bytes: u64,
}

impl From<DeviceRun> for DeviceTimeRecord {
    fn from(r: DeviceRun) -> Self {
        Self {
            device: r.device,
            n_samples: r.n_samples,
            elapsed_ns: r.elapsed_ns,
            mem_high_water_bytes: r.mem_high_water_bytes,
        }
    }
}

/// One strong-scaling measurement: the batch split across `n_gpus` devices.
#[derive(Clone, Debug, Serialize)]
pub struct StrongPoint {
    /// Devices the batch was partitioned across.
    pub n_gpus: usize,
    /// End-to-end time: slowest participating device (ns).
    pub end_to_end_ns: f64,
    /// Speedup over the sweep's first device count; `None` when the count
    /// exceeds the sample count (empty partitions — not a genuine
    /// `n_gpus`-way run).
    pub speedup: Option<f64>,
    /// Every simulated (non-empty) partition, in device order.
    pub per_device: Vec<DeviceTimeRecord>,
}

/// One weak-scaling measurement: the dataset duplicated per device, each
/// simulated device running its own offset window of the infer pool.
#[derive(Clone, Debug, Serialize)]
pub struct WeakPoint {
    /// Devices in the (conceptual) cluster.
    pub n_gpus: usize,
    /// Weak end-to-end time: slowest simulated device (ns).
    pub time_ns: f64,
    /// The simulated device subset (see [`weak_device_sample`]).
    pub per_device: Vec<DeviceTimeRecord>,
}

/// One dataset's scaling curves.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Dataset name.
    pub dataset: String,
    /// Dataset id.
    pub dataset_id: usize,
    /// Strong-scaling points, per [`GPU_COUNTS`] entry.
    pub strong: Vec<StrongPoint>,
    /// Weak-scaling points, per [`GPU_COUNTS`] entry.
    pub weak: Vec<WeakPoint>,
    /// Weak-scaling time variation across device counts: standard deviation
    /// of the weak times over their mean.
    pub weak_variance: f64,
}

/// Fig. 9 record.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingResult {
    /// One row per dataset.
    pub rows: Vec<ScalingRow>,
}

/// Deterministic device subset simulated for weak scaling at `n_gpus`:
/// first, middle, and last device (deduplicated). Every entry runs a
/// different sample window, so three devices already yield a
/// non-degenerate variance sample at a sixteenth of exhaustive cost.
#[must_use]
pub fn weak_device_sample(n_gpus: usize) -> Vec<usize> {
    let mut v = vec![0, n_gpus / 2, n_gpus.saturating_sub(1)];
    v.dedup();
    v
}

/// A device's weak-scaling shard: roughly `batch_len` samples read from the
/// infer pool starting at a per-(count, device) offset (wrapping). Two
/// deterministic perturbations make the shard non-degenerate: distinct
/// offsets give each device a different sample window (content
/// perturbation), and a ±`batch_len`/64 size jitter models the remainder
/// imbalance of real sharded deployments (hash partitioning never splits
/// exactly evenly). Content alone is invisible to forests whose balanced
/// trees make per-sample cost uniform, and sub-wave size jitter is absorbed
/// by the occupancy-wave-quantized scheduler — the cluster's silicon-lottery
/// clock spread (DESIGN.md §2.11) backstops both, guaranteeing non-zero
/// variance on every dataset. 9973 (prime) scatters the offsets across the
/// pool.
fn offset_window(
    pool: &SampleMatrix,
    batch_len: usize,
    count_idx: usize,
    max_gpus: usize,
    device: usize,
) -> SampleMatrix {
    let n = pool.n_samples();
    let h = (count_idx * max_gpus + device) * 9973;
    let offset = h % n;
    let amp = (batch_len / 64).max(1);
    let len = (batch_len + (h / 7) % (2 * amp + 1)).saturating_sub(amp).max(1);
    let rows: Vec<usize> = (0..len).map(|i| (i + offset) % n).collect();
    pool.select(&rows)
}

/// Runs strong + weak scaling on simulated V100s over all Table 2 datasets.
#[must_use]
pub fn run(env: &Env) -> ScalingResult {
    let prepared = prepare_all(env.scale);
    run_for(env, &prepared, &GPU_COUNTS)
}

/// As [`run`], over explicit datasets and device counts (testable).
///
/// # Panics
///
/// Panics when `counts` is empty or contains zero.
#[must_use]
pub fn run_for(env: &Env, prepared: &[Prepared], counts: &[usize]) -> ScalingResult {
    let device = DeviceSpec::tesla_v100();
    let max_gpus = counts.iter().copied().max().expect("need at least one device count");
    let mut rows = Vec::new();
    for p in prepared {
        let batch = batch_of(&p.infer, HIGH_BATCH);
        let mut cluster = GpuCluster::with_telemetry(
            vec![device.clone(); max_gpus],
            &p.forest,
            tahoe_opts(env),
            env.sink.clone(),
        );
        // Strong: every non-empty partition simulated on its own engine.
        let mut strong: Vec<StrongPoint> = Vec::with_capacity(counts.len());
        for &n_gpus in counts {
            let run = cluster.infer_partitioned_across(&batch, n_gpus);
            let genuine = n_gpus <= batch.n_samples();
            let speedup = match (genuine, strong.first()) {
                (true, Some(base)) => Some(base.end_to_end_ns / run.total_ns),
                (true, None) => Some(1.0),
                (false, _) => None,
            };
            strong.push(StrongPoint {
                n_gpus,
                end_to_end_ns: run.total_ns,
                speedup,
                per_device: run.per_device.into_iter().map(Into::into).collect(),
            });
        }
        // Weak: per-device duplicated dataset, each simulated device on its
        // own offset window; the weak time is the slowest simulated device.
        let mut weak = Vec::with_capacity(counts.len());
        for (ki, &n_gpus) in counts.iter().enumerate() {
            let mut per_device = Vec::new();
            let mut time_ns = 0.0f64;
            for d in weak_device_sample(n_gpus) {
                let window = offset_window(&p.infer.samples, batch.n_samples(), ki, max_gpus, d);
                let run = cluster.infer_one(d, &window);
                time_ns = time_ns.max(run.elapsed_ns);
                per_device.push(DeviceTimeRecord::from(run));
            }
            weak.push(WeakPoint { n_gpus, time_ns, per_device });
        }
        let weak_times: Vec<f64> = weak.iter().map(|w| w.time_ns).collect();
        let mean = weak_times.iter().sum::<f64>() / weak_times.len() as f64;
        let var = weak_times
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / weak_times.len() as f64;
        cluster.flush_telemetry();
        rows.push(ScalingRow {
            dataset: p.spec.name.to_string(),
            dataset_id: p.spec.id,
            strong,
            weak,
            weak_variance: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        });
    }
    ScalingResult { rows }
}

/// Renders a speedup cell: two decimals, or a dash for counts that had
/// empty partitions (never `inf`/`0.00`).
fn speedup_cell(speedup: Option<f64>) -> String {
    match speedup {
        Some(s) if s.is_finite() => f2(s),
        _ => "-".to_string(),
    }
}

/// Prints Fig. 9 and writes the record.
pub fn report(result: &ScalingResult) {
    let counts: Vec<usize> = result
        .rows
        .first()
        .map(|r| r.strong.iter().map(|s| s.n_gpus).collect())
        .unwrap_or_default();
    let headers: Vec<String> = ["dataset".to_string()]
        .into_iter()
        .chain(counts.iter().map(|n| format!("{n} GPU")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig 9 — strong-scaling speedup on V100s", &header_refs);
    for r in &result.rows {
        let mut cells = vec![r.dataset.clone()];
        cells.extend(r.strong.iter().map(|s| speedup_cell(s.speedup)));
        t.row(cells);
    }
    t.print();
    println!(
        "paper: large datasets scale near-linearly; small datasets (HOCK, gisette,\n\
         phishing) plateau once per-GPU work stops filling the device\n\
         (a dash marks counts with more devices than samples)"
    );
    let mut w = Table::new(
        "§7.5 — weak-scaling time variance across device counts",
        &["dataset", "variance"],
    );
    for r in &result.rows {
        w.row(vec![r.dataset.clone(), pct(r.weak_variance)]);
    }
    w.print();
    println!("paper: less than 5% variance");
    write_json("fig9_scaling", result);
}
