//! Fig. 9 — strong scaling on 1–128 V100s, plus §7.5's weak scaling.
//!
//! Strong scaling partitions the inference batch evenly across devices; the
//! end-to-end time is the slowest device's. Partitions differ in size by at
//! most one sample, so the largest partition (device 0) determines the time
//! and is the one simulated. Weak scaling duplicates the dataset per device,
//! making every device's workload identical; the paper reports < 5 % variance
//! and near-zero communication.

use serde::Serialize;

use tahoe::engine::Engine;
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::multigpu::partition;

use crate::data::{batch_of, prepare_all};
use crate::env::Env;
use crate::experiments::{tahoe_opts, HIGH_BATCH};
use crate::report::{f2, pct, write_json, Table};

/// Device counts swept (the paper's x-axis).
pub const GPU_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// One dataset's scaling curve.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Dataset name.
    pub dataset: String,
    /// Dataset id.
    pub dataset_id: usize,
    /// Strong-scaling speedup over one GPU, per [`GPU_COUNTS`] entry.
    pub strong_speedup: Vec<f64>,
    /// Weak-scaling time variance across device counts (fraction of mean).
    pub weak_variance: f64,
}

/// Fig. 9 record.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingResult {
    /// One row per dataset.
    pub rows: Vec<ScalingRow>,
}

/// Runs strong + weak scaling on simulated V100s.
#[must_use]
pub fn run(env: &Env) -> ScalingResult {
    let prepared = prepare_all(env.scale);
    let device = DeviceSpec::tesla_v100();
    let mut rows = Vec::new();
    for p in &prepared {
        let batch = batch_of(&p.infer, HIGH_BATCH);
        let mut engine = Engine::new(device.clone(), p.forest.clone(), tahoe_opts(env));
        let mut strong_times = Vec::with_capacity(GPU_COUNTS.len());
        let mut weak_times = Vec::with_capacity(GPU_COUNTS.len());
        for &n_gpus in &GPU_COUNTS {
            // Strong: device 0 holds the largest partition and bounds the run.
            let parts = partition(batch.n_samples(), n_gpus);
            let largest = &parts[0];
            let part: Vec<usize> = largest.clone().collect();
            if part.is_empty() {
                strong_times.push(f64::INFINITY);
            } else {
                let sub = batch.select(&part);
                strong_times.push(engine.infer(&sub).run.kernel.total_ns);
            }
            // Weak: per-device load is the whole batch (dataset duplicated
            // N times); every device is identical, no communication.
            weak_times.push(engine.infer(&batch).run.kernel.total_ns);
        }
        let t1 = strong_times[0];
        let strong_speedup = strong_times.iter().map(|&t| t1 / t).collect();
        let mean = weak_times.iter().sum::<f64>() / weak_times.len() as f64;
        let var = weak_times
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / weak_times.len() as f64;
        rows.push(ScalingRow {
            dataset: p.spec.name.to_string(),
            dataset_id: p.spec.id,
            strong_speedup,
            weak_variance: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        });
    }
    ScalingResult { rows }
}

/// Prints Fig. 9 and writes the record.
pub fn report(result: &ScalingResult) {
    let headers: Vec<String> = ["dataset".to_string()]
        .into_iter()
        .chain(GPU_COUNTS.iter().map(|n| format!("{n} GPU")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig 9 — strong-scaling speedup on V100s", &header_refs);
    for r in &result.rows {
        let mut cells = vec![r.dataset.clone()];
        cells.extend(r.strong_speedup.iter().map(|&s| f2(s)));
        t.row(cells);
    }
    t.print();
    println!(
        "paper: large datasets scale near-linearly; small datasets (HOCK, gisette,\n\
         phishing) plateau once per-GPU work stops filling the device"
    );
    let mut w = Table::new(
        "§7.5 — weak-scaling time variance across device counts",
        &["dataset", "variance"],
    );
    for r in &result.rows {
        w.row(vec![r.dataset.clone(), pct(r.weak_variance)]);
    }
    w.print();
    println!("paper: less than 5% variance");
    write_json("fig9_scaling", result);
}
