//! Ablations of the reproduction's design decisions (DESIGN.md §4).
//!
//! 1. **SimHash weighting** — drop the node-probability weight (§4.2 claims
//!    it "is necessary") and measure ordering quality against the exact
//!    pairwise baseline.
//! 2. **Oracle probabilities** — re-count edge probabilities on the
//!    *inference* split instead of the training split before node
//!    rearrangement, measuring how much of the benefit the paper's
//!    "training data predicts inference data" assumption leaves on the table.
//! 3. **Sampling extrapolation** — Detail::Full vs Detail::Sampled timing
//!    error on mid-size launches.
//! 4. **Infinite-SM device** — removes the occupancy bound, isolating how
//!    much of Tahoe's win is memory behaviour vs scheduling.

use serde::Serialize;

use tahoe::engine::{Engine, EngineOptions};
use tahoe::rearrange::{pairwise, similarity_order, SimilarityParams};
use tahoe_datasets::DatasetSpec;
use tahoe_forest::probability::annotate_edge_probabilities;
use tahoe_gpu_sim::device::DeviceSpec;
use tahoe_gpu_sim::kernel::Detail;

use crate::data::{batch_of, prepare};
use crate::env::Env;
use crate::experiments::{fil_opts, tahoe_opts};
use crate::report::{f2, f3, pct, write_json, Table};

/// Ablation record.
#[derive(Clone, Debug, Serialize)]
pub struct AblationResult {
    /// Adjacency score of the weighted LSH order (exact-similarity units).
    pub weighted_order_score: f64,
    /// Adjacency score without SimHash weights.
    pub unweighted_order_score: f64,
    /// Adjacency score of the exact pairwise order (upper reference).
    pub exact_order_score: f64,
    /// Tahoe speedup over FIL with training-split probabilities.
    pub training_prob_speedup: f64,
    /// Tahoe speedup over FIL with oracle (inference-split) probabilities.
    pub oracle_prob_speedup: f64,
    /// Relative timing error of sampled vs full simulation.
    pub sampling_error: f64,
    /// Tahoe speedup over FIL on the infinite-SM device.
    pub infinite_sm_speedup: f64,
    /// Speedup of the variable-length attribute index alone (full Tahoe vs
    /// full Tahoe with fixed 4-byte indices), §4.3.
    pub varlen_speedup: f64,
}

/// Runs all four ablations on a representative dataset (Higgs: many trees,
/// jittered depths — every mechanism is active).
#[must_use]
pub fn run(env: &Env) -> AblationResult {
    let spec = DatasetSpec::by_name("higgs").expect("higgs exists");
    let p = prepare(&spec, env.scale);
    let batch = batch_of(&p.infer, 20_000);

    // 1. SimHash weighting.
    let params = SimilarityParams::default();
    let unweighted = SimilarityParams {
        weighted: false,
        ..params
    };
    let counts = pairwise::pairwise_counts(&p.forest, params.t_nodes);
    let exact = pairwise::pairwise_order(&p.forest, params.t_nodes);
    let weighted_order_score =
        pairwise::adjacency_score(&similarity_order(&p.forest, &params), &counts);
    let unweighted_order_score =
        pairwise::adjacency_score(&similarity_order(&p.forest, &unweighted), &counts);
    let exact_order_score = pairwise::adjacency_score(&exact, &counts);

    // 2. Training-split vs oracle probabilities.
    let device = DeviceSpec::tesla_p100();
    let mut fil = Engine::new(device.clone(), p.forest.clone(), fil_opts(env));
    let fil_ns = fil.infer(&batch).run.kernel.total_ns;
    let mut tahoe_train = Engine::new(device.clone(), p.forest.clone(), tahoe_opts(env));
    let training_prob_speedup = fil_ns / tahoe_train.infer(&batch).run.kernel.total_ns;
    let oracle_forest = annotate_edge_probabilities(&p.forest, &batch);
    let mut tahoe_oracle = Engine::new(device.clone(), oracle_forest, tahoe_opts(env));
    let oracle_prob_speedup = fil_ns / tahoe_oracle.infer(&batch).run.kernel.total_ns;

    // 3. Sampling extrapolation error (small batch keeps Full affordable).
    let small_batch = batch_of(&p.infer, 2_000);
    let full_opts = EngineOptions {
        detail: Detail::Full,
        ..tahoe_opts(env)
    };
    let sampled_opts = EngineOptions {
        detail: Detail::Sampled(8),
        ..tahoe_opts(env)
    };
    let mut e_full = Engine::new(device.clone(), p.forest.clone(), full_opts);
    let mut e_sampled = Engine::new(device.clone(), p.forest.clone(), sampled_opts);
    let t_full = e_full.infer(&small_batch).run.kernel.total_ns;
    let t_sampled = e_sampled.infer(&small_batch).run.kernel.total_ns;
    let sampling_error = (t_sampled - t_full).abs() / t_full;

    // 4. Variable-length attribute index (§4.3) in isolation.
    let no_varlen = EngineOptions {
        varlen_attr: false,
        ..tahoe_opts(env)
    };
    let mut tahoe_fixed = Engine::new(device.clone(), p.forest.clone(), no_varlen);
    let varlen_speedup =
        tahoe_fixed.infer(&batch).run.kernel.total_ns / tahoe_train.infer(&batch).run.kernel.total_ns;

    // 5. Infinite-SM device.
    let inf = DeviceSpec::infinite_sms();
    let mut fil_inf = Engine::new(inf.clone(), p.forest.clone(), fil_opts(env));
    let mut tahoe_inf = Engine::new(inf, p.forest.clone(), tahoe_opts(env));
    let infinite_sm_speedup = fil_inf.infer(&batch).run.kernel.total_ns
        / tahoe_inf.infer(&batch).run.kernel.total_ns;

    AblationResult {
        weighted_order_score,
        unweighted_order_score,
        exact_order_score,
        training_prob_speedup,
        oracle_prob_speedup,
        sampling_error,
        infinite_sm_speedup,
        varlen_speedup,
    }
}

/// Prints the ablation table and writes the record.
pub fn report(result: &AblationResult) {
    let mut t = Table::new("Ablations (Higgs, P100)", &["ablation", "value"]);
    t.row(vec![
        "LSH order adjacency score (weighted)".into(),
        f3(result.weighted_order_score),
    ]);
    t.row(vec![
        "LSH order adjacency score (unweighted)".into(),
        f3(result.unweighted_order_score),
    ]);
    t.row(vec![
        "exact pairwise adjacency score".into(),
        f3(result.exact_order_score),
    ]);
    t.row(vec![
        "Tahoe speedup, training-split probabilities".into(),
        format!("{}x", f2(result.training_prob_speedup)),
    ]);
    t.row(vec![
        "Tahoe speedup, oracle probabilities".into(),
        format!("{}x", f2(result.oracle_prob_speedup)),
    ]);
    t.row(vec![
        "sampled-vs-full timing error".into(),
        pct(result.sampling_error),
    ]);
    t.row(vec![
        "Tahoe speedup on infinite-SM device".into(),
        format!("{}x", f2(result.infinite_sm_speedup)),
    ]);
    t.row(vec![
        "variable-length index speedup (vs 4-byte)".into(),
        format!("{}x", f2(result.varlen_speedup)),
    ]);
    t.print();
    write_json("ablations", result);
}
